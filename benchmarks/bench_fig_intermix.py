"""Figure 5 / Algorithm 1 / Section 6.1 — INTERMIX behaviour.

Checks soundness (every cheating strategy caught), the logarithmic number of
interaction rounds, the constant-time commoner verification, and the
Section 6.1 worst-case overhead accounting.
"""

import math

import numpy as np

from repro.analysis.complexity import intermix_worst_case_overhead
from repro.experiments import intermix_report
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import WorkerStrategy


def test_intermix_soundness_and_interaction_rounds(benchmark):
    rows = benchmark(
        intermix_report.soundness_rows, vector_lengths=(16, 64), num_nodes=12, trials=3
    )
    for row in rows:
        if row["worker"] == "honest":
            assert row["accepted_fraction"] == 1.0
        else:
            assert row["fraud_caught_fraction"] == 1.0
            assert row["max_queries"] <= row["2*log2K"]


def test_intermix_overhead_within_worst_case(benchmark):
    rows = benchmark(
        intermix_report.overhead_rows, vector_lengths=(16, 64, 128), num_nodes=12
    )
    for row in rows:
        measured_total = row["worker_ops"] + row["auditor_ops_total"] + row["commoner_ops_total"]
        assert measured_total <= row["worst_case_formula"] * 2  # same order as 6.1
        # the overhead is dominated by the (J + 1) product computations
        assert row["auditor_ops_total"] >= row["J"] * row["worker_ops"] * 0.5


def test_commoner_verification_cost_is_constant_in_k(benchmark, field, rng):
    node_ids = [f"node-{i}" for i in range(10)]

    def commoner_costs():
        costs = []
        for length in (8, 64, 512):
            protocol = IntermixProtocol(
                field, node_ids, fault_fraction=0.3, rng=np.random.default_rng(0),
                worker_strategies={n: WorkerStrategy.CORRUPT_RESULT for n in node_ids},
            )
            matrix = rng.integers(0, field.order, size=(10, length))
            vector = rng.integers(0, field.order, size=length)
            outcome = protocol.run(matrix, vector)
            assert not outcome.accepted
            costs.append(max(outcome.commoner_operations.values() or [0]))
        return costs

    costs = benchmark(commoner_costs)
    assert max(costs) <= 10 * max(min(costs), 1)  # flat, not growing with K


def test_committee_size_formula(benchmark):
    rows = benchmark(intermix_report.committee_rows)
    for row in rows:
        assert row["actual_failure_probability"] <= row["eps_target"]
        assert row["J"] == math.ceil(math.log(row["eps_target"]) / math.log(row["mu"]))
