"""Figure 5 / Algorithm 1 / Section 6.1 — INTERMIX behaviour.

Checks soundness (every cheating strategy caught), the logarithmic number of
interaction rounds, the constant-time commoner verification, and the
Section 6.1 worst-case overhead accounting.

With ``--intermix`` the suite additionally gates the batched engine —
:meth:`IntermixProtocol.run_batch` stacking a whole batch of verifications
into one matrix product shared by the worker and every auditor — against
the scalar :meth:`IntermixProtocol.run` oracle: bit-identical outcomes
(including the rng stream) and at least a 10x speedup.  ``--json PATH``
writes the ``BENCH_intermix.json`` artifact.
"""

import math

import numpy as np
import pytest

from repro.analysis.complexity import intermix_worst_case_overhead
from repro.experiments import intermix_report
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import WorkerStrategy
from repro.rng import default_stream


def test_intermix_soundness_and_interaction_rounds(benchmark):
    rows = benchmark(
        intermix_report.soundness_rows, vector_lengths=(16, 64), num_nodes=12, trials=3
    )
    for row in rows:
        if row["worker"] == "honest":
            assert row["accepted_fraction"] == 1.0
        else:
            assert row["fraud_caught_fraction"] == 1.0
            assert row["max_queries"] <= row["2*log2K"]


def test_intermix_overhead_within_worst_case(benchmark):
    rows = benchmark(
        intermix_report.overhead_rows, vector_lengths=(16, 64, 128), num_nodes=12
    )
    for row in rows:
        measured_total = row["worker_ops"] + row["auditor_ops_total"] + row["commoner_ops_total"]
        assert measured_total <= row["worst_case_formula"] * 2  # same order as 6.1
        # the overhead is dominated by the (J + 1) product computations
        assert row["auditor_ops_total"] >= row["J"] * row["worker_ops"] * 0.5


def test_commoner_verification_cost_is_constant_in_k(benchmark, field, rng):
    node_ids = [f"node-{i}" for i in range(10)]

    def commoner_costs():
        costs = []
        for length in (8, 64, 512):
            protocol = IntermixProtocol(
                field, node_ids, fault_fraction=0.3, rng=np.random.default_rng(0),
                worker_strategies={n: WorkerStrategy.CORRUPT_RESULT for n in node_ids},
            )
            matrix = rng.integers(0, field.order, size=(10, length))
            vector = rng.integers(0, field.order, size=length)
            outcome = protocol.run(matrix, vector)
            assert not outcome.accepted
            costs.append(max(outcome.commoner_operations.values() or [0]))
        return costs

    costs = benchmark(commoner_costs)
    assert max(costs) <= 10 * max(min(costs), 1)  # flat, not growing with K


def test_committee_size_formula(benchmark):
    rows = benchmark(intermix_report.committee_rows)
    for row in rows:
        assert row["actual_failure_probability"] <= row["eps_target"]
        assert row["J"] == math.ceil(math.log(row["eps_target"]) / math.log(row["mu"]))


# ---------------------------------------------------------------------------
# --intermix mode: the batched verification engine
# ---------------------------------------------------------------------------

def _transcripts_identical(a, b):
    return len(a) == len(b) and all(
        x.auditor_id == y.auditor_id
        and x.accepted == y.accepted
        and x.row_index == y.row_index
        and x.path == y.path
        and x.failure_kind == y.failure_kind
        and x.queries_issued == y.queries_issued
        for x, y in zip(a, b)
    )


def outcomes_identical(a, b):
    """Field-by-field equality of two :class:`VerificationOutcome` objects."""
    results_equal = (
        (a.result is None and b.result is None)
        or (a.result is not None and b.result is not None
            and np.array_equal(a.result, b.result))
    )
    return (
        a.accepted == b.accepted
        and a.confirmed_fraud == b.confirmed_fraud
        and results_equal
        and a.committee == b.committee
        and _transcripts_identical(a.transcripts, b.transcripts)
        and [
            (v.commoner_id, v.transcript_author, v.fraud_confirmed, v.operations)
            for v in a.verdicts
        ]
        == [
            (v.commoner_id, v.transcript_author, v.fraud_confirmed, v.operations)
            for v in b.verdicts
        ]
        and a.worker_operations == b.worker_operations
        and a.auditor_operations == b.auditor_operations
        and a.commoner_operations == b.commoner_operations
    )


def _batch_vs_scalar(field, length, columns, strategy, num_nodes=16, seed=9):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    data = default_stream(1)
    matrix = data.integers(0, field.order, size=(num_nodes, length))
    vectors = data.integers(0, field.order, size=(length, columns))
    strategies = {n: strategy for n in node_ids}
    protocols = {}
    outcomes = {}
    for mode in ("batch", "scalar"):
        protocol = IntermixProtocol(
            field, node_ids, fault_fraction=0.25, rng=default_stream(seed),
            worker_strategies=strategies,
        )
        committee = protocol.election.elect()
        if mode == "batch":
            outcomes[mode] = protocol.run_batch(matrix, vectors, committee=committee)
        else:
            outcomes[mode] = [
                protocol.run(matrix, vectors[:, c], committee=committee)
                for c in range(columns)
            ]
        protocols[mode] = protocol
    return protocols, outcomes


def test_intermix_batch_bit_identical_to_scalar_oracle(
    benchmark, field, intermix_mode
):
    """run_batch == a loop of run, for every adversary, down to the rng."""
    if not intermix_mode:
        pytest.skip("pass --intermix to run the batched-engine benchmarks")

    def compare_all():
        for strategy in (
            WorkerStrategy.HONEST,
            WorkerStrategy.CORRUPT_RESULT,
            WorkerStrategy.CONSISTENT_LIAR,
            WorkerStrategy.SILENT,
        ):
            protocols, outcomes = _batch_vs_scalar(field, 32, 8, strategy)
            assert all(
                outcomes_identical(a, b)
                for a, b in zip(outcomes["batch"], outcomes["scalar"])
            )
            assert (
                protocols["batch"].rng.bit_generator.state
                == protocols["scalar"].rng.bit_generator.state
            )
        return True

    assert benchmark(compare_all)


def test_intermix_batch_speedup(benchmark, field, intermix_mode):
    """The stacked product makes batch verification >= 10x the scalar loop."""
    if not intermix_mode:
        pytest.skip("pass --intermix to run the batched-engine benchmarks")
    import time

    node_ids = [f"node-{i}" for i in range(16)]
    data = default_stream(1)
    matrix = data.integers(0, field.order, size=(16, 256))
    vectors = data.integers(0, field.order, size=(256, 64))

    def measure():
        timings = {"batch": float("inf"), "scalar": float("inf")}
        for _ in range(3):
            for mode in ("batch", "scalar"):
                protocol = IntermixProtocol(
                    field, node_ids, fault_fraction=0.25, rng=default_stream(9)
                )
                committee = protocol.election.elect()
                start = time.perf_counter()
                if mode == "batch":
                    protocol.run_batch(matrix, vectors, committee=committee)
                else:
                    for c in range(vectors.shape[1]):
                        protocol.run(matrix, vectors[:, c], committee=committee)
                timings[mode] = min(timings[mode], time.perf_counter() - start)
        return timings

    timings = benchmark(measure)
    speedup = timings["scalar"] / timings["batch"]
    assert speedup >= 10.0, (
        f"batched INTERMIX only {speedup:.1f}x faster than the scalar "
        f"oracle at K=256 x 64 columns (floor: 10x)"
    )


def test_intermix_json_artifact(json_artifact_path, field, intermix_mode):
    """Write the ``BENCH_intermix.json`` perf-trajectory artifact.

    Enabled by ``--intermix --json PATH``.  Deterministic gate metric:
    ``intermix-headroom`` — the Section 6.1 worst-case formula over the
    measured total operations per vector length (a fall means measured
    overhead grew towards the bound).  Wall-clock metric: batched and
    scalar verifications/sec.  Ratio metric: the batch speedup, clamped at
    2x the 10x floor.
    """
    import json
    import time

    if json_artifact_path is None or not intermix_mode:
        pytest.skip("pass --intermix --json PATH to write the artifact")

    overhead = intermix_report.overhead_rows(
        vector_lengths=(16, 64, 256), num_nodes=16
    )
    committee = intermix_report.committee_rows()
    headroom = {}
    for row in overhead:
        measured = (
            row["worker_ops"] + row["auditor_ops_total"] + row["commoner_ops_total"]
        )
        headroom[str(row["K"])] = row["worst_case_formula"] / measured

    node_ids = [f"node-{i}" for i in range(16)]
    data = default_stream(1)
    matrix = data.integers(0, field.order, size=(16, 256))
    vectors = data.integers(0, field.order, size=(256, 64))
    rates = {}
    for mode in ("batch", "scalar"):
        best = float("inf")
        for _ in range(3):
            protocol = IntermixProtocol(
                field, node_ids, fault_fraction=0.25, rng=default_stream(9)
            )
            chosen = protocol.election.elect()
            start = time.perf_counter()
            if mode == "batch":
                protocol.run_batch(matrix, vectors, committee=chosen)
            else:
                for c in range(vectors.shape[1]):
                    protocol.run(matrix, vectors[:, c], committee=chosen)
            best = min(best, time.perf_counter() - start)
        rates[mode] = vectors.shape[1] / best

    artifact = {
        "artifact": "BENCH_intermix",
        "config": {
            "num_nodes": 16,
            "vector_lengths": [16, 64, 256],
            "batch": {"K": 256, "columns": 64},
            "speedup_floor": 10.0,
            "speedup_cap": 20.0,
        },
        "gate": {
            "deterministic_modes": ["intermix-headroom"],
            "wall_clock_modes": ["intermix-batch", "intermix-scalar"],
            "ratio_metrics": [["intermix_batch_speedup_at_largest", "min"]],
        },
        "modes": {
            "intermix-headroom": headroom,
            "intermix-batch": {"256x64": rates["batch"]},
            "intermix-scalar": {"256x64": rates["scalar"]},
        },
        "intermix_batch_speedup_at_largest": min(
            rates["batch"] / rates["scalar"], 20.0
        ),
        "rows": {"overhead": overhead, "committee": committee},
    }
    assert artifact["intermix_batch_speedup_at_largest"] >= 10.0
    with open(json_artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=2, default=float)
