"""Section 6.3 — throughput scaling with and without delegated coding.

Measures per-node execution-phase operation counts across network sizes and
compares the distributed-coding path (every node decodes) against the
delegated path (single worker, INTERMIX verification) and the paper's
quasilinear model curve ``N log^2 N log log N``.  The measured rows run
through the batched cached-matrix pipeline by default
(``throughput_rows(batched=...)`` flips back to the scalar protocol), and
``test_batched_pipeline_speedup_bit_identical`` checks the pipeline contract:
identical outputs, >= 3x wall-clock at the largest configuration.

The speculative decode/execute overlap has its own gates:
``test_pipelined_speedup_bit_identical`` pins ``execute_rounds_pipelined``
at >= 1.5x the batched commands/sec on the fault-free largest
configuration (bit-identical results), and
``test_pipelined_graceful_under_persistent_faults`` bounds the degradation
under a persistent 20% fault load at <= ~1.1x.  ``--pipelined`` smoke-runs
the protocol/service sweeps through the pipelined mode, ``--traffic``
enables the open-loop QoS benchmarks (weighted-fair slot shares, bounded
queues, logical-tick latency percentiles), and ``--json PATH`` writes the
``BENCH_throughput.json`` perf-trajectory artifact (now including the
traffic percentiles and their gateable p99/p50 ratios).
"""

import time

import numpy as np

from repro.analysis.complexity import quasilinear_coding_cost
from repro.analysis.metrics import csm_supported_machines
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.core.protocol import CSMProtocol
from repro.experiments import scaling
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior


def test_throughput_rows_distributed_vs_delegated(benchmark):
    rows = benchmark(
        scaling.throughput_rows,
        network_sizes=(8, 16, 24),
        fault_fraction=0.2,
        batched=True,
    )
    for row in rows:
        # Non-worker nodes in the delegated path do asymptotically less work
        # than nodes in the distributed path (which each run a full decode).
        assert row["delegated_commoner_ops"] < row["distributed_ops_per_node"]
    # The distributed per-node cost grows super-linearly with N (it contains a
    # textbook RS decode), while the model curve stays quasilinear.
    assert rows[-1]["distributed_ops_per_node"] > rows[0]["distributed_ops_per_node"]


def test_batched_amortises_ops_vs_scalar(benchmark):
    """The batch path charges far fewer decode operations per round."""

    def both():
        batched = scaling.throughput_rows(
            network_sizes=(16, 24), fault_fraction=0.2, batched=True
        )
        scalar = scaling.throughput_rows(
            network_sizes=(16, 24), fault_fraction=0.2, batched=False
        )
        return batched, scalar

    batched, scalar = benchmark(both)
    for fast, slow in zip(batched, scalar):
        assert fast["distributed_ops_per_node"] < slow["distributed_ops_per_node"] / 5


def _build_engine(field, machine, num_nodes, num_machines, num_faults, seed):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    behaviors = {node_ids[i]: RandomGarbageBehavior() for i in range(num_faults)}
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=num_faults,
    )
    return CodedExecutionEngine(
        config, machine, node_ids, behaviors, np.random.default_rng(seed)
    )


def test_batched_pipeline_speedup_bit_identical(field):
    """Largest configuration: batched >= 3x faster, outputs bit-identical.

    Both engines start from the same seed, face the same Byzantine nodes and
    consume the random stream in the same order, so every round's outputs,
    states, correctness flag and flagged error nodes must match exactly; the
    batch path only amortises the encode/decode linear algebra.
    """
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32  # the largest network size of this figure
    fault_fraction = 0.2
    num_faults = int(fault_fraction * num_nodes)
    num_machines = csm_supported_machines(num_nodes, fault_fraction, machine.degree)
    num_rounds = 8
    commands = np.random.default_rng(7).integers(
        1, 1000, size=(num_rounds, num_machines, machine.command_dim)
    )

    # Min over a few attempts: the ~6x architectural gap leaves a wide margin
    # over the 3x floor, and the minimum filters transient scheduler noise on
    # shared CI runners.
    scalar_time = float("inf")
    batch_time = float("inf")
    for attempt in range(3):
        scalar_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        scalar_time = min(scalar_time, time.perf_counter() - start)

        batch_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        batch_results = batch_engine.execute_rounds(commands)
        batch_time = min(batch_time, time.perf_counter() - start)

    for scalar_round, batch_round in zip(scalar_results, batch_results):
        assert np.array_equal(scalar_round.outputs, batch_round.outputs)
        assert np.array_equal(scalar_round.states, batch_round.states)
        assert scalar_round.correct == batch_round.correct
        assert (
            scalar_round.diagnostics["error_nodes"]
            == batch_round.diagnostics["error_nodes"]
        )
    assert scalar_round.correct  # the configuration is inside the bound
    speedup = scalar_time / batch_time
    assert speedup >= 3.0, (
        f"batched pipeline speedup {speedup:.1f}x below the 3x floor "
        f"(scalar {scalar_time:.3f}s, batched {batch_time:.3f}s)"
    )


def test_protocol_rows_end_to_end(
    benchmark, batched_protocol, service_mode, pipelined_mode, consensus_oracle_mode
):
    """Full-protocol sweep (consensus + network + execution) stays correct.

    With ``--service`` the sweep submits the traffic through CSMService
    sessions and lets the round scheduler drive the batches; with
    ``--batched-protocol`` it runs through ``CSMProtocol.run_rounds_batched``;
    with ``--pipelined`` the execution phase runs through the speculative
    decode/execute pipeline (combinable with ``--service``); without any,
    the sequential loop.  ``--consensus-oracle`` additionally pins the
    event-driven consensus reference path instead of the vectorised message
    plane (CI smoke-runs both).  In every mode each round must decode and
    deliver (no failed rounds), and the ``consensus_plane`` /
    ``fast_path_disabled`` row fields must agree with the requested path.
    """
    rows = benchmark(
        scaling.protocol_rows,
        network_sizes=(8, 12),
        rounds=3,
        batched_protocol=batched_protocol,
        service=service_mode,
        pipelined=pipelined_mode,
        vectorised_consensus=not consensus_oracle_mode,
    )
    if service_mode:
        expected_mode = "service-pipelined" if pipelined_mode else "service"
    elif pipelined_mode:
        expected_mode = "pipelined"
    elif batched_protocol:
        expected_mode = "batched"
    else:
        expected_mode = "sequential"
    batched_driver = service_mode or pipelined_mode or batched_protocol
    for row in rows:
        assert row["failed_rounds"] == 0
        assert row["throughput"] > 0
        assert row["mode"] == expected_mode
        if consensus_oracle_mode:
            assert row["consensus_plane"] == "oracle"
            # The sequential run_round loop never *requests* the batch fast
            # path, so only the batched drivers count fallback rounds.
            if batched_driver:
                assert row["fast_path_disabled"] == 3
        else:
            assert row["consensus_plane"] == "vectorised"
            assert row["fast_path_disabled"] == 0


def test_pipelined_rows_execution_phase(benchmark):
    """The speculative-pipeline sweep stays bit-identical and delivers.

    ``scaling.pipelined_rows`` runs the same fault-free command stream
    through the batched and the pipelined execution paths; every size must
    come out bit-identical with zero failed rounds in both modes.
    """
    rows = benchmark(scaling.pipelined_rows, network_sizes=(8, 16), rounds=8)
    modes = {row["mode"] for row in rows}
    assert modes == {"batched", "pipelined"}
    for row in rows:
        assert row["identical"]
        assert row["failed_rounds"] == 0
        assert row["commands_per_sec"] > 0
        assert row["throughput"] > 0


def test_pipelined_speedup_bit_identical(field):
    """Largest configuration, fault-free: pipelined >= 1.5x, bit-identical.

    The batched path pays a full suspect-learning decode on every round's
    critical path; the pipelined path advances state from the pivot-only
    speculative interpolation and verifies whole windows with one stacked
    re-encode product.  At ``N = 32`` fault-free the architectural gap is
    ~1.8x, so the 1.5x floor (min over a few attempts, same filter as the
    other speedup tests) leaves margin for noisy shared runners — while
    outputs, states, correctness flags and flagged error nodes must match
    the batched results exactly.
    """
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32  # the largest network size of this figure
    num_machines = csm_supported_machines(num_nodes, 0.2, machine.degree)
    num_rounds = 32
    commands = np.random.default_rng(7).integers(
        1, 1000, size=(num_rounds, num_machines, machine.command_dim)
    )

    batched_time = float("inf")
    pipelined_time = float("inf")
    for attempt in range(3):
        batched_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults=0, seed=1
        )
        start = time.perf_counter()
        batched_results = batched_engine.execute_rounds(commands)
        batched_time = min(batched_time, time.perf_counter() - start)

        pipelined_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults=0, seed=1
        )
        start = time.perf_counter()
        pipelined_results = pipelined_engine.execute_rounds_pipelined(commands)
        pipelined_time = min(pipelined_time, time.perf_counter() - start)

    for batched_round, pipelined_round in zip(batched_results, pipelined_results):
        assert np.array_equal(batched_round.outputs, pipelined_round.outputs)
        assert np.array_equal(batched_round.states, pipelined_round.states)
        assert batched_round.correct == pipelined_round.correct
        assert (
            batched_round.diagnostics["error_nodes"]
            == pipelined_round.diagnostics["error_nodes"]
        )
    assert pipelined_round.correct  # fault-free: every round verifies
    speedup = batched_time / pipelined_time
    assert speedup >= 1.5, (
        f"pipelined speedup {speedup:.2f}x below the 1.5x floor "
        f"(batched {batched_time:.3f}s, pipelined {pipelined_time:.3f}s)"
    )


def test_pipelined_graceful_under_persistent_faults(field):
    """Persistent faults: the pipeline degrades gracefully (<= ~1.1x slower).

    With 20% of the nodes emitting garbage every round — and sitting in the
    decoder's initial pivot, the worst placement — the first window rolls
    back, the suspect set is learnt, and every later window confirms.  The
    pipelined wall-clock must stay within 10% of the batched path (it is
    typically *faster*, since confirmed windows still skip per-round
    decodes), and the results must remain bit-identical.
    """
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32
    fault_fraction = 0.2
    num_faults = int(fault_fraction * num_nodes)
    num_machines = csm_supported_machines(num_nodes, fault_fraction, machine.degree)
    num_rounds = 32
    commands = np.random.default_rng(7).integers(
        1, 1000, size=(num_rounds, num_machines, machine.command_dim)
    )

    batched_time = float("inf")
    pipelined_time = float("inf")
    for attempt in range(3):
        batched_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        batched_results = batched_engine.execute_rounds(commands)
        batched_time = min(batched_time, time.perf_counter() - start)

        pipelined_engine = _build_engine(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        pipelined_results = pipelined_engine.execute_rounds_pipelined(commands)
        pipelined_time = min(pipelined_time, time.perf_counter() - start)

    for batched_round, pipelined_round in zip(batched_results, pipelined_results):
        assert np.array_equal(batched_round.outputs, pipelined_round.outputs)
        assert batched_round.correct == pipelined_round.correct
    assert pipelined_round.correct  # inside the decoding bound
    ratio = pipelined_time / batched_time
    assert ratio <= 1.10, (
        f"pipelined path {ratio:.2f}x the batched wall-clock under persistent "
        f"faults (pipelined {pipelined_time:.3f}s, batched {batched_time:.3f}s) "
        "— exceeds the graceful-degradation budget"
    )


def test_service_rows_ragged_traffic(benchmark):
    """The ragged-traffic service sweep executes every ticket it accepts."""
    rows = benchmark(
        scaling.service_rows, network_sizes=(8, 12), rounds=3, fill_probability=0.5
    )
    for row in rows:
        assert row["failed"] == 0
        assert row["executed"] == row["tickets"]
        # Ragged traffic means some slots were padding, yet throughput holds.
        assert row["rounds_run"] >= 1
        assert row["throughput"] > 0


def _build_protocol(
    field, machine, num_nodes, num_machines, num_faults, seed, vectorised=True
):
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=num_faults,
    )
    # Faults on the highest node indices keep round 0's leader honest, so the
    # two drivers spend their time in steady-state rounds, not view changes.
    behaviors = {
        f"node-{num_nodes - 1 - i}": RandomGarbageBehavior() for i in range(num_faults)
    }
    return CSMProtocol(
        config,
        machine,
        behaviors,
        rng=np.random.default_rng(seed),
        vectorised_consensus=vectorised,
    )


def test_batched_protocol_speedup_bit_identical(field):
    """Largest configuration: batched protocol >= 2x faster, history identical.

    Unlike ``test_batched_pipeline_speedup_bit_identical`` (engine only),
    this drives the *whole* protocol — client submission, consensus,
    simulated network, coded execution, verified delivery — so the 2x floor
    covers the consensus/network amortisation (``decide_rounds`` over
    ``SimulatedNetwork.deliver_all``) on top of the execution pipeline.
    """
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32  # the largest network size of this figure
    fault_fraction = 0.2
    num_faults = int(fault_fraction * num_nodes)
    num_machines = csm_supported_machines(num_nodes, fault_fraction, machine.degree)
    num_rounds = 8
    command_rng = np.random.default_rng(7)
    batches = [
        command_rng.integers(1, 1000, size=(num_machines, machine.command_dim))
        for _ in range(num_rounds)
    ]

    sequential_time = float("inf")
    batched_time = float("inf")
    for attempt in range(3):
        sequential = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        sequential_records = sequential.run_rounds(batches)
        sequential_time = min(sequential_time, time.perf_counter() - start)

        batched = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        batched_records = batched.run_rounds_batched(batches)
        batched_time = min(batched_time, time.perf_counter() - start)

    for seq, bat in zip(sequential_records, batched_records):
        assert np.array_equal(seq.commands, bat.commands)
        assert seq.clients == bat.clients
        assert seq.consensus_views == bat.consensus_views
        assert np.array_equal(seq.result.outputs, bat.result.outputs)
        assert np.array_equal(seq.result.states, bat.result.states)
        assert seq.result.correct == bat.result.correct
        assert (
            seq.result.diagnostics["error_nodes"]
            == bat.result.diagnostics["error_nodes"]
        )
    assert sequential.all_rounds_correct  # configuration inside the decoding bound
    assert batched.all_rounds_correct
    speedup = sequential_time / batched_time
    assert speedup >= 2.0, (
        f"batched protocol speedup {speedup:.1f}x below the 2x floor "
        f"(sequential {sequential_time:.3f}s, batched {batched_time:.3f}s)"
    )


def test_vectorised_consensus_speedup_bit_identical(field):
    """Largest configuration: message plane >= 3x the oracle, history identical.

    Both protocols share the seed, the Byzantine placement and the command
    stream; the only difference is ``vectorised_consensus``.  The recorded
    round history (commands, clients, views, outputs, states, correctness),
    the network counters (``messages_sent``, ``rejected_signatures``) and
    the full delivery log must match field-for-field — the message plane is
    a pure reorganisation of the same sends.  The architectural gap at
    ``N = 32`` is ~6-7x end-to-end (the consensus phase alone is faster
    still), so the 3x floor leaves margin for noisy shared runners; min
    over a few attempts filters transient scheduler stalls.
    """
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32  # the largest network size of this figure
    fault_fraction = 0.2
    num_faults = int(fault_fraction * num_nodes)
    num_machines = csm_supported_machines(num_nodes, fault_fraction, machine.degree)
    num_rounds = 8
    command_rng = np.random.default_rng(7)
    batches = [
        command_rng.integers(1, 1000, size=(num_machines, machine.command_dim))
        for _ in range(num_rounds)
    ]

    oracle_time = float("inf")
    plane_time = float("inf")
    for attempt in range(3):
        oracle = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1,
            vectorised=False,
        )
        start = time.perf_counter()
        oracle_records = oracle.run_rounds_batched(batches)
        oracle_time = min(oracle_time, time.perf_counter() - start)

        plane = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1,
            vectorised=True,
        )
        start = time.perf_counter()
        plane_records = plane.run_rounds_batched(batches)
        plane_time = min(plane_time, time.perf_counter() - start)

    for orc, vec in zip(oracle_records, plane_records):
        assert np.array_equal(orc.commands, vec.commands)
        assert orc.clients == vec.clients
        assert orc.consensus_views == vec.consensus_views
        assert np.array_equal(orc.result.outputs, vec.result.outputs)
        assert np.array_equal(orc.result.states, vec.result.states)
        assert orc.result.correct == vec.result.correct
    assert oracle.all_rounds_correct and plane.all_rounds_correct
    # Counter and delivery-log parity: the plane performed *the same sends*.
    assert oracle.network.messages_sent == plane.network.messages_sent
    assert oracle.network.rejected_signatures == plane.network.rejected_signatures
    assert len(oracle.network.delivery_log) == len(plane.network.delivery_log)
    for a, b in zip(oracle.network.delivery_log, plane.network.delivery_log):
        assert (
            a.message.sender, a.message.recipient, a.send_time,
            a.delivery_time, a.delivered,
        ) == (
            b.message.sender, b.message.recipient, b.send_time,
            b.delivery_time, b.delivered,
        )
    # The fallback counter proves which path each protocol actually took.
    assert oracle.consensus_fast_path_disabled == num_rounds
    assert plane.consensus_fast_path_disabled == 0
    speedup = oracle_time / plane_time
    assert speedup >= 3.0, (
        f"vectorised consensus speedup {speedup:.1f}x below the 3x floor "
        f"(oracle {oracle_time:.3f}s, vectorised {plane_time:.3f}s)"
    )


def test_consensus_rows_plane_vs_oracle(benchmark):
    """Consensus micro-sweep smoke at N=16: both paths run, counters agree.

    ``scaling.consensus_rows`` times the consensus phase alone, once with
    the vectorised message plane and once pinned to the event-driven
    oracle, for each network size.  CI smoke-runs this with the plane both
    enabled and disabled at ``N = 16``; the ``fast_path_disabled`` counter
    must confirm which path each row took, and both paths must decide
    every round (a view-0 decision with the fault placement used here).
    """
    rows = benchmark(scaling.consensus_rows, network_sizes=(16,), rounds=4)
    by_plane = {row["consensus_plane"]: row for row in rows}
    assert set(by_plane) == {"vectorised", "oracle"}
    assert by_plane["vectorised"]["fast_path_disabled"] == 0
    assert by_plane["oracle"]["fast_path_disabled"] == 4
    for row in rows:
        assert row["decisions_per_sec"] > 0
        assert row["first_round_view"] == 0


def test_consensus_only_micro_benchmark(consensus_only_mode):
    """``--consensus-only``: decisions/sec and the consensus/execution gap.

    The acceptance criterion of the message-plane refactor: at ``N = 32``
    the consensus phase used to dominate coded execution by an order of
    magnitude (the event-driven oracle measures ~20x here); the vectorised
    plane must close that to <= 10x (measured ~2x) while deciding at least
    3x more rounds per second than the oracle.
    """
    import pytest

    if not consensus_only_mode:
        pytest.skip("pass --consensus-only to run the consensus micro-benchmark")

    best: dict[str, dict] = {}
    for attempt in range(3):
        rows = scaling.consensus_rows(network_sizes=(32,), rounds=8)
        for row in rows:
            plane = row["consensus_plane"]
            if plane not in best or row["wall_seconds"] < best[plane]["wall_seconds"]:
                best[plane] = row
    vectorised, oracle = best["vectorised"], best["oracle"]
    assert vectorised["fast_path_disabled"] == 0
    assert oracle["fast_path_disabled"] == 8
    gap = vectorised["consensus_over_execution"]
    assert gap <= 10.0, (
        f"vectorised consensus still costs {gap:.1f}x the execution phase at "
        "N=32 — the message plane failed to close the consensus gap"
    )
    speedup = vectorised["decisions_per_sec"] / oracle["decisions_per_sec"]
    assert speedup >= 3.0, (
        f"vectorised consensus decides only {speedup:.1f}x the oracle's "
        "rounds/sec at N=32, below the 3x floor"
    )


def test_service_scheduler_parity_bit_identical(field):
    """Largest configuration: the session/ticket service costs ≤ 10% extra.

    The scheduler adds a pure-Python planning pass per batch (ingress pool
    dequeue + ticket resolution) on top of ``run_rounds_batched``; at the
    figure's largest configuration that overhead must stay within 10% of the
    batched-protocol wall-clock, and the recorded round history must remain
    bit-identical (same commands, same ``client:k`` attribution, same
    outputs/states/correctness).
    """
    from repro.service import CSMService, TicketState

    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 32  # the largest network size of this figure
    fault_fraction = 0.2
    num_faults = int(fault_fraction * num_nodes)
    num_machines = csm_supported_machines(num_nodes, fault_fraction, machine.degree)
    num_rounds = 8
    command_rng = np.random.default_rng(7)
    batches = [
        command_rng.integers(1, 1000, size=(num_machines, machine.command_dim))
        for _ in range(num_rounds)
    ]

    def run_service(protocol):
        service = CSMService(
            protocol, max_batch_rounds=num_rounds, min_fill=num_machines
        )
        sessions = [
            service.connect(f"client:{k}") for k in range(num_machines)
        ]
        for batch in batches:
            for k in range(num_machines):
                sessions[k].submit(k, batch[k])
        service.drain()
        return service

    # Min over a few attempts filters transient scheduler noise on shared CI
    # runners; the overhead being compared is microseconds of pure Python
    # against milliseconds of consensus simulation, so 10% is a wide margin.
    batched_time = float("inf")
    service_time = float("inf")
    for attempt in range(3):
        batched = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        batched_records = batched.run_rounds_batched(batches)
        batched_time = min(batched_time, time.perf_counter() - start)

        served = _build_protocol(
            field, machine, num_nodes, num_machines, num_faults, seed=1
        )
        start = time.perf_counter()
        service = run_service(served)
        service_time = min(service_time, time.perf_counter() - start)

    service_records = served.history
    assert len(batched_records) == len(service_records) == num_rounds
    for bat, srv in zip(batched_records, service_records):
        assert np.array_equal(bat.commands, srv.commands)
        assert bat.clients == srv.clients
        assert bat.consensus_views == srv.consensus_views
        assert np.array_equal(bat.result.outputs, srv.result.outputs)
        assert np.array_equal(bat.result.states, srv.result.states)
        assert bat.result.correct == srv.result.correct
    assert batched.all_rounds_correct and served.all_rounds_correct
    assert all(t.state is TicketState.EXECUTED for t in service.tickets())
    ratio = service_time / batched_time
    assert ratio <= 1.10, (
        f"service-scheduled path {ratio:.2f}x the batched-protocol wall-clock "
        f"(service {service_time:.3f}s, batched {batched_time:.3f}s) — "
        "exceeds the 10% scheduling-overhead budget"
    )


def test_sharded_rows_end_to_end(benchmark, shard_count):
    """Sharded serving sweep: every ticket executes in both modes.

    CI smoke-runs this with ``--shards 2``; every row (unsharded and
    sharded) must execute all submitted commands with no failed rounds,
    and the sharded mode must run each shard's own round sequence
    (``rounds_run`` counts the union of per-shard rounds).
    """
    rows = benchmark(
        scaling.sharded_rows, network_sizes=(8, 12), rounds=3, shards=shard_count
    )
    modes = {row["mode"] for row in rows}
    assert "unsharded" in modes and f"sharded:{shard_count}" in modes
    for row in rows:
        assert row["failed"] == 0 and row["failed_rounds"] == 0
        assert row["executed"] == row["tickets"] == row["K_total"] * 3
        assert row["commands_per_sec"] > 0
        assert row["throughput"] > 0


def test_sharded_service_higher_commands_per_sec(field):
    """Largest configuration: two shards beat one consensus instance.

    Per-shard consensus runs over ``N/2`` nodes, so each shard round costs
    roughly a quarter of the unsharded round's consensus messages while the
    two shards together decide nearly the same number of commands — the
    executed-command rate at ``N = 32`` must come out strictly higher
    sharded than unsharded.  Min elapsed per mode over a few attempts
    (the same filter the other speedup tests use) discards transient
    scheduler noise on shared CI runners.

    The comparison pins the event-driven consensus oracle: it measures the
    *sharding* axis (message complexity per round), which only dominates
    the wall-clock when consensus does.  The vectorised message plane
    compresses the consensus share enough that at ``N = 32`` the two
    sequential shard drives no longer pay for themselves — that regime is
    covered by ``test_sharded_rows_end_to_end`` (correctness in both
    deployments), and the concurrent-shard backend the sharding roadmap
    item targets is what would reopen the gap with the plane on.
    """
    unsharded_time = float("inf")
    sharded_time = float("inf")
    unsharded_cmds = sharded_cmds = 0
    for attempt in range(3):
        rows = scaling.sharded_rows(
            network_sizes=(32,), rounds=8, shards=2, vectorised_consensus=False
        )
        by_mode = {row["mode"]: row for row in rows}
        unsharded = by_mode["unsharded"]
        sharded = by_mode["sharded:2"]
        assert unsharded["failed"] == sharded["failed"] == 0
        unsharded_time = min(unsharded_time, unsharded["wall_seconds"])
        unsharded_cmds = unsharded["executed"]
        sharded_time = min(sharded_time, sharded["wall_seconds"])
        sharded_cmds = sharded["executed"]
    ratio = (sharded_cmds / sharded_time) / (unsharded_cmds / unsharded_time)
    assert ratio > 1.0, (
        f"sharded commands/sec only {ratio:.2f}x the unsharded service "
        "at N=32 — sharding failed to open the concurrent-consensus axis"
    )


def _run_traffic_scenario(
    field,
    num_nodes,
    ticks,
    num_sessions=8,
    rate=2.0,
    seed=9,
    weighted=True,
):
    """One deterministic open-loop Poisson run under a saturating QoS policy.

    Capacity is pinned to one round per tick (``max_batch_rounds=1``, ``K``
    slots) against an offered load of ``rate * num_sessions`` commands per
    tick, so the run saturates; the per-session cap and the admission
    watermark bound the backlog, and session ``traffic:0`` carries stride
    weight 2.  Everything downstream — throttle decisions, latency
    percentiles in logical ticks, per-session slot counts — is a pure
    function of ``(num_nodes, ticks, num_sessions, rate, seed)``.
    """
    from repro.rng import default_stream
    from repro.service import CSMService, OpenLoopDriver, PoissonProcess, QosPolicy

    machine = bank_account_machine(field, num_accounts=2)
    num_faults = int(0.2 * num_nodes)
    num_machines = max(
        csm_supported_machines(num_nodes, 0.2, machine.degree) // 2, 1
    )
    protocol = _build_protocol(
        field, machine, num_nodes, num_machines, num_faults, seed=1
    )
    qos = QosPolicy(
        max_session_pending=16,
        admission_watermark=8 * num_machines,
        selection="weighted_fair" if weighted else "fifo",
        session_weights={"traffic:0": 2} if weighted else {},
    )
    service = CSMService(protocol, max_batch_rounds=1, qos=qos)
    driver = OpenLoopDriver(
        service,
        PoissonProcess(rate=rate),
        num_sessions=num_sessions,
        rng=default_stream(seed),
    )
    report = driver.run(ticks, drain=False)
    return service, qos, report


def test_traffic_rows_smoke(benchmark, traffic_mode):
    """``--traffic``: small open-loop Poisson/bursty sweep at N=16.

    The CI smoke for the traffic harness: both arrival processes run over
    the experiment sweep's QoS configuration, every accepted ticket
    resolves, and the logical-tick latency percentiles are populated.
    """
    import pytest

    if not traffic_mode:
        pytest.skip("pass --traffic to run the open-loop traffic benchmarks")

    rows = benchmark(
        scaling.traffic_rows, network_sizes=(16,), ticks=16, num_sessions=8
    )
    assert {row["process"] for row in rows} == {"poisson", "bursty"}
    for row in rows:
        assert row["submitted"] > 0
        # drained run: everything accepted was eventually delivered
        assert row["executed"] == row["submitted"] - row["throttled"]
        assert row["p50_commit"] is not None and row["p50_commit"] >= 1
        assert row["p99_commit"] >= row["p50_commit"]
        assert row["p99_execute"] >= row["p50_execute"] >= row["p50_commit"]


def test_traffic_qos_fairness_and_backpressure(field, traffic_mode):
    """``--traffic`` at N=32: weighted shares, bounded queues, percentiles.

    The acceptance gate of the QoS subsystem, on a saturating open-loop
    Poisson workload:

    * **Weighted fair selection** — the stride-weight-2 session receives
      ~2x the delivered slots of the mean weight-1 session (measured 1.9x;
      the run is deterministic, the band allows seed-level variation only).
    * **Bounded queues** — the ingress backlog never exceeds the admission
      watermark nor the summed per-session caps, and both throttle causes
      fire and are reported with machine-readable reasons.
    * **Latency accounting** — p50/p99 commit and execute latency are
      populated, in logical ticks, with p99 >= p50 >= 1.
    """
    import pytest

    from repro.service import ThrottleReason, TicketState

    if not traffic_mode:
        pytest.skip("pass --traffic to run the open-loop traffic benchmarks")

    num_sessions = 8
    service, qos, report = _run_traffic_scenario(
        field, num_nodes=32, ticks=30, num_sessions=num_sessions
    )

    # Weighted fair selection: ~2x slots for the weight-2 session.
    shares = report.executed_by_session
    weighted = shares["traffic:0"]
    others = [count for name, count in shares.items() if name != "traffic:0"]
    assert min(others) > 0
    ratio = weighted / (sum(others) / len(others))
    assert 1.6 <= ratio <= 2.4, (
        f"weight-2 session received {ratio:.2f}x the mean weight-1 slots, "
        "outside the ~2x weighted-fair band"
    )

    # Bounded queues: backlog capped by watermark and per-session caps.
    assert qos.admission_watermark is not None
    assert report.max_pending <= qos.admission_watermark
    assert report.max_pending <= num_sessions * qos.max_session_pending
    assert report.throttled_session > 0 and report.throttled_admission > 0
    assert report.throttled == report.throttled_session + report.throttled_admission
    throttled = [
        t for t in service.tickets() if t.state is TicketState.THROTTLED
    ]
    assert len(throttled) == report.throttled
    assert all(
        t.throttle_reason
        in (ThrottleReason.SESSION_QUEUE_FULL, ThrottleReason.ADMISSION_SHED)
        for t in throttled
    )

    # Latency percentiles in logical ticks.
    for key in ("commit_latency", "execute_latency"):
        percentiles = getattr(report, key)
        assert percentiles["p50"] is not None and percentiles["p50"] >= 1
        assert percentiles["p99"] >= percentiles["p50"]


def test_throughput_json_artifact(json_artifact_path, shard_count):
    """Write the ``BENCH_throughput.json`` perf-trajectory artifact.

    Enabled by ``--json PATH``: runs a quick sweep of every serving mode and
    records the executed-commands-per-second rate (plus the paper-metric
    throughput) per mode, with the generating configuration, so CI can
    archive one comparable artifact per PR.
    """
    import json

    import pytest

    if json_artifact_path is None:
        pytest.skip("pass --json PATH to write the throughput artifact")

    engine_rows = scaling.pipelined_rows(network_sizes=(16, 32), rounds=16)
    consensus_rows = scaling.consensus_rows(network_sizes=(16, 32), rounds=8)
    protocol_batched = scaling.protocol_rows(
        network_sizes=(8, 12), rounds=3, batched_protocol=True
    )
    protocol_pipelined = scaling.protocol_rows(
        network_sizes=(8, 12), rounds=3, pipelined=True
    )
    service_rows = scaling.service_rows(network_sizes=(8, 12), rounds=3)
    sharded_rows = scaling.sharded_rows(
        network_sizes=(8, 12), rounds=3, shards=shard_count
    )
    # Open-loop latency percentiles are logical-tick counts — deterministic,
    # so the p99/p50 ratios below are gateable across machines.
    from repro.gf.prime_field import PrimeField

    _, _, traffic_report = _run_traffic_scenario(
        PrimeField(), num_nodes=32, ticks=30
    )

    def rate(rows, key="commands_per_sec"):
        return {str(row.get("N")): row.get(key) for row in rows}

    largest = max(row["N"] for row in engine_rows)
    per_mode = {
        mode: [row for row in engine_rows if row["mode"] == mode]
        for mode in ("batched", "pipelined")
    }
    artifact = {
        "artifact": "BENCH_throughput",
        "config": {
            "engine_sweep": {"network_sizes": [16, 32], "rounds": 16},
            "consensus_sweep": {"network_sizes": [16, 32], "rounds": 8},
            "protocol_sweep": {"network_sizes": [8, 12], "rounds": 3},
            "shards": shard_count,
        },
        "modes": {
            "engine-batched": rate(per_mode["batched"]),
            "engine-pipelined": rate(per_mode["pipelined"]),
            "consensus-vectorised": {
                str(row["N"]): row["decisions_per_sec"]
                for row in consensus_rows
                if row["consensus_plane"] == "vectorised"
            },
            "consensus-oracle": {
                str(row["N"]): row["decisions_per_sec"]
                for row in consensus_rows
                if row["consensus_plane"] == "oracle"
            },
            "protocol-batched": rate(protocol_batched, key="throughput"),
            "protocol-pipelined": rate(protocol_pipelined, key="throughput"),
            "service": rate(service_rows, key="throughput"),
            "sharded": {
                f"{row['mode']}@{row['N']}": row["commands_per_sec"]
                for row in sharded_rows
            },
        },
        "pipelined_speedup_at_largest": (
            next(
                row["commands_per_sec"]
                for row in per_mode["pipelined"]
                if row["N"] == largest
            )
            / next(
                row["commands_per_sec"]
                for row in per_mode["batched"]
                if row["N"] == largest
            )
        ),
        "consensus_speedup_at_largest": (
            next(
                row["decisions_per_sec"]
                for row in consensus_rows
                if row["N"] == 32 and row["consensus_plane"] == "vectorised"
            )
            / next(
                row["decisions_per_sec"]
                for row in consensus_rows
                if row["N"] == 32 and row["consensus_plane"] == "oracle"
            )
        ),
        "consensus_over_execution_at_largest": next(
            row["consensus_over_execution"]
            for row in consensus_rows
            if row["N"] == 32 and row["consensus_plane"] == "vectorised"
        ),
        "traffic": {
            "N": 32,
            "ticks": traffic_report.ticks,
            "sessions": traffic_report.num_sessions,
            "submitted": traffic_report.submitted,
            "executed": traffic_report.executed,
            "throttled": traffic_report.throttled,
            "max_pending": traffic_report.max_pending,
            "p50_commit": traffic_report.commit_latency["p50"],
            "p99_commit": traffic_report.commit_latency["p99"],
            "p50_execute": traffic_report.execute_latency["p50"],
            "p99_execute": traffic_report.execute_latency["p99"],
        },
        "traffic_p99_over_p50_commit": (
            traffic_report.commit_latency["p99"]
            / traffic_report.commit_latency["p50"]
        ),
        "traffic_p99_over_p50_execute": (
            traffic_report.execute_latency["p99"]
            / traffic_report.execute_latency["p50"]
        ),
        "rows": {
            "engine": engine_rows,
            "consensus": consensus_rows,
            "protocol_batched": protocol_batched,
            "protocol_pipelined": protocol_pipelined,
            "service": service_rows,
            "sharded": sharded_rows,
        },
    }
    for row in engine_rows:
        assert row["identical"]
    for row in consensus_rows:
        expected = 0 if row["consensus_plane"] == "vectorised" else row["rounds"]
        assert row["fast_path_disabled"] == expected
    with open(json_artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=2, default=float)


def test_quasilinear_model_curve_shape(benchmark):
    def curve():
        return [quasilinear_coding_cost(n) for n in (64, 128, 256, 512, 1024)]

    values = benchmark(curve)
    # Quasilinear: doubling N more than doubles the cost (the log factors) but
    # stays far below the ratio of 4 a quadratic-cost model would show.
    for i in range(1, len(values)):
        ratio = values[i] / values[i - 1]
        assert 2.0 < ratio < 3.2


def test_csm_throughput_model_scales_with_n(benchmark):
    from repro.analysis.metrics import csm_metrics

    def throughputs():
        return [
            csm_metrics(
                n, 0.25, 1, transition_cost=8,
                coding_cost=quasilinear_coding_cost(n) / n,
            ).throughput
            for n in (64, 256, 1024)
        ]

    values = benchmark(throughputs)
    # Throughput keeps increasing with N (up to the log factors).
    assert values[2] > values[1] > values[0]
