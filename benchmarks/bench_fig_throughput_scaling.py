"""Section 6.3 — throughput scaling with and without delegated coding.

Measures per-node execution-phase operation counts across network sizes and
compares the distributed-coding path (every node decodes) against the
delegated path (single worker, INTERMIX verification) and the paper's
quasilinear model curve ``N log^2 N log log N``.
"""

from repro.analysis.complexity import quasilinear_coding_cost
from repro.experiments import scaling


def test_throughput_rows_distributed_vs_delegated(benchmark):
    rows = benchmark(scaling.throughput_rows, network_sizes=(8, 16, 24), fault_fraction=0.2)
    for row in rows:
        # Non-worker nodes in the delegated path do asymptotically less work
        # than nodes in the distributed path (which each run a full decode).
        assert row["delegated_commoner_ops"] < row["distributed_ops_per_node"]
    # The distributed per-node cost grows super-linearly with N (it contains a
    # textbook RS decode), while the model curve stays quasilinear.
    assert rows[-1]["distributed_ops_per_node"] > rows[0]["distributed_ops_per_node"]


def test_quasilinear_model_curve_shape(benchmark):
    def curve():
        return [quasilinear_coding_cost(n) for n in (64, 128, 256, 512, 1024)]

    values = benchmark(curve)
    # Quasilinear: doubling N more than doubles the cost (the log factors) but
    # stays far below the ratio of 4 a quadratic-cost model would show.
    for i in range(1, len(values)):
        ratio = values[i] / values[i - 1]
        assert 2.0 < ratio < 3.2


def test_csm_throughput_model_scales_with_n(benchmark):
    from repro.analysis.metrics import csm_metrics

    def throughputs():
        return [
            csm_metrics(
                n, 0.25, 1, transition_cost=8,
                coding_cost=quasilinear_coding_cost(n) / n,
            ).throughput
            for n in (64, 256, 1024)
        ]

    values = benchmark(throughputs)
    # Throughput keeps increasing with N (up to the log factors).
    assert values[2] > values[1] > values[0]
