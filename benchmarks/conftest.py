"""Shared fixtures for the benchmark suite (pytest-benchmark).

Every benchmark module regenerates one table or figure of the paper (see the
experiment index in DESIGN.md); the `benchmark` fixture times the workload
while the assertions check that the qualitative shape the paper reports
still holds.
"""

import numpy as np
import pytest

from repro.gf.prime_field import PrimeField


@pytest.fixture(scope="session")
def field():
    return PrimeField()


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
