"""Shared fixtures for the benchmark suite (pytest-benchmark).

Every benchmark module regenerates one table or figure of the paper (see the
experiment index in DESIGN.md); the `benchmark` fixture times the workload
while the assertions check that the qualitative shape the paper reports
still holds.
"""

import numpy as np
import pytest

from repro.gf.prime_field import PrimeField


def pytest_addoption(parser):
    parser.addoption(
        "--batched-protocol",
        action="store_true",
        default=False,
        help=(
            "Drive the end-to-end protocol benchmarks through "
            "CSMProtocol.run_rounds_batched (decide_rounds + deliver_all + "
            "execute_rounds) instead of the sequential run_round loop."
        ),
    )


    parser.addoption(
        "--service",
        action="store_true",
        default=False,
        help=(
            "Drive the end-to-end protocol benchmarks through the "
            "client-session service (CSMService sessions + RoundScheduler "
            "batches) instead of the lockstep entry points."
        ),
    )

    parser.addoption(
        "--shards",
        action="store",
        type=int,
        default=2,
        help=(
            "Shard count for the sharded-service benchmarks "
            "(ShardedCSMService with one consensus instance per shard)."
        ),
    )

    parser.addoption(
        "--pipelined",
        action="store_true",
        default=False,
        help=(
            "Drive the end-to-end protocol benchmarks through the "
            "speculative decode/execute pipeline "
            "(CSMProtocol.run_rounds_pipelined / CSMService(pipeline=True))."
        ),
    )

    parser.addoption(
        "--consensus-only",
        action="store_true",
        default=False,
        help=(
            "Enable the consensus-phase micro-benchmark "
            "(scaling.consensus_rows: decisions/sec for the vectorised "
            "message plane versus the event-driven oracle, plus the "
            "consensus-over-execution wall-clock ratio)."
        ),
    )

    parser.addoption(
        "--consensus-oracle",
        action="store_true",
        default=False,
        help=(
            "Pin the end-to-end protocol benchmarks to the event-driven "
            "consensus oracle (vectorised_consensus=False), so CI exercises "
            "the reference path alongside the message-plane fast path."
        ),
    )

    parser.addoption(
        "--traffic",
        action="store_true",
        default=False,
        help=(
            "Enable the open-loop traffic benchmarks (OpenLoopDriver over "
            "Poisson/bursty arrivals under a QosPolicy: latency percentiles "
            "in logical ticks, weighted-fair slot shares, bounded queues)."
        ),
    )

    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help=(
            "Enable the chaos benchmarks (bench_fig_chaos: deterministic "
            "fault schedules over the service — crash/recover with resync, "
            "beyond-radius corrupt bursts retried by RetryPolicy, and the "
            "fault-free overhead ratio pinned at 1.0)."
        ),
    )

    parser.addoption(
        "--delegation",
        action="store_true",
        default=False,
        help=(
            "Enable the delegated-verification round benchmarks "
            "(scaling.delegation_rows: DelegationRoundProtocol batched vs "
            "scalar INTERMIX, including the >= 3x batched-speedup and "
            "bit-identity gate at the largest configuration)."
        ),
    )

    parser.addoption(
        "--intermix",
        action="store_true",
        default=False,
        help=(
            "Enable the INTERMIX engine benchmarks "
            "(IntermixProtocol.run_batch vs the scalar run oracle: stacked "
            "matrix products, committee reuse, bit-identical outcomes)."
        ),
    )

    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "Write the BENCH_throughput.json artifact (config plus "
            "commands/sec per mode) to PATH, so the perf trajectory is "
            "tracked across PRs.  Enables test_throughput_json_artifact."
        ),
    )


@pytest.fixture(scope="session")
def batched_protocol(request) -> bool:
    """Whether ``--batched-protocol`` was passed on the command line."""
    return bool(request.config.getoption("--batched-protocol"))


@pytest.fixture(scope="session")
def service_mode(request) -> bool:
    """Whether ``--service`` was passed on the command line."""
    return bool(request.config.getoption("--service"))


@pytest.fixture(scope="session")
def shard_count(request) -> int:
    """The ``--shards`` value for the sharded-service benchmarks."""
    return int(request.config.getoption("--shards"))


@pytest.fixture(scope="session")
def pipelined_mode(request) -> bool:
    """Whether ``--pipelined`` was passed on the command line."""
    return bool(request.config.getoption("--pipelined"))


@pytest.fixture(scope="session")
def consensus_only_mode(request) -> bool:
    """Whether ``--consensus-only`` was passed on the command line."""
    return bool(request.config.getoption("--consensus-only"))


@pytest.fixture(scope="session")
def consensus_oracle_mode(request) -> bool:
    """Whether ``--consensus-oracle`` was passed on the command line."""
    return bool(request.config.getoption("--consensus-oracle"))


@pytest.fixture(scope="session")
def traffic_mode(request) -> bool:
    """Whether ``--traffic`` was passed on the command line."""
    return bool(request.config.getoption("--traffic"))


@pytest.fixture(scope="session")
def chaos_mode(request) -> bool:
    """Whether ``--chaos`` was passed on the command line."""
    return bool(request.config.getoption("--chaos"))


@pytest.fixture(scope="session")
def delegation_mode(request) -> bool:
    """Whether ``--delegation`` was passed on the command line."""
    return bool(request.config.getoption("--delegation"))


@pytest.fixture(scope="session")
def intermix_mode(request) -> bool:
    """Whether ``--intermix`` was passed on the command line."""
    return bool(request.config.getoption("--intermix"))


@pytest.fixture(scope="session")
def json_artifact_path(request) -> "str | None":
    """The ``--json`` artifact path, or None when not requested."""
    return request.config.getoption("--json")


@pytest.fixture(scope="session")
def field():
    return PrimeField()


@pytest.fixture
def rng():
    return np.random.default_rng(2024)
