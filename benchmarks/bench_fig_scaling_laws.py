"""Theorems 1 & 2 — simultaneous scaling of storage efficiency and security.

Sweeps the network size N at a fixed fault fraction and checks that the
measured maximum number of supported machines K (and hence the storage
efficiency) grows linearly with N while the tolerated fault count also grows
linearly — the combination neither replication baseline achieves.
"""

from repro.experiments import scaling


def test_scaling_laws_sweep(benchmark):
    rows = benchmark(
        scaling.scaling_law_rows, network_sizes=(8, 16, 24), fault_fraction=0.25, degree=1
    )
    # Measured K matches the Theorem 1 closed form at every N.
    for row in rows:
        assert row["K_measured"] == row["K_formula"]
    # Both security and storage grow with N (Theorem 1's simultaneous scaling).
    assert rows[-1]["csm_security"] > rows[0]["csm_security"]
    assert rows[-1]["csm_storage"] > rows[0]["csm_storage"]
    # Full replication's storage efficiency stays flat at 1.
    assert all(row["full_replication_storage"] == 1 for row in rows)


def test_partially_synchronous_supports_fewer_machines(benchmark):
    from repro.analysis.metrics import csm_supported_machines

    def both_settings():
        return [
            (
                n,
                csm_supported_machines(n, 0.2, 1, partially_synchronous=False),
                csm_supported_machines(n, 0.2, 1, partially_synchronous=True),
            )
            for n in (16, 32, 64, 128)
        ]

    rows = benchmark(both_settings)
    for _, sync_k, partial_k in rows:
        assert sync_k >= partial_k
    # Both still scale linearly.
    assert rows[-1][1] >= 4 * rows[0][1] * 0.8
    assert rows[-1][2] >= 4 * rows[0][2] * 0.8
