"""Figure 2 / Section 3 — security of the replication baselines.

Measures, by fault injection, the exact number of corruptions each baseline
survives: full replication tolerates a minority of all N nodes, partial
replication only a minority of one group of q = N / K nodes.
"""

from repro.analysis.measurement import (
    find_breaking_faults,
    measure_full_replication,
    measure_partial_replication,
)
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine


def test_full_replication_tolerates_minority(benchmark, field):
    machine = bank_account_machine(field, num_accounts=1)

    def sweep():
        return find_breaking_faults(
            measure_full_replication, machine, 9, 3, max_faults=5, rounds=1
        )

    tolerated = benchmark(sweep)
    assert tolerated == 4  # floor((9 - 1) / 2)


def test_partial_replication_security_collapses_by_k(benchmark, field):
    machine = bank_account_machine(field, num_accounts=1)

    def sweep():
        return find_breaking_faults(
            measure_partial_replication, machine, 12, 4, max_faults=4, rounds=1
        )

    tolerated = benchmark(sweep)
    # Groups of 3: a concentrated adversary breaks a group with 2 corruptions.
    assert tolerated == 1


def test_csm_outperforms_partial_replication_at_equal_storage(benchmark, field):
    from repro.analysis.measurement import measure_csm

    machine = bank_account_machine(field, num_accounts=1)

    def sweep():
        return find_breaking_faults(
            measure_csm, machine, 12, 4, max_faults=6, rounds=1
        )

    tolerated = benchmark(sweep)
    assert tolerated == 4  # (12 - 3 - 1) // 2, vs 1 for partial replication
