"""Table 1 — security / storage efficiency / throughput comparison.

Regenerates both the closed-form rows and the measured rows of Table 1 and
checks the qualitative ordering the paper reports: full replication has
storage 1, partial replication trades security for storage, CSM gets both.
"""

from repro.experiments import table1


def _rows(batched: bool = True):
    return table1.run(
        num_nodes=16, fault_fraction=0.25, degree=1, rounds=1, measured=True,
        batched=batched,
    )


def test_table1_regeneration(benchmark):
    rows = benchmark(_rows)
    formula = {r["scheme"]: r for r in rows if r["kind"] == "formula"}
    measured = {r["scheme"]: r for r in rows if r["kind"] == "measured"}

    # Closed-form shape (Table 1).
    assert formula["full-replication"]["storage_efficiency"] == 1
    assert formula["coded-state-machine"]["storage_efficiency"] > 1
    assert (
        formula["coded-state-machine"]["security"]
        > formula["partial-replication"]["security"]
    )
    limit = formula["information-theoretic-limit"]
    assert formula["coded-state-machine"]["security"] <= limit["security"]
    assert formula["coded-state-machine"]["storage_efficiency"] <= limit["storage_efficiency"]

    # Measured shape: CSM stays correct at its claimed fault level and stores
    # K machines in single-state-sized storage; full replication stores 1.
    assert measured["coded-state-machine"]["correct"]
    assert measured["full-replication"]["correct"]
    assert measured["coded-state-machine"]["storage_efficiency"] > measured[
        "full-replication"
    ]["storage_efficiency"]
    # Partial replication collapses when the adversary concentrates its faults.
    assert not measured["partial-replication"]["correct"]


def test_table1_batched_matches_scalar(benchmark):
    """The batch flag changes amortised op counts, never measured outcomes."""
    batched_rows = benchmark(_rows, batched=True)
    scalar_rows = _rows(batched=False)
    batched_measured = {
        r["scheme"]: r for r in batched_rows if r["kind"] == "measured"
    }
    scalar_measured = {
        r["scheme"]: r for r in scalar_rows if r["kind"] == "measured"
    }
    assert set(batched_measured) == set(scalar_measured)
    for scheme, row in batched_measured.items():
        assert row["correct"] == scalar_measured[scheme]["correct"]
        assert row["failed_rounds"] == scalar_measured[scheme]["failed_rounds"]
        assert row["storage_efficiency"] == scalar_measured[scheme]["storage_efficiency"]
    # CSM is where batching amortises work: its measured per-node op count
    # must strictly improve.
    assert (
        batched_measured["coded-state-machine"]["ops_per_node"]
        < scalar_measured["coded-state-machine"]["ops_per_node"]
    )


def test_table1_degree_two_variant(benchmark):
    rows = benchmark(
        table1.run, num_nodes=16, fault_fraction=0.25, degree=2, rounds=1, measured=False
    )
    formula = {r["scheme"]: r for r in rows if r["kind"] == "formula"}
    # Higher degree reduces (but does not destroy) CSM's storage scaling.
    degree1 = {
        r["scheme"]: r
        for r in table1.run(num_nodes=16, fault_fraction=0.25, degree=1, measured=False)
        if r["kind"] == "formula"
    }
    assert (
        formula["coded-state-machine"]["storage_efficiency"]
        <= degree1["coded-state-machine"]["storage_efficiency"]
    )
    assert formula["coded-state-machine"]["storage_efficiency"] >= 1
