"""Figure 4 / Section 6.2 — delegated coding verified by INTERMIX.

Measures the per-role cost of the delegated encoding/decoding path across
network sizes: the worker's cost grows with N, the commoners' verification
cost stays flat, and a cheating worker is always rejected.
"""

import numpy as np
import pytest

from repro.exceptions import VerificationError
from repro.intermix.delegation import DelegatedCodingService
from repro.intermix.worker import WorkerStrategy
from repro.lcc.scheme import LagrangeScheme


def _delegated_encode_costs(field, network_sizes):
    results = []
    for num_nodes in network_sizes:
        num_machines = max(num_nodes // 4, 2)
        scheme = LagrangeScheme(field, num_machines, num_nodes)
        service = DelegatedCodingService(
            scheme, transition_degree=1,
            node_ids=[f"node-{i}" for i in range(num_nodes)],
            fault_fraction=0.2, rng=np.random.default_rng(0),
        )
        commands = np.arange(num_machines).reshape(-1, 1) + 1
        _, report = service.encode_vectors_verified(commands)
        assert report.accepted
        results.append(
            {
                "N": num_nodes,
                "worker": report.worker_operations,
                "commoner": report.max_commoner_operations,
            }
        )
    return results


def test_worker_cost_grows_but_commoner_cost_stays_flat(benchmark, field):
    rows = benchmark(_delegated_encode_costs, field, (8, 16, 32))
    assert rows[-1]["worker"] > rows[0]["worker"]
    assert rows[-1]["commoner"] <= rows[0]["commoner"] + 2


def test_cheating_delegated_encoder_rejected(benchmark, field):
    scheme = LagrangeScheme(field, 3, 12)
    node_ids = [f"node-{i}" for i in range(12)]

    def run_with_cheater():
        service = DelegatedCodingService(
            scheme, transition_degree=1, node_ids=node_ids, fault_fraction=0.2,
            rng=np.random.default_rng(1),
            worker_strategies={n: WorkerStrategy.CORRUPT_RESULT for n in node_ids},
        )
        _, report = service.encode_vectors_verified(np.array([[1], [2], [3]]))
        return report

    report = benchmark(run_with_cheater)
    assert not report.accepted


def test_cheating_delegated_decoder_rejected(benchmark, field, rng):
    from repro.lcc.encoder import CodedStateEncoder

    scheme = LagrangeScheme(field, 3, 12)
    node_ids = [f"node-{i}" for i in range(12)]
    coded = CodedStateEncoder(scheme).encode(rng.integers(0, 100, size=(3, 1)))

    def run_with_cheater():
        service = DelegatedCodingService(
            scheme, transition_degree=1, node_ids=node_ids, fault_fraction=0.2,
            rng=np.random.default_rng(2),
            corrupt_decoder_workers=set(node_ids),
        )
        with pytest.raises(VerificationError):
            service.decode_results_verified(coded)
        return True

    assert benchmark(run_with_cheater)
