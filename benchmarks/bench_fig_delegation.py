"""Figure 4 / Section 6.2 — delegated coding verified by INTERMIX.

Measures the per-role cost of the delegated encoding/decoding path across
network sizes: the worker's cost grows with N, the commoners' verification
cost stays flat, and a cheating worker is always rejected.

With ``--delegation`` the suite additionally drives the full
:class:`~repro.intermix.rounds.DelegationRoundProtocol` workload —
delegated encode, coded execute, fast verified decode, delegated state
update — and gates the batched INTERMIX path: bit-identical history to the
scalar oracle and at least a 3x rounds/sec speedup at the largest
configuration.  ``--json PATH`` writes the ``BENCH_delegation.json``
perf-trajectory artifact (self-describing gate metadata included).
"""

import numpy as np
import pytest

from repro.exceptions import VerificationError
from repro.experiments import scaling
from repro.gf.prime_field import PrimeField
from repro.intermix.delegation import DelegatedCodingService
from repro.intermix.rounds import DelegationRoundProtocol
from repro.intermix.worker import WorkerStrategy
from repro.lcc.scheme import LagrangeScheme
from repro.machine.library import bank_account_machine
from repro.rng import default_stream, derived_stream

# The largest delegated-round configuration: the ISSUE-level speedup floor
# (>= 3x batched over scalar) is defined at this size.
LARGEST = {"num_nodes": 32, "num_machines": 8, "rounds": 16}


def _delegated_encode_costs(field, network_sizes):
    results = []
    for num_nodes in network_sizes:
        num_machines = max(num_nodes // 4, 2)
        scheme = LagrangeScheme(field, num_machines, num_nodes)
        service = DelegatedCodingService(
            scheme, transition_degree=1,
            node_ids=[f"node-{i}" for i in range(num_nodes)],
            fault_fraction=0.2, rng=default_stream(0),
        )
        commands = np.arange(num_machines).reshape(-1, 1) + 1
        _, report = service.encode_vectors_verified(commands)
        assert report.accepted
        results.append(
            {
                "N": num_nodes,
                "worker": report.worker_operations,
                "commoner": report.max_commoner_operations,
            }
        )
    return results


def test_worker_cost_grows_but_commoner_cost_stays_flat(benchmark, field):
    rows = benchmark(_delegated_encode_costs, field, (8, 16, 32))
    assert rows[-1]["worker"] > rows[0]["worker"]
    assert rows[-1]["commoner"] <= rows[0]["commoner"] + 2


def test_cheating_delegated_encoder_rejected(benchmark, field):
    scheme = LagrangeScheme(field, 3, 12)
    node_ids = [f"node-{i}" for i in range(12)]

    def run_with_cheater():
        service = DelegatedCodingService(
            scheme, transition_degree=1, node_ids=node_ids, fault_fraction=0.2,
            rng=default_stream(1),
            worker_strategies={n: WorkerStrategy.CORRUPT_RESULT for n in node_ids},
        )
        _, report = service.encode_vectors_verified(np.array([[1], [2], [3]]))
        return report

    report = benchmark(run_with_cheater)
    assert not report.accepted


def test_cheating_delegated_decoder_rejected(benchmark, field, rng):
    from repro.lcc.encoder import CodedStateEncoder

    scheme = LagrangeScheme(field, 3, 12)
    node_ids = [f"node-{i}" for i in range(12)]
    coded = CodedStateEncoder(scheme).encode(rng.integers(0, 100, size=(3, 1)))

    def run_with_cheater():
        service = DelegatedCodingService(
            scheme, transition_degree=1, node_ids=node_ids, fault_fraction=0.2,
            rng=default_stream(2),
            corrupt_decoder_workers=set(node_ids),
        )
        with pytest.raises(VerificationError):
            service.decode_results_verified(coded)
        return True

    assert benchmark(run_with_cheater)


# ---------------------------------------------------------------------------
# --delegation mode: the full delegated-round workload
# ---------------------------------------------------------------------------

def _round_commands(num_machines, command_dim, rounds, seed=0):
    stream = derived_stream(default_stream(seed))
    return [
        stream.integers(1, 1000, size=(num_machines, command_dim))
        for _ in range(rounds)
    ]


def _histories_identical(a, b):
    return all(
        np.array_equal(x.result.outputs, y.result.outputs)
        and np.array_equal(x.result.states, y.result.states)
        and x.result.correct == y.result.correct
        and x.result.ops_per_node == y.result.ops_per_node
        for x, y in zip(a.history, b.history)
    )


def test_delegation_rows_end_to_end(benchmark, delegation_mode):
    """The delegation sweep: both modes run, agree, and nothing fails."""
    if not delegation_mode:
        pytest.skip("pass --delegation to run the delegated-round benchmarks")

    rows = benchmark(scaling.delegation_rows, network_sizes=(8, 16), rounds=3)
    assert {row["mode"] for row in rows} == {"batched", "scalar"}
    for row in rows:
        assert row["identical"]
        assert row["failed_rounds"] == 0
        assert row["rounds_per_sec"] > 0
        assert row["throughput"] > 0
    # The paper metric is mode-independent: op counts are bit-identical.
    by_n = {}
    for row in rows:
        by_n.setdefault(row["N"], set()).add(row["throughput"])
    assert all(len(values) == 1 for values in by_n.values())


def test_delegated_rounds_speedup_and_bit_identity(benchmark, delegation_mode):
    """>= 3x batched-over-scalar rounds/sec at the largest configuration.

    Timing takes the best of three attempts per mode (scheduler-noise
    floor); bit-identity of the recorded histories is asserted on every
    attempt, so the speedup never comes at the price of divergence.
    """
    if not delegation_mode:
        pytest.skip("pass --delegation to run the delegated-round benchmarks")
    import time

    num_nodes = LARGEST["num_nodes"]
    num_machines = LARGEST["num_machines"]
    rounds = LARGEST["rounds"]
    machine = bank_account_machine(PrimeField(), 2)
    commands = _round_commands(num_machines, machine.command_dim, rounds)

    def measure():
        timings = {"batched": float("inf"), "scalar": float("inf")}
        for _ in range(3):
            protocols = {}
            for mode, batched in (("batched", True), ("scalar", False)):
                protocol = DelegationRoundProtocol(
                    machine,
                    num_machines,
                    [f"node-{i}" for i in range(num_nodes)],
                    rng=default_stream(5),
                    batched=batched,
                )
                start = time.perf_counter()
                protocol.run_rounds_batched(commands)
                timings[mode] = min(timings[mode], time.perf_counter() - start)
                protocols[mode] = protocol
            assert _histories_identical(protocols["batched"], protocols["scalar"])
            assert protocols["batched"].failed_rounds == 0
        return timings

    timings = benchmark(measure)
    speedup = timings["scalar"] / timings["batched"]
    assert speedup >= 3.0, (
        f"batched delegated rounds only {speedup:.2f}x faster than the "
        f"scalar oracle at N={num_nodes}, K={num_machines} (floor: 3x)"
    )


def test_delegation_fraud_voids_every_round(benchmark, delegation_mode):
    """All-cheating workers: every round rejected, state never advances."""
    if not delegation_mode:
        pytest.skip("pass --delegation to run the delegated-round benchmarks")

    machine = bank_account_machine(PrimeField(), 2)
    node_ids = [f"node-{i}" for i in range(16)]
    commands = _round_commands(4, machine.command_dim, 3, seed=7)

    def run_with_cheaters():
        protocol = DelegationRoundProtocol(
            machine,
            4,
            node_ids,
            rng=default_stream(7),
            worker_strategies={n: WorkerStrategy.CORRUPT_RESULT for n in node_ids},
            batched=True,
        )
        protocol.run_rounds_batched(commands)
        return protocol

    protocol = benchmark(run_with_cheaters)
    assert protocol.failed_rounds == len(protocol.history) == 3
    for record in protocol.history:
        assert not record.result.correct
        assert record.result.diagnostics["confirmed_fraud"]
        assert not record.result.outputs.any()
    assert protocol.delivered_outputs == {}


def test_delegation_json_artifact(json_artifact_path, delegation_mode):
    """Write the ``BENCH_delegation.json`` perf-trajectory artifact.

    Enabled by ``--json PATH`` together with ``--delegation``.  The artifact
    is self-describing for the regression gate: its ``gate`` block names the
    deterministic modes (paper-metric throughput — raw-comparable across
    machines), the wall-clock modes (rounds/sec, ``--raw`` only) and the
    self-normalised ratio metrics (the batched speedup, clamped so machine
    jitter far above the floor does not churn the baseline).
    """
    import json

    if json_artifact_path is None or not delegation_mode:
        pytest.skip("pass --delegation --json PATH to write the artifact")

    rows = scaling.delegation_rows(network_sizes=(8, 16, 32), rounds=8)
    assert all(row["identical"] for row in rows)
    largest = max(row["N"] for row in rows)

    def rate(mode, key):
        return {
            str(row["N"]): row[key] for row in rows if row["mode"] == mode
        }

    speedup = next(
        row["rounds_per_sec"] for row in rows
        if row["N"] == largest and row["mode"] == "batched"
    ) / next(
        row["rounds_per_sec"] for row in rows
        if row["N"] == largest and row["mode"] == "scalar"
    )
    artifact = {
        "artifact": "BENCH_delegation",
        "config": {
            "network_sizes": [8, 16, 32],
            "rounds": 8,
            "machine": "bank_account(2)",
            "speedup_floor": 3.0,
            "speedup_cap": 6.0,
        },
        "gate": {
            "deterministic_modes": ["delegation-throughput"],
            "wall_clock_modes": ["delegation-batched", "delegation-scalar"],
            "ratio_metrics": [["delegation_speedup_at_largest", "min"]],
        },
        "modes": {
            # Paper metric (commands per unit per-node field operation):
            # a pure function of the configuration, raw-gated.
            "delegation-throughput": rate("batched", "throughput"),
            # Wall-clock rates: machine-dependent, gated only under --raw.
            "delegation-batched": rate("batched", "rounds_per_sec"),
            "delegation-scalar": rate("scalar", "rounds_per_sec"),
        },
        # Clamped at 2x the acceptance floor: the measured ratio sits far
        # above 3x, so gating the raw value would make the baseline churn
        # with machine load; the clamp gates "still comfortably above the
        # floor" instead.
        "delegation_speedup_at_largest": min(speedup, 6.0),
        "rows": rows,
    }
    assert artifact["delegation_speedup_at_largest"] >= 3.0
    with open(json_artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=2, default=float)
