"""Ablation — Berlekamp–Welch (linear system) vs Gao (extended Euclid).

DESIGN.md calls this design choice out: both decoders implement the same
noisy-interpolation radius, so CSM can use either.  The benchmark compares
their wall-clock cost and verifies they agree on every decodable input.
"""

import numpy as np
import pytest

from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.reed_solomon import ReedSolomonCode


def _corrupted_word(field, rng, length=32, dimension=8):
    code = ReedSolomonCode(field, field.distinct_points(length), dimension)
    message = rng.integers(0, field.order, size=dimension)
    word = code.encode(message)
    positions = rng.choice(length, size=code.correction_radius, replace=False)
    for pos in positions:
        word[pos] = field.add(int(word[pos]), int(rng.integers(1, field.order)))
    return code, message, word


@pytest.mark.parametrize("decoder_name", ["berlekamp-welch", "gao"])
def test_decoder_ablation(benchmark, field, rng, decoder_name):
    code, message, word = _corrupted_word(field, rng)
    decoder = (
        BerlekampWelchDecoder(code) if decoder_name == "berlekamp-welch" else GaoDecoder(code)
    )
    result = benchmark(decoder.decode, word)
    assert result.polynomial.coefficient_array(code.dimension).tolist() == [
        int(m) % field.order for m in message
    ]


def test_decoders_agree_on_random_inputs(benchmark, field, rng):
    def agreement_sweep():
        for _ in range(5):
            code, _, word = _corrupted_word(field, rng, length=24, dimension=6)
            bw = BerlekampWelchDecoder(code).decode(word)
            gao = GaoDecoder(code).decode(word)
            assert bw.polynomial == gao.polynomial
            assert set(bw.error_positions) == set(gao.error_positions)
        return True

    assert benchmark(agreement_sweep)
