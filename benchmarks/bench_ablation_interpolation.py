"""Ablation — interpolation/evaluation strategies for the coding layer.

Compares the three equivalent ways of producing coded values (direct
Lagrange-coefficient matrix multiplication, interpolation + subproduct-tree
multi-point evaluation, and Vandermonde solves) that Section 6.2's
centralised worker chooses between.
"""

import numpy as np
import pytest

from repro.gf.fast_eval import SubproductTree
from repro.gf.lagrange import lagrange_interpolate
from repro.gf.vandermonde import vandermonde_solve
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme


@pytest.fixture
def scheme(field):
    return LagrangeScheme(field, num_machines=8, num_nodes=32)


def test_matrix_path(benchmark, scheme, rng):
    encoder = CodedStateEncoder(scheme)
    values = rng.integers(0, 1000, size=(8, 2))
    coded = benchmark(encoder.encode, values)
    assert coded.shape == (32, 2)


def test_interpolation_path(benchmark, scheme, rng):
    encoder = CodedStateEncoder(scheme)
    values = rng.integers(0, 1000, size=(8, 2))
    coded = benchmark(encoder.encode_via_interpolation, values)
    assert np.array_equal(coded, encoder.encode(values))


def test_interpolation_strategies_agree(benchmark, field, rng):
    points = field.distinct_points(16)
    values = [int(v) for v in rng.integers(0, field.order, size=16)]

    def all_three():
        direct = lagrange_interpolate(field, points, values)
        tree = SubproductTree(field, points).interpolate(values)
        vandermonde = vandermonde_solve(field, points, np.array(values))
        return direct, tree, vandermonde

    direct, tree, vandermonde = benchmark(all_three)
    assert direct == tree
    assert direct.coefficient_array(16).tolist() == list(vandermonde)
