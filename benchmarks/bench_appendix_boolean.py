"""Appendix A — Boolean state machines via polynomial representation and
field extension.

Benchmarks the truth-table-to-polynomial compiler and checks that a compiled
Boolean machine executed under CSM over GF(2**m) produces bit-exact outputs
despite Byzantine nodes.  ``--json PATH`` writes the ``BENCH_boolean.json``
perf-trajectory artifact (compile rate plus the deterministic per-round
cost of the compiled machine under CSM).
"""

import numpy as np
import pytest

from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.gf.extension_field import BinaryExtensionField
from repro.machine.boolean import (
    BooleanTransitionCompiler,
    boolean_function_to_polynomial,
    embed_bits,
    project_bits,
)
from repro.net.byzantine import RandomGarbageBehavior


def test_boolean_compiler_agrees_with_truth_table(benchmark, rng):
    field = BinaryExtensionField(8)
    n = 4
    table = {i: int(rng.integers(0, 2)) for i in range(2**n)}

    def function(bits):
        index = int("".join(str(b) for b in bits), 2)
        return table[index]

    poly = benchmark(boolean_function_to_polynomial, field, n, function)
    assert poly.total_degree <= n
    for i in range(2**n):
        bits = [int(b) for b in np.binary_repr(i, n)]
        assert poly.evaluate(bits) == table[i]


def test_boolean_machine_round_under_csm(benchmark):
    num_nodes = 9
    field = BinaryExtensionField.for_network_size(num_nodes + 4)
    compiler = BooleanTransitionCompiler(
        field, state_bits=1, command_bits=1,
        next_state_functions=[lambda b: b[0] ^ b[1]],
        output_functions=[lambda b: b[0] | b[1]],
    )
    machine = compiler.compile_machine([0])
    config = CSMConfig(field, num_nodes=num_nodes, num_machines=2,
                       degree=machine.degree, num_faults=1)

    def run_round():
        engine = CodedExecutionEngine(
            config, machine, behaviors={"node-2": RandomGarbageBehavior()},
            rng=np.random.default_rng(0),
        )
        commands = np.array([embed_bits(field, [1]), embed_bits(field, [0])])
        return engine.execute_round(commands)

    result = benchmark(run_round)
    assert result.correct
    assert project_bits(field, result.outputs[0]).tolist() == [1]
    assert project_bits(field, result.outputs[1]).tolist() == [0]


def test_boolean_json_artifact(json_artifact_path):
    """Write the ``BENCH_boolean.json`` perf-trajectory artifact.

    Enabled by ``--json PATH``.  Deterministic gate metric:
    ``boolean-throughput`` — commands per unit per-node field operation for
    one compiled-machine CSM round (a pure function of the configuration).
    Wall-clock metric: truth-table compiles per second.
    """
    import json
    import time

    if json_artifact_path is None:
        pytest.skip("pass --json PATH to write the boolean artifact")

    num_nodes = 9
    field = BinaryExtensionField.for_network_size(num_nodes + 4)
    compiler = BooleanTransitionCompiler(
        field, state_bits=1, command_bits=1,
        next_state_functions=[lambda b: b[0] ^ b[1]],
        output_functions=[lambda b: b[0] | b[1]],
    )
    machine = compiler.compile_machine([0])
    config = CSMConfig(field, num_nodes=num_nodes, num_machines=2,
                       degree=machine.degree, num_faults=1)
    engine = CodedExecutionEngine(
        config, machine, behaviors={"node-2": RandomGarbageBehavior()},
        rng=np.random.default_rng(0),
    )
    commands = np.array([embed_bits(field, [1]), embed_bits(field, [0])])
    result = engine.execute_round(commands)
    assert result.correct

    n_bits = 4
    table_field = BinaryExtensionField(8)

    def parity(bits):
        return bits[0] ^ bits[1] ^ bits[2] ^ bits[3]

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        poly = boolean_function_to_polynomial(table_field, n_bits, parity)
        best = min(best, time.perf_counter() - start)
    assert poly.total_degree <= n_bits

    artifact = {
        "artifact": "BENCH_boolean",
        "config": {
            "num_nodes": num_nodes,
            "num_machines": 2,
            "machine_degree": machine.degree,
            "compiler_bits": n_bits,
        },
        "gate": {
            "deterministic_modes": ["boolean-throughput"],
            "wall_clock_modes": ["boolean-compile"],
            "ratio_metrics": [],
        },
        "modes": {
            "boolean-throughput": {
                str(num_nodes): 2 / result.mean_ops_per_node
            },
            "boolean-compile": {f"{n_bits}-bit": 1.0 / best},
        },
        "round": {
            "correct": result.correct,
            "mean_ops_per_node": result.mean_ops_per_node,
            "polynomial_degree": machine.degree,
        },
    }
    with open(json_artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=2, default=float)
