"""Table 2 — fault bounds for consensus, decoding and output delivery.

Sweeps the number of injected Byzantine nodes around the decoding bound and
checks that coded execution succeeds exactly up to the bound and fails past
it, for both the synchronous and partially synchronous rules.
"""

from repro.analysis.bounds import phase_bounds
from repro.experiments import table2


def test_table2_fault_injection_sweep(benchmark):
    result = benchmark(table2.run, num_nodes=12, num_machines=3, degree=1, rounds=1)
    sync_rows = [r for r in result["sweep"] if r["setting"] == "synchronous"]
    # Success exactly up to the decoding bound, failure beyond it.
    for row in sync_rows:
        assert row["correct"] == row["within_bound"], row
    # The formula table carries all six cells.
    assert len(result["formula"]) == 6
    bounds = phase_bounds(12, 3, 1)
    assert result["sync_decoding_bound"] == bounds["synchronous"]["decoding"]


def test_table2_decoding_bound_tightens_with_degree(benchmark):
    def bounds_for_degrees():
        return {
            d: phase_bounds(num_nodes=24, num_machines=4, degree=d)["synchronous"]["decoding"]
            for d in (1, 2, 3)
        }

    bounds = benchmark(bounds_for_degrees)
    assert bounds[1] > bounds[2] > bounds[3]
