#!/usr/bin/env python
"""CI regression gate for the ``BENCH_*.json`` perf artifacts.

Compares a freshly generated artifact against the committed baseline at the
repository root and fails (exit 1) when a tracked metric regresses by more
than the tolerance (default 15%).

Two classes of metric are gated differently:

* **Deterministic throughput** (``protocol-batched``, ``protocol-pipelined``,
  ``service`` — the paper metric, commands per unit per-node field
  operation): a pure function of the protocol configuration, so it is
  compared *raw* across machines.  Any drop beyond tolerance means the
  protocol is doing more field operations per delivered command than the
  baseline run did.
* **Wall-clock rates** (``engine-*`` commands/sec, ``consensus-*``
  decisions/sec, ``sharded``): machine-dependent, so by default only the
  *self-normalised* ratios recorded inside each artifact are compared —
  ``pipelined_speedup_at_largest``, ``consensus_speedup_at_largest`` (both
  must not shrink beyond tolerance), ``consensus_over_execution_at_largest``
  and the open-loop tail-latency shapes ``traffic_p99_over_p50_commit`` /
  ``traffic_p99_over_p50_execute`` (none may grow beyond tolerance; the
  latency ratios are logical-tick counts, deterministic per scenario).
  Pass ``--raw`` to additionally gate the absolute rates when both
  artifacts were produced on the same machine.

An artifact may carry its own gate metadata under a top-level ``"gate"``
key — ``{"deterministic_modes": [...], "wall_clock_modes": [...],
"ratio_metrics": [[key, "min"|"max"], ...]}`` — in which case those lists
replace the built-in tuples below (which describe the original
``BENCH_throughput.json`` schema and remain the fallback for artifacts
without a ``gate`` block).  This is how ``BENCH_delegation.json``,
``BENCH_intermix.json`` and ``BENCH_boolean.json`` reuse this gate without
it having to know their schemas.

Usage::

    python benchmarks/check_throughput_regression.py CURRENT.json \
        [--baseline BENCH_throughput.json] [--tolerance 0.15] [--raw]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Modes whose per-N values are deterministic functions of the configuration
# (operation counts, not wall-clock) and therefore comparable across machines.
DETERMINISTIC_MODES = ("protocol-batched", "protocol-pipelined", "service")

# Modes whose per-N values are wall-clock rates: gated only under --raw.
WALL_CLOCK_MODES = (
    "engine-batched",
    "engine-pipelined",
    "consensus-vectorised",
    "consensus-oracle",
    "sharded",
)

# Self-normalised ratios: (key, direction) where direction "min" means the
# current value must not fall more than tolerance below baseline and "max"
# means it must not rise more than tolerance above it.
RATIO_METRICS = (
    ("pipelined_speedup_at_largest", "min"),
    ("consensus_speedup_at_largest", "min"),
    ("consensus_over_execution_at_largest", "max"),
    # Open-loop tail-latency shape: p99/p50 in logical scheduler ticks — a
    # deterministic function of the traffic scenario, so comparable across
    # machines.  A rise means the tail got disproportionately worse (a QoS
    # or scheduling regression) even if the medians moved together.
    ("traffic_p99_over_p50_commit", "max"),
    ("traffic_p99_over_p50_execute", "max"),
)


def _compare_value(name, baseline, current, tolerance, direction, failures):
    if baseline is None or current is None:
        return
    baseline = float(baseline)
    current = float(current)
    if baseline <= 0:
        return
    if direction == "min" and current < baseline * (1.0 - tolerance):
        failures.append(
            f"{name}: {current:.4g} fell more than {tolerance:.0%} below "
            f"baseline {baseline:.4g}"
        )
    elif direction == "max" and current > baseline * (1.0 + tolerance):
        failures.append(
            f"{name}: {current:.4g} rose more than {tolerance:.0%} above "
            f"baseline {baseline:.4g}"
        )


def gate_config(artifact: dict) -> tuple[tuple, tuple, tuple]:
    """The (deterministic, wall-clock, ratio) gate lists for an artifact.

    Self-describing artifacts carry them under ``"gate"``; artifacts
    without one (the original ``BENCH_throughput.json``) use the built-in
    tuples.
    """
    gate = artifact.get("gate")
    if not isinstance(gate, dict):
        return DETERMINISTIC_MODES, WALL_CLOCK_MODES, RATIO_METRICS
    return (
        tuple(gate.get("deterministic_modes", ())),
        tuple(gate.get("wall_clock_modes", ())),
        tuple((str(key), str(direction)) for key, direction in gate.get("ratio_metrics", ())),
    )


def compare(baseline: dict, current: dict, tolerance: float, raw: bool) -> list[str]:
    """Return the list of regression messages (empty when the gate passes)."""
    failures: list[str] = []
    # The *baseline* declares what is gated: a current artifact cannot
    # un-gate a metric by dropping it from its own metadata.
    deterministic, wall_clock, ratios = gate_config(baseline)
    modes = deterministic + (wall_clock if raw else ())
    for mode in modes:
        base_mode = baseline.get("modes", {}).get(mode, {})
        cur_mode = current.get("modes", {}).get(mode, {})
        for key, base_value in base_mode.items():
            _compare_value(
                f"modes[{mode}][{key}]",
                base_value,
                cur_mode.get(key),
                tolerance,
                "min",
                failures,
            )
    for key, direction in ratios:
        _compare_value(
            key, baseline.get(key), current.get(key), tolerance, direction, failures
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_throughput.json")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_throughput.json"),
        help="committed baseline artifact (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression before the gate fails (default 0.15)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help=(
            "also gate the machine-dependent wall-clock rates (only meaningful "
            "when baseline and current ran on the same machine)"
        ),
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)

    failures = compare(baseline, current, args.tolerance, args.raw)
    name = baseline.get("artifact", "throughput")
    if failures:
        print(f"{name} REGRESSION GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    deterministic, wall_clock, ratios = gate_config(baseline)
    checked = len(deterministic) + len(ratios) + (
        len(wall_clock) if args.raw else 0
    )
    print(
        f"{name} gate passed: {checked} metric groups within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
