"""Chaos benchmarks — fault injection, crash recovery and round retry.

Enabled with ``--chaos``.  One deterministic scenario drives an N=16 service
through a crash/recover schedule (erasures inside the decoding radius — no
round may fail) and a corrupt burst *beyond* the radius (rounds fail, the
`RetryPolicy` resubmits, every ticket still lands ``EXECUTED``).  The
``--json`` artifact records:

* ``chaos-recovery`` (deterministic): recovered/executed ticket counts — a
  pure function of the seeded scenario, raw-comparable across machines;
* ``chaos-wall`` (wall-clock, ``--raw`` only): recovered tickets per second
  through the full inject/fail/retry/heal loop;
* ``chaos_fault_free_overhead`` (ratio, gated ``max``): total protocol
  operations with the *idle* fault plane (empty schedule + retry machinery)
  over the plain service — the standing bit-identity oracle makes this
  exactly 1.0, so any rise means the fault plane started costing work when
  no faults are scheduled.
"""

import json

import pytest

from repro.analysis.measurement import wall_clock
from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.faults import FaultSchedule
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine
from repro.rng import default_stream
from repro.service import CSMService, RetryPolicy, TicketState

#: N=16, K=4, degree 1 → threshold 4, decoding radius (16-4)//2 = 6:
#: crashes of up to six nodes are erasures; seven corrupt rows fail a round.
NUM_NODES = 16
NUM_MACHINES = 4
CLIENT_ROUNDS = 8
BURST_NODES = 7


def _protocol(seed=7):
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field,
        num_nodes=NUM_NODES,
        num_machines=NUM_MACHINES,
        degree=machine.degree,
        num_faults=1,
    )
    return CSMProtocol(config, machine, rng=default_stream(seed))


def _crash_schedule():
    """Crash/recover only: two nodes down for rounds [2, 4), resynced after."""
    return (
        FaultSchedule()
        .crash("node-0", at=2, until=4)
        .crash("node-1", at=2, until=4)
    )


def _chaos_schedule():
    """Crash/recover plus a beyond-radius corrupt burst at rounds [5, 7)."""
    schedule = _crash_schedule()
    for i in range(BURST_NODES):
        schedule.behavior(f"node-{i}", "corrupt", at=5, until=7)
    return schedule


def _drive(service, rounds=CLIENT_ROUNDS):
    session = service.connect("chaos-client")
    tickets = []
    for r in range(rounds):
        for k in range(NUM_MACHINES):
            tickets.append(session.submit(k, [100 + 10 * r + k, 1]))
        service.drive(flush=True)
    service.drain()
    return tickets


def _total_operations(protocol):
    return sum(
        sum(record.result.ops_per_node.values()) for record in protocol.history
    )


def chaos_rows():
    """The scenario sweep behind the artifact: smoke, chaos and overhead."""
    # Crash/recover inside the radius: erasures only, nothing fails.
    crash_protocol = _protocol()
    crash_service = CSMService(
        crash_protocol,
        retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
        faults=_crash_schedule(),
    )
    crash_tickets = _drive(crash_service)
    crash_report = crash_service.fault_report()

    # Full chaos: the corrupt burst fails rounds that retry back to health.
    start = wall_clock()
    chaos_protocol = _protocol()
    chaos_service = CSMService(
        chaos_protocol,
        retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
        faults=_chaos_schedule(),
    )
    chaos_tickets = _drive(chaos_service)
    elapsed = wall_clock() - start
    chaos_report = chaos_service.fault_report()

    # Idle fault plane versus plain service: the bit-identity oracle in ops.
    plain_tickets = _drive(CSMService(plain := _protocol()))
    guarded_tickets = _drive(
        CSMService(
            guarded := _protocol(),
            retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
            faults=FaultSchedule(),
        )
    )
    overhead = _total_operations(guarded) / _total_operations(plain)

    return {
        "crash": {
            "tickets": crash_tickets,
            "protocol": crash_protocol,
            "report": crash_report,
        },
        "chaos": {
            "tickets": chaos_tickets,
            "protocol": chaos_protocol,
            "report": chaos_report,
            "wall_seconds": elapsed,
        },
        "overhead": {
            "ratio": overhead,
            "plain_tickets": plain_tickets,
            "guarded_tickets": guarded_tickets,
        },
    }


def test_chaos_smoke_crash_recover_n16(benchmark, chaos_mode):
    """N=16 crash/recover schedule: erasures within the radius, no failures."""
    if not chaos_mode:
        pytest.skip("pass --chaos to run the chaos benchmarks")

    def run():
        protocol = _protocol()
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
            faults=_crash_schedule(),
        )
        return protocol, service, _drive(service)

    protocol, service, tickets = benchmark(run)
    assert all(t.state is TicketState.EXECUTED for t in tickets)
    assert protocol.failed_rounds == 0
    report = service.fault_report()
    assert report.applied_events == report.injected_events == 4
    assert report.crashed_nodes == []
    assert report.retried_commands == 0


def test_chaos_burst_recovers_every_ticket(benchmark, chaos_mode):
    """Beyond-radius burst: rounds fail, retries drain, liveness holds."""
    if not chaos_mode:
        pytest.skip("pass --chaos to run the chaos benchmarks")

    def run():
        protocol = _protocol()
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
            faults=_chaos_schedule(),
        )
        return protocol, service, _drive(service)

    protocol, service, tickets = benchmark(run)
    assert all(t.state is TicketState.EXECUTED for t in tickets)
    assert protocol.failed_rounds == 2
    report = service.fault_report()
    assert report.recovered_tickets == 2 * NUM_MACHINES
    assert report.exhausted_tickets == 0
    assert report.applied_events == report.injected_events


def test_chaos_fault_free_overhead_is_unity(benchmark, chaos_mode):
    """Idle fault plane costs zero protocol operations (bit-identity oracle)."""
    if not chaos_mode:
        pytest.skip("pass --chaos to run the chaos benchmarks")

    def run():
        plain = _protocol()
        _drive(CSMService(plain))
        guarded = _protocol()
        _drive(
            CSMService(
                guarded,
                retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
                faults=FaultSchedule(),
            )
        )
        return plain, guarded

    plain, guarded = benchmark(run)
    assert _total_operations(guarded) == _total_operations(plain)


def test_chaos_json_artifact(json_artifact_path, chaos_mode):
    """Write the ``BENCH_chaos.json`` perf-trajectory artifact.

    Enabled by ``--json PATH`` together with ``--chaos``.  The gate block
    marks the recovery counts deterministic (exact across machines), the
    recovered-tickets/sec rate wall-clock (``--raw`` only), and gates the
    fault-free overhead ratio ``max`` — it is exactly 1.0 by the standing
    bit-identity oracle, so CI's 5% tolerance catches any run where the
    idle fault plane starts adding protocol work.
    """
    if json_artifact_path is None or not chaos_mode:
        pytest.skip("pass --chaos --json PATH to write the artifact")

    rows = chaos_rows()
    chaos = rows["chaos"]
    assert all(t.state is TicketState.EXECUTED for t in chaos["tickets"])
    assert all(t.state is TicketState.EXECUTED for t in rows["crash"]["tickets"])
    report = chaos["report"]

    artifact = {
        "artifact": "BENCH_chaos",
        "config": {
            "num_nodes": NUM_NODES,
            "num_machines": NUM_MACHINES,
            "client_rounds": CLIENT_ROUNDS,
            "machine": "bank_account(2)",
            "crash_window": [2, 4],
            "burst_window": [5, 7],
            "burst_nodes": BURST_NODES,
            "retry": {"max_attempts": 4, "backoff_ticks": 1},
        },
        "gate": {
            "deterministic_modes": ["chaos-recovery"],
            "wall_clock_modes": ["chaos-wall"],
            "ratio_metrics": [["chaos_fault_free_overhead", "max"]],
        },
        "modes": {
            "chaos-recovery": {
                "recovered_tickets": report.recovered_tickets,
                "executed_tickets": sum(
                    1
                    for t in chaos["tickets"]
                    if t.state is TicketState.EXECUTED
                ),
                "applied_fault_events": report.applied_events,
            },
            "chaos-wall": {
                "recovered_tickets_per_sec": report.recovered_tickets
                / chaos["wall_seconds"],
            },
        },
        "chaos_fault_free_overhead": rows["overhead"]["ratio"],
        "failed_rounds": chaos["protocol"].failed_rounds,
        "retried_commands": report.retried_commands,
        "exhausted_tickets": report.exhausted_tickets,
    }
    with open(json_artifact_path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=False)
        handle.write("\n")
