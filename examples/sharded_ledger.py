#!/usr/bin/env python
"""Sharded-ledger scenario: CSM versus partial replication under a targeted adversary.

The paper's blockchain motivation: a sharded system hosts K independent
ledgers over N nodes.  Partial replication assigns each ledger to a disjoint
group of q = N/K nodes, so an adversary that concentrates its corruptions on
one group rewrites that ledger.  CSM stores only coded states, so the same
adversary budget is harmlessly spread across the whole network.

The script runs both schemes against the same adversary and prints which
ledgers survive.

Run with:  python examples/sharded_ledger.py
"""


from repro.core import CSMConfig, CodedExecutionEngine
from repro.gf import PrimeField
from repro.machine import bank_account_machine
from repro.net import RandomGarbageBehavior
from repro.replication import PartialReplicationSMR
from repro.rng import default_stream


NUM_NODES = 16
NUM_LEDGERS = 4          # => partial replication groups of 4 nodes
ADVERSARY_BUDGET = 3     # corruptions, all aimed at group 0


def main() -> None:
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(NUM_NODES)]
    rng = default_stream(11)

    # The adversary corrupts the first three nodes — all members of partial
    # replication's group 0 (majority of a group of 4).
    behaviors = {node_ids[i]: RandomGarbageBehavior() for i in range(ADVERSARY_BUDGET)}
    commands = rng.integers(1, 100, size=(NUM_LEDGERS, machine.command_dim))

    print(f"N={NUM_NODES} nodes, K={NUM_LEDGERS} ledgers, "
          f"adversary corrupts nodes {sorted(behaviors)}\n")

    # --- partial replication -------------------------------------------------
    partial = PartialReplicationSMR(
        machine, NUM_LEDGERS, node_ids, behaviors, default_stream(11)
    )
    partial_result = partial.execute_round(commands)
    print("Partial replication (groups of", partial.group_size, "nodes):")
    for detail in partial_result.diagnostics["groups"]:
        status = "OK " if detail["accepted_correct"] else "BROKEN"
        print(f"  ledger {detail['group']}: {status} "
              f"({detail['faulty']} corrupted replicas in its group)")
    print("  round correct overall:", partial_result.correct)
    print("  theoretical security:", partial.security_bound(), "faults\n")

    # --- coded state machine --------------------------------------------------
    config = CSMConfig(
        field=field, num_nodes=NUM_NODES, num_machines=NUM_LEDGERS,
        degree=machine.degree, num_faults=ADVERSARY_BUDGET,
    )
    csm = CodedExecutionEngine(
        config, bank_account_machine(field, num_accounts=2),
        node_ids=node_ids, behaviors=behaviors, rng=default_stream(11),
    )
    csm_result = csm.execute_round(commands)
    print("Coded State Machine:")
    print("  round correct overall:", csm_result.correct)
    print("  corrupted results detected at nodes:",
          list(csm_result.diagnostics["error_nodes"]))
    print("  theoretical security:", config.security, "faults "
          f"(decoding radius of the [N={NUM_NODES}, k={config.decoding_dimension}] RS code)")
    print("\nSame adversary, same budget: partial replication loses ledger 0, "
          "CSM loses nothing.")


if __name__ == "__main__":
    main()
