#!/usr/bin/env python
"""Quickstart: serve client commands over a Coded State Machine.

This example hosts K = 4 bank-ledger state machines on N = 12 untrusted
nodes, two of which are Byzantine.  Clients connect to the service, submit
deposit commands whenever they have them — no pre-grouped rounds — and get
back command tickets.  The round scheduler drains the traffic into batched
rounds (padding idle ledgers with the machine's no-op command), the nodes
run consensus over a simulated synchronous network, execute the transition
directly on Lagrange-coded states, and every ticket resolves to the decoded
correct output despite the faulty nodes.

Run with:  python examples/quickstart.py
"""


from repro.core import CSMConfig, CSMProtocol
from repro.gf import PrimeField
from repro.machine import bank_account_machine
from repro.net import RandomGarbageBehavior, SilentBehavior
from repro.rng import default_stream
from repro.service import CSMService


def main() -> None:
    field = PrimeField()                       # GF(2^31 - 1)
    machine = bank_account_machine(field, num_accounts=2)

    # N = 12 nodes, K = 4 machines, degree-1 transition, tolerate b = 2 faults.
    config = CSMConfig(
        field=field, num_nodes=12, num_machines=4, degree=machine.degree, num_faults=2
    )
    print("CSM configuration:", config.summary())

    behaviors = {
        "node-3": RandomGarbageBehavior(),     # reports garbage results
        "node-8": SilentBehavior(),            # never responds
    }
    protocol = CSMProtocol(config, machine, behaviors, rng=default_stream(7))

    # The service is the client-facing API: sessions submit ragged traffic,
    # the scheduler batches it into rounds behind the scenes.  pipeline=True
    # executes each tick through the speculative decode/execute pipeline —
    # honest state advances from a pivot-only interpolation, verification is
    # deferred to one stacked check per window, and a mismatch rolls back to
    # the last verified checkpoint and re-executes deterministically — with
    # ticket outcomes and round history bit-identical to the batched drive.
    service = CSMService(protocol, pipeline=True)
    alice = service.connect("alice")
    bob = service.connect("bob")

    # Alice banks on ledgers 0 and 1; Bob is a burst client hammering ledger 2
    # with three deposits in a row.  Ledger 3 is idle — the scheduler pads it
    # with the machine's no-op command (an identity transition), so nobody has
    # to invent traffic for it.
    tickets = [
        alice.submit(0, [100, 50]),
        alice.submit(1, [20, 80]),
        bob.submit(2, [5, 5]),
        bob.submit(2, [30, 0]),
        bob.submit(2, [1, 1]),
    ]

    records = service.drain()                  # schedule + consensus + execute
    for record in records:
        print(
            f"round {record.round_index}: correct={record.correct} "
            f"view={record.consensus_views} clients={record.clients} "
            f"suspected_faulty={record.result.diagnostics['error_nodes']}"
        )

    for ticket in tickets:
        print(
            f"ticket {ticket.sequence} ({ticket.client_id} -> ledger "
            f"{ticket.machine_index}): {ticket.state.value} in round "
            f"{ticket.round_index}, balances = {ticket.result().tolist()}"
        )

    print("all rounds correct:", protocol.all_rounds_correct)
    print("measured throughput (commands per unit per-node op):",
          f"{protocol.measured_throughput():.2e}")
    print("storage per node: one coded state of size", machine.state_dim,
          f"field elements, serving K={config.num_machines} machines "
          f"(storage efficiency {config.storage_efficiency})")

    # Scaling further: the machines are logically independent, so the same
    # client surface can be served by ShardedCSMService — partition the K
    # machines into S shards, each with its own command pool, scheduler and
    # consensus instance over its own node group, behind one façade:
    #
    #   from repro.service import ShardedCSMService
    #   service = ShardedCSMService.from_partition(4, 2, shard_backend)
    #
    # where shard_backend(shard_index, shard_machines) returns a CSMProtocol
    # sized for that shard.  Tickets, sequences and the merged reporting view
    # read exactly as above; see the README's "Sharded serving" section and
    # repro.experiments.scaling.sharded_rows for the measured speedup.

    # Delegated verification (Section 6.2): the same service surface can run
    # with ALL coding work handed to one untrusted worker per batch, merely
    # verified by an INTERMIX auditor committee — per-node coding cost drops
    # to polylogarithmic.  Swap the backend, keep the client code:
    from repro.intermix import DelegationRoundProtocol

    delegated = CSMService(
        DelegationRoundProtocol(
            machine, 4, [f"node-{i}" for i in range(12)], rng=default_stream(7)
        )
    )
    carol = delegated.connect("carol")
    ticket = carol.submit(0, [42, 0])
    delegated.drain()
    print("delegated round ticket:", ticket.state.value,
          "balances =", ticket.result().tolist())
    # A worker convicted of fraud voids the round instead: tickets FAIL with
    # FailureReason.DELEGATION_FRAUD, no output is delivered, and the coded
    # states stay put so resubmission under a fresh committee is safe.


if __name__ == "__main__":
    main()
