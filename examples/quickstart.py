#!/usr/bin/env python
"""Quickstart: run a Coded State Machine round end to end.

This example hosts K = 4 bank-ledger state machines on N = 12 untrusted
nodes, two of which are Byzantine.  Clients submit deposit commands, the
nodes run the consensus phase over a simulated synchronous network, execute
the transition directly on Lagrange-coded states, and decode every machine's
correct output despite the faulty nodes.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CSMConfig, CSMProtocol
from repro.gf import PrimeField
from repro.machine import bank_account_machine
from repro.net import RandomGarbageBehavior, SilentBehavior


def main() -> None:
    field = PrimeField()                       # GF(2^31 - 1)
    machine = bank_account_machine(field, num_accounts=2)

    # N = 12 nodes, K = 4 machines, degree-1 transition, tolerate b = 2 faults.
    config = CSMConfig(
        field=field, num_nodes=12, num_machines=4, degree=machine.degree, num_faults=2
    )
    print("CSM configuration:", config.summary())

    behaviors = {
        "node-3": RandomGarbageBehavior(),     # reports garbage results
        "node-8": SilentBehavior(),            # never responds
    }
    protocol = CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(7))

    # Three rounds of client deposits: row k is the command for machine k,
    # the two columns are the per-account deposit amounts.
    batches = [
        np.array([[100, 50], [20, 80], [5, 5], [1, 0]]),
        np.array([[10, 10], [30, 0], [0, 30], [2, 2]]),
        np.array([[1, 1], [1, 1], [1, 1], [1, 1]]),
    ]
    for batch in batches:
        protocol.submit_round_of_commands(batch)
        record = protocol.run_round()
        print(
            f"round {record.round_index}: correct={record.correct} "
            f"view={record.consensus_views} "
            f"suspected_faulty={record.result.diagnostics['error_nodes']}"
        )
        for k in range(config.num_machines):
            print(f"  ledger {k}: balances = {record.result.outputs[k].tolist()}")

    print("all rounds correct:", protocol.all_rounds_correct)
    print("measured throughput (commands per unit per-node op):",
          f"{protocol.measured_throughput():.2e}")
    print("storage per node: one coded state of size", machine.state_dim,
          f"field elements, serving K={config.num_machines} machines "
          f"(storage efficiency {config.storage_efficiency})")


if __name__ == "__main__":
    main()
