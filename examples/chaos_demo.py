#!/usr/bin/env python
"""Chaos demo: crash two nodes mid-run and watch the service heal itself.

A `CSMService` over an N=12 Coded State Machine serves three logical bank
accounts while a deterministic `FaultSchedule` makes life difficult:

* rounds 2-3: nodes 0 and 1 crash (silent, contributing no coded rows) and
  rejoin with a state resync at round 4 — erasures within the decoding
  radius, absorbed without a single failed round;
* rounds 5-6: five nodes return corrupt coded rows — *beyond* the radius,
  so those rounds fail verification and the `RetryPolicy` re-enqueues the
  affected commands with backoff until they execute.

Everything is seeded through `repro.rng`, so every run prints the same
ticket timeline, the same retry counts and the same fault report.

Run with:  python examples/chaos_demo.py
"""

from repro.core import CSMConfig, CSMProtocol
from repro.faults import FaultSchedule
from repro.gf import PrimeField
from repro.machine import bank_account_machine
from repro.rng import default_stream
from repro.service import CSMService, RetryPolicy, TicketState

NUM_NODES = 12
NUM_MACHINES = 3
NUM_ROUNDS = 8


def build_schedule() -> FaultSchedule:
    schedule = FaultSchedule()
    # Two nodes crash during rounds [2, 4) and are resynced on recovery.
    schedule.crash("node-0", at=2, until=4)
    schedule.crash("node-1", at=2, until=4)
    # Five corrupt rows exceed the decoding radius (4 at N=12, K=3), so
    # rounds [5, 7) fail and must be retried.
    for i in range(5):
        schedule.behavior(f"node-{i}", "corrupt", at=5, until=7)
    return schedule


def main() -> None:
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field,
        num_nodes=NUM_NODES,
        num_machines=NUM_MACHINES,
        degree=machine.degree,
        num_faults=1,
    )
    protocol = CSMProtocol(config, machine, rng=default_stream(7))
    service = CSMService(
        protocol,
        retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
        faults=build_schedule(),
    )
    session = service.connect("chaos-client")

    tickets = []
    for round_index in range(NUM_ROUNDS):
        for k in range(NUM_MACHINES):
            tickets.append(session.submit(k, [100 + 10 * round_index + k, 1]))
        service.drive(flush=True)
    service.drain()

    print(f"N={NUM_NODES} nodes, K={NUM_MACHINES} machines, "
          f"{NUM_ROUNDS} client rounds under chaos\n")
    print("ticket  machine  attempts  lifecycle")
    for index, ticket in enumerate(tickets):
        path = " -> ".join(state.value for state in ticket.state_history)
        print(f"{index:6d}  {ticket.machine_index:7d}  {ticket.attempts:8d}  {path}")

    assert all(t.state is TicketState.EXECUTED for t in tickets)

    report = service.fault_report()
    print(f"\nbackend rounds driven : {len(protocol.history)}")
    print(f"failed (retried) rounds: {protocol.failed_rounds}")
    print(f"fault events applied   : {report.applied_events}/{report.injected_events}")
    print(f"commands retried       : {report.retried_commands}")
    print(f"tickets recovered      : {report.recovered_tickets}")
    print(f"tickets exhausted      : {report.exhausted_tickets}")
    print(f"still-crashed nodes    : {report.crashed_nodes or 'none'}")
    print("\nEvery ticket EXECUTED: the service healed around both faults.")


if __name__ == "__main__":
    main()
