#!/usr/bin/env python
"""INTERMIX in action: delegating the coding work to an untrusted worker.

The script delegates the encoding of a round's commands to a single worker
node and shows the three possible outcomes:

1. an honest worker — accepted, everyone else only does constant work;
2. a worker that broadcasts a wrong product but answers queries truthfully —
   caught at the first bisection level;
3. a "consistent liar" that fabricates internally consistent sub-answers —
   driven by the auditor's log(K) queries to a single-entry claim that any
   commoner refutes with one multiplication.

Run with:  python examples/intermix_audit.py
"""

import numpy as np

from repro.gf import PrimeField
from repro.intermix import IntermixProtocol, WorkerStrategy
from repro.lcc import LagrangeScheme
from repro.rng import default_stream


def run_case(field, scheme, commands, strategy: WorkerStrategy) -> None:
    node_ids = [f"node-{i}" for i in range(scheme.num_nodes)]
    protocol = IntermixProtocol(
        field, node_ids, fault_fraction=0.25, rng=default_stream(3),
        worker_strategies={n: strategy for n in node_ids},
    )
    outcome = protocol.run(scheme.coefficient_matrix, commands)
    print(f"worker strategy: {strategy.value}")
    print(f"  committee: worker={outcome.committee.worker}, "
          f"{len(outcome.committee.auditors)} auditors, "
          f"{len(outcome.committee.commoners)} commoners")
    print(f"  accepted: {outcome.accepted}   fraud detected: {outcome.fraud_detected}")
    accusations = [t for t in outcome.transcripts if not t.accepted]
    if accusations:
        transcript = accusations[0]
        print(f"  first accusation: row {transcript.row_index}, "
              f"failure={transcript.failure_kind}, "
              f"bisection path length={len(transcript.path)}, "
              f"queries={transcript.queries_issued}")
    max_commoner = max(outcome.commoner_operations.values() or [0])
    print(f"  worker ops: {outcome.worker_operations}, "
          f"max auditor ops: {max(outcome.auditor_operations.values() or [0])}, "
          f"max commoner ops: {max_commoner}\n")


def main() -> None:
    field = PrimeField()
    # The matrix being verified is CSM's own N x K Lagrange coefficient matrix.
    scheme = LagrangeScheme(field, num_machines=8, num_nodes=24)
    commands = np.arange(1, 9, dtype=np.int64) * 100
    print("Delegated computation: coded commands = C @ X with C the 24 x 8 "
          "Lagrange coefficient matrix\n")
    for strategy in (
        WorkerStrategy.HONEST,
        WorkerStrategy.CORRUPT_RESULT,
        WorkerStrategy.CONSISTENT_LIAR,
    ):
        run_case(field, scheme, commands, strategy)


if __name__ == "__main__":
    main()
