#!/usr/bin/env python
"""Appendix A example: a Boolean state machine executed under CSM.

A 2-bit saturating counter (a classic branch-predictor state machine) is
defined by truth tables, compiled into multivariate polynomials over GF(2),
embedded into GF(2^m) with 2^m >= N, and then run as a Coded State Machine
with a Byzantine node in the mix.  The decoded outputs are projected back to
bits and compared against direct truth-table execution.

Run with:  python examples/boolean_machine.py
"""

import numpy as np

from repro.core import CSMConfig, CodedExecutionEngine
from repro.gf import BinaryExtensionField
from repro.machine import BooleanTransitionCompiler, embed_bits, project_bits
from repro.net import RandomGarbageBehavior
from repro.rng import default_stream

NUM_NODES = 11
NUM_MACHINES = 2  # two independent predictors


def next_high(bits):
    """MSB of the saturating counter after observing `taken`."""
    high, low, taken = bits
    return (high & low) | (high & taken) | (low & taken & high) | (high & ~low & taken & 1) \
        if False else ((high and low) or (high and taken) or (low and taken)) * 1


def next_low(bits):
    high, low, taken = bits
    # Standard 2-bit saturating counter LSB update.
    return (taken and not low) or (taken and high) or (not taken and high and not low) \
        if False else int((taken and (high or not low)) or (not taken and high and not low))


def predict(bits):
    high, low, taken = bits
    return high  # predict taken iff the counter is in the upper half


def main() -> None:
    field = BinaryExtensionField.for_network_size(NUM_NODES + NUM_MACHINES + 1)
    print(f"extension field: GF(2^{field.degree}) (needs at least "
          f"{NUM_NODES + NUM_MACHINES} distinct points)")

    compiler = BooleanTransitionCompiler(
        field,
        state_bits=2,
        command_bits=1,
        next_state_functions=[lambda b: int(next_high(b)), lambda b: int(next_low(b))],
        output_functions=[lambda b: int(predict(b))],
    )
    machine = compiler.compile_machine([0, 0], name="2-bit-predictor")
    print("compiled transition degree d =", machine.degree)

    config = CSMConfig(
        field=field, num_nodes=NUM_NODES, num_machines=NUM_MACHINES,
        degree=machine.degree, num_faults=1,
    )
    engine = CodedExecutionEngine(
        config, machine, behaviors={"node-4": RandomGarbageBehavior()},
        rng=default_stream(5),
    )

    # Two predictors observe different branch-outcome streams.
    streams = [[1, 1, 1, 0, 1, 1], [0, 0, 1, 0, 0, 1]]
    state_bits = [[0, 0] for _ in range(NUM_MACHINES)]
    for t in range(len(streams[0])):
        command_bits = [[streams[k][t]] for k in range(NUM_MACHINES)]
        commands = np.array([embed_bits(field, c) for c in command_bits])
        result = engine.execute_round(commands)
        assert result.correct, "coded execution diverged from the reference"
        for k in range(NUM_MACHINES):
            expected_state, expected_output = compiler.reference_step(
                state_bits[k], command_bits[k]
            )
            decoded_state = project_bits(field, result.states[k]).tolist()
            decoded_output = project_bits(field, result.outputs[k]).tolist()
            assert decoded_state == expected_state
            assert decoded_output == expected_output
            state_bits[k] = expected_state
        print(f"t={t}: outcomes={[s[t] for s in streams]} "
              f"predictor states={state_bits} "
              f"predictions={[project_bits(field, result.outputs[k]).tolist()[0] for k in range(NUM_MACHINES)]}")
    print("\nBoolean machine executed correctly under CSM with a Byzantine node present.")


if __name__ == "__main__":
    main()
