"""Regression tests for the batched protocol path and the protocol-layer
correctness fixes: honest decision selection, verified-only output delivery,
finite throughput on degenerate histories, and command-shape validation."""

import numpy as np
import pytest

from repro.consensus.command_pool import CommandPool
from repro.consensus.interface import ConsensusDecision
from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError, ConsensusError
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    EquivocatingBehavior,
    RandomGarbageBehavior,
)
from repro.replication.base import RoundResult


def _protocol(big_field, num_nodes=8, num_machines=2, behaviors=None, num_faults=1):
    machine = bank_account_machine(big_field, num_accounts=1)
    config = CSMConfig(
        big_field, num_nodes=num_nodes, num_machines=num_machines,
        degree=1, num_faults=num_faults,
    )
    return CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(0))


def _decision(commands, clients, view=0, leader="node-0"):
    return ConsensusDecision(
        round_index=0,
        commands=np.asarray(commands, dtype=np.int64),
        clients=list(clients),
        selected=[],
        leader=leader,
        view=view,
    )


class TestDecisionSelection:
    """``run_round`` must not adopt whichever decision happens to come first."""

    def test_byzantine_decision_listed_first_is_ignored(self, big_field):
        protocol = _protocol(
            big_field, behaviors={"node-0": CorruptResultBehavior()}
        )
        honest = _decision([[5], [6]], ["client:0", "client:1"])
        forged = _decision([[9], [9]], ["client:forged", "client:forged"])
        # Dict order puts the Byzantine node's (forged) decision first — the
        # old ``next(iter(...))`` selection would have trusted it.
        decisions = {"node-0": forged, "node-1": honest, "node-2": honest}
        chosen = protocol._select_decision(decisions)
        assert chosen.commands.tolist() == [[5], [6]]
        assert chosen.clients == ["client:0", "client:1"]

    def test_disagreeing_honest_decisions_raise(self, big_field):
        protocol = _protocol(big_field)
        decisions = {
            "node-1": _decision([[5], [6]], ["client:0", "client:1"]),
            "node-2": _decision([[7], [6]], ["client:0", "client:1"]),
        }
        with pytest.raises(ConsensusError, match="different"):
            protocol._select_decision(decisions)

    def test_no_honest_decision_raises(self, big_field):
        protocol = _protocol(
            big_field, behaviors={"node-0": CorruptResultBehavior()}
        )
        decisions = {"node-0": _decision([[1], [2]], ["client:0", "client:1"])}
        with pytest.raises(ConsensusError, match="honest"):
            protocol._select_decision(decisions)


class TestVerifiedDelivery:
    """Failed rounds must never hand unverified outputs to clients."""

    def _failing_protocol(self, big_field):
        machine = quadratic_market_machine(big_field)
        config = CSMConfig(
            big_field, num_nodes=16, num_machines=4, degree=2, num_faults=4
        )
        # Five corrupting nodes exceed the decoding radius (16 - 7) // 2 = 4
        # (placed on high indices so round 0's leader stays honest), while
        # consensus — which tolerates any b < N — still decides the round.
        behaviors = {
            f"node-{15 - i}": CorruptResultBehavior(offset=i + 1) for i in range(5)
        }
        return CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(2))

    def test_failed_round_outputs_not_delivered(self, big_field):
        protocol = self._failing_protocol(big_field)
        protocol.submit_round_of_commands(np.arange(1, 9))
        record = protocol.run_round()
        assert not record.correct
        assert protocol.delivered_outputs == {}
        assert protocol.failed_rounds == 1
        assert sorted(protocol.failed_deliveries) == [f"client:{k}" for k in range(4)]
        assert all(v == [0] for v in protocol.failed_deliveries.values())

    def test_batched_path_matches_failed_delivery_semantics(self, big_field):
        protocol = self._failing_protocol(big_field)
        records = protocol.run_rounds_batched([np.arange(1, 9), np.arange(2, 10)])
        assert [r.correct for r in records] == [False, False]
        assert protocol.delivered_outputs == {}
        assert protocol.failed_rounds == 2
        assert all(v == [0, 1] for v in protocol.failed_deliveries.values())

    def test_empty_batch_is_a_no_op(self, big_field):
        protocol = _protocol(big_field)
        assert protocol.run_rounds_batched([]) == []
        assert protocol.history == []

    def test_malformed_batch_fails_before_any_consensus(self, big_field):
        """A bad batch anywhere in the list must fail fast — not after earlier
        rounds were already decided (and their commands consumed)."""
        protocol = _protocol(big_field, num_machines=2)
        with pytest.raises(ConfigurationError, match="cannot be split"):
            protocol.run_rounds_batched([np.array([1, 2]), np.array([1, 2, 3])])
        assert protocol.history == []
        assert protocol.pool.total_pending() == 0  # nothing was submitted


class TestMeasuredThroughput:
    def test_degenerate_history_yields_zero_not_inf(self, big_field):
        protocol = _protocol(big_field)
        # A round whose operation accounting collapsed to nothing has
        # non-finite per-round throughput; the aggregate must be 0.0.
        protocol.history.append(_degenerate_round())
        assert protocol.measured_throughput() == 0.0
        assert protocol.failed_rounds == 1

    def test_empty_history_yields_zero(self, big_field):
        assert _protocol(big_field).measured_throughput() == 0.0

    def test_failed_rounds_contribute_zero_commands(self, big_field):
        # Regression: a failed round used to contribute the throughput its
        # operation count *would* have bought, inflating the mean exactly
        # when faults bite.  The harness semantics are the reference: failed
        # rounds spend the operations but deliver zero commands.
        protocol = _protocol(big_field)
        ops = {f"node-{i}": 100 for i in range(protocol.config.num_nodes)}
        protocol.history.append(_accounted_round(0, correct=True, ops=ops))
        correct_only = protocol.measured_throughput()
        assert correct_only == pytest.approx(protocol.num_machines / 100)
        protocol.history.append(_accounted_round(1, correct=False, ops=ops))
        # Harness-style aggregate: delivered commands over the same ops.
        assert protocol.measured_throughput() == pytest.approx(correct_only / 2)
        assert protocol.failed_rounds == 1

    def test_all_failed_history_yields_zero(self, big_field):
        protocol = _protocol(big_field)
        ops = {f"node-{i}": 100 for i in range(protocol.config.num_nodes)}
        protocol.history.append(_accounted_round(0, correct=False, ops=ops))
        assert protocol.measured_throughput() == 0.0


def _accounted_round(index, correct, ops):
    from repro.core.protocol import ProtocolRound

    result = RoundResult(
        round_index=index,
        outputs=np.zeros((2, 1), dtype=np.int64),
        states=np.zeros((2, 1), dtype=np.int64),
        correct=correct,
        ops_per_node=dict(ops),
    )
    return ProtocolRound(
        round_index=index,
        commands=np.zeros((2, 1), dtype=np.int64),
        clients=["client:0", "client:1"],
        result=result,
    )


def _degenerate_round():
    from repro.core.protocol import ProtocolRound

    result = RoundResult(
        round_index=0,
        outputs=np.zeros((2, 1), dtype=np.int64),
        states=np.zeros((2, 1), dtype=np.int64),
        correct=False,
        ops_per_node={},
    )
    return ProtocolRound(
        round_index=0,
        commands=np.zeros((2, 1), dtype=np.int64),
        clients=["client:0", "client:1"],
        result=result,
    )


class TestCommandShapeValidation:
    def test_flat_submission_with_indivisible_length_raises(self, big_field):
        protocol = _protocol(big_field, num_machines=2)
        with pytest.raises(ConfigurationError, match="cannot be split"):
            protocol.submit_round_of_commands(np.array([1, 2, 3]))

    def test_empty_flat_submission_raises(self, big_field):
        protocol = _protocol(big_field, num_machines=2)
        with pytest.raises(ConfigurationError, match="cannot be split"):
            protocol.submit_round_of_commands(np.array([], dtype=np.int64))

    def test_pool_submit_batch_rejects_indivisible_flat_array(self):
        pool = CommandPool(num_machines=3)
        with pytest.raises(ConfigurationError, match="cannot be split"):
            pool.submit_batch(np.array([1, 2, 3, 4]))

    def test_valid_flat_submission_still_accepted(self, big_field):
        protocol = _protocol(big_field, num_machines=2)
        protocol.submit_round_of_commands(np.array([1, 2]))
        assert protocol.pool.total_pending() == 2


class TestLazySubmissionBitIdentity:
    def test_equivocating_leader_cannot_validate_future_round_commands(self, big_field):
        """An equivocating round-0 leader whose forged payload happens to equal
        round 1's real command must not see it as valid: the batched driver
        submits each round's commands lazily, so the pool's validity history
        during round t matches the sequential loop exactly.  (Submitting all
        rounds up front would make both proposals valid in round 0, forcing a
        view change the sequential path does not take.)"""
        machine = bank_account_machine(big_field, num_accounts=1)
        config = CSMConfig(big_field, num_nodes=6, num_machines=1, degree=1, num_faults=1)
        behaviors = {"node-0": EquivocatingBehavior()}  # round 0's leader
        # EquivocatingBehavior's alternative proposal is the honest commands
        # plus one: round 0 submits [5], round 1 submits [6] == [5] + 1.
        batches = [np.array([[5]]), np.array([[6]])]
        sequential = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(0)
        )
        batched = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(0)
        )
        seq_records = sequential.run_rounds(batches)
        bat_records = batched.run_rounds_batched(batches)
        for seq, bat in zip(seq_records, bat_records):
            assert seq.consensus_views == bat.consensus_views
            assert np.array_equal(seq.commands, bat.commands)
            assert np.array_equal(seq.result.outputs, bat.result.outputs)
        assert sequential.all_rounds_correct and batched.all_rounds_correct


class TestBatchedProtocolAgainstByzantineExecution:
    def test_batched_rounds_survive_in_bound_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        config = CSMConfig(
            big_field, num_nodes=12, num_machines=4, degree=1, num_faults=2
        )
        behaviors = {
            "node-10": RandomGarbageBehavior(),
            "node-11": RandomGarbageBehavior(),
        }
        protocol = CSMProtocol(
            config, machine, behaviors, rng=np.random.default_rng(4)
        )
        rng = np.random.default_rng(11)
        batches = [rng.integers(1, 100, size=(4, 2)) for _ in range(3)]
        records = protocol.run_rounds_batched(batches)
        assert protocol.all_rounds_correct
        assert protocol.failed_rounds == 0
        # Every client received one verified output per round.
        assert all(len(v) == 3 for v in protocol.delivered_outputs.values())
        # The decoded trajectory matches uncoded reference execution.
        for k in range(4):
            state = machine.initial_state.copy()
            for batch in batches:
                state, _ = machine.step(state, batch[k])
            assert protocol.engine.states[k].tolist() == state.tolist()
        assert records[-1].round_index == 2
