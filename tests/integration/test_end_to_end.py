"""Integration tests: the full CSM protocol (consensus + coded execution),
the replication baselines under the same workloads, the delegated-coding
round, and the Appendix A Boolean machine running under CSM."""

import numpy as np
import pytest

from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.core.protocol import CSMProtocol
from repro.gf.extension_field import BinaryExtensionField
from repro.intermix.delegation import DelegatedCodingService
from repro.lcc.scheme import LagrangeScheme
from repro.machine.boolean import BooleanTransitionCompiler, embed_bits, project_bits
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    RandomGarbageBehavior,
    SilentBehavior,
)
from repro.replication.full import FullReplicationSMR


class TestFullProtocolSynchronous:
    def test_multi_round_ledger_with_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        config = CSMConfig(big_field, num_nodes=12, num_machines=4, degree=1, num_faults=2)
        behaviors = {"node-1": RandomGarbageBehavior(), "node-7": SilentBehavior()}
        protocol = CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(0))
        batches = [
            np.array([[10, 0], [5, 5], [1, 2], [3, 4]]),
            np.array([[1, 1], [2, 2], [3, 3], [4, 4]]),
            np.array([[0, 9], [9, 0], [1, 1], [2, 2]]),
        ]
        records = protocol.run_rounds(batches)
        assert protocol.all_rounds_correct
        # The decoded trajectory matches running each machine uncoded.
        for k in range(4):
            state = machine.initial_state.copy()
            for batch in batches:
                state, _ = machine.step(state, batch[k])
            assert protocol.engine.states[k].tolist() == state.tolist()
        # Every client got exactly one output per round it submitted in.
        assert all(len(v) == 3 for v in protocol.delivered_outputs.values())
        assert protocol.measured_throughput() > 0

    def test_consensus_and_execution_agree_on_commands(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        config = CSMConfig(big_field, num_nodes=8, num_machines=3, degree=1, num_faults=1)
        protocol = CSMProtocol(config, machine, rng=np.random.default_rng(1))
        protocol.submit_round_of_commands(np.array([[7], [8], [9]]))
        record = protocol.run_round()
        assert record.correct
        assert record.commands.tolist() == [[7], [8], [9]]
        assert record.result.outputs.tolist() == [[7], [8], [9]]

    def test_faulty_leader_does_not_stall_protocol(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        config = CSMConfig(big_field, num_nodes=9, num_machines=3, degree=1, num_faults=2)
        behaviors = {"node-0": SilentBehavior(), "node-2": RandomGarbageBehavior()}
        protocol = CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(2))
        protocol.submit_round_of_commands(np.array([[1], [2], [3]]))
        record = protocol.run_round()  # round 0's leader is the silent node-0
        assert record.correct
        assert record.consensus_views >= 1


class TestFullProtocolPartiallySynchronous:
    def test_pbft_plus_erasure_decoding(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        config = CSMConfig(
            big_field, num_nodes=10, num_machines=3, degree=1, num_faults=1,
            partially_synchronous=True,
        )
        behaviors = {"node-4": SilentBehavior()}
        protocol = CSMProtocol(config, machine, behaviors, rng=np.random.default_rng(3))
        protocol.submit_round_of_commands(np.array([[5], [6], [7]]))
        record = protocol.run_round()
        assert record.correct
        assert record.result.outputs.tolist() == [[5], [6], [7]]


class TestCSMvsReplicationEquivalence:
    def test_same_outputs_as_full_replication(self, big_field, rng):
        machine = quadratic_market_machine(big_field)
        commands = rng.integers(1, 50, size=(3, 2))
        config = CSMConfig(big_field, num_nodes=12, num_machines=3, degree=2, num_faults=2)
        csm = CodedExecutionEngine(config, machine, rng=np.random.default_rng(4))
        replication = FullReplicationSMR(
            quadratic_market_machine(big_field), 3, [f"node-{i}" for i in range(12)]
        )
        csm_result = csm.execute_round(commands)
        rep_result = replication.execute_round(commands)
        assert csm_result.outputs.tolist() == rep_result.outputs.tolist()
        assert csm_result.states.tolist() == rep_result.states.tolist()

    def test_csm_survives_fault_level_that_breaks_partial_replication(self, big_field, rng):
        from repro.replication.partial import PartialReplicationSMR

        machine = bank_account_machine(big_field, num_accounts=1)
        num_nodes, num_machines = 12, 4
        commands = rng.integers(1, 50, size=(num_machines, 1))
        # Adversary concentrates 2 corruptions on partial replication's group 0
        # (group size 3 tolerates only 1) — but 2 faults are well inside CSM's
        # decoding radius of (12 - 3 - 1) / 2 = 4.
        behaviors = {"node-0": RandomGarbageBehavior(), "node-1": RandomGarbageBehavior()}
        partial = PartialReplicationSMR(
            machine, num_machines, [f"node-{i}" for i in range(num_nodes)],
            behaviors, np.random.default_rng(5),
        )
        config = CSMConfig(big_field, num_nodes, num_machines, degree=1, num_faults=2)
        csm = CodedExecutionEngine(
            config, bank_account_machine(big_field, num_accounts=1),
            behaviors=behaviors, rng=np.random.default_rng(5),
        )
        assert not partial.execute_round(commands).correct
        assert csm.execute_round(commands).correct


class TestDelegatedCSMRound:
    def test_full_round_through_the_delegated_coding_path(self, big_field, rng):
        """Figure 4: encode -> distributed transition -> decode, all delegated."""
        machine = quadratic_market_machine(big_field)
        num_nodes, num_machines = 14, 3
        scheme = LagrangeScheme(big_field, num_machines, num_nodes)
        node_ids = [f"node-{i}" for i in range(num_nodes)]
        service = DelegatedCodingService(
            scheme, machine.degree, node_ids, fault_fraction=0.2,
            rng=np.random.default_rng(6),
        )
        states = rng.integers(1, 100, size=(num_machines, 2))
        commands = rng.integers(1, 100, size=(num_machines, 2))
        committee = service.elect_committee()

        coded_states, report_s = service.encode_vectors_verified(states, committee)
        coded_commands, report_c = service.encode_vectors_verified(commands, committee)
        assert report_s.accepted and report_c.accepted

        # Every node computes its transition locally on coded data (cheap).
        results = np.zeros((num_nodes, machine.transition.result_dim), dtype=np.int64)
        for i in range(num_nodes):
            results[i] = machine.transition.evaluate_result_vector(
                coded_states[i], coded_commands[i]
            )
        # Two Byzantine nodes corrupt their results.
        results[0] = (results[0] + 13) % big_field.order
        results[8] = (results[8] + 13) % big_field.order

        decoded, report_d = service.decode_results_verified(results, committee)
        assert report_d.accepted
        expected = np.zeros_like(decoded)
        for k in range(num_machines):
            expected[k] = machine.transition.evaluate_result_vector(states[k], commands[k])
        assert decoded.tolist() == expected.tolist()
        # Commoners did constant work; the worker did the heavy lifting.
        assert report_d.max_commoner_operations <= 5
        assert report_d.worker_operations > 100


class TestBooleanMachineUnderCSM:
    def test_appendix_a_pipeline(self):
        """A Boolean machine compiled per Appendix A executes correctly under CSM."""
        num_nodes = 9
        field = BinaryExtensionField.for_network_size(num_nodes + 4)

        def next_bit(bits):   # state XOR command
            return bits[0] ^ bits[1]

        def output_bit(bits):  # AND
            return bits[0] & bits[1]

        compiler = BooleanTransitionCompiler(
            field, state_bits=1, command_bits=1,
            next_state_functions=[next_bit], output_functions=[output_bit],
        )
        machine = compiler.compile_machine([0])
        # d = 2 (degree of the compiled polynomials), K = 2, N = 9:
        # radius = (9 - (2*1 + 1)) // 2 = 3 >= 1 fault.
        config = CSMConfig(field, num_nodes=num_nodes, num_machines=2,
                           degree=machine.degree, num_faults=1)
        behaviors = {"node-3": RandomGarbageBehavior()}
        engine = CodedExecutionEngine(config, machine, behaviors=behaviors,
                                      rng=np.random.default_rng(7))
        state_bits = [[0], [0]]
        for command_bits in ([[1], [1]], [[1], [0]], [[0], [1]]):
            commands = np.array([embed_bits(field, c) for c in command_bits])
            result = engine.execute_round(commands)
            assert result.correct
            for k in range(2):
                expected_state, expected_output = compiler.reference_step(
                    state_bits[k], command_bits[k]
                )
                assert project_bits(field, result.states[k]).tolist() == expected_state
                assert project_bits(field, result.outputs[k]).tolist() == expected_output
                state_bits[k] = expected_state
