"""Property-based tests (hypothesis) for the core algebraic invariants.

These cover the invariants every higher layer relies on:

* field axioms of GF(p) and GF(2**m);
* interpolation/evaluation round trips;
* Reed–Solomon decoding correcting any error pattern within the radius;
* the CSM encode -> coded-execute -> decode pipeline recovering the exact
  uncoded results for arbitrary polynomial machines, states and commands;
* INTERMIX never accepting a wrong product and never rejecting a right one.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.gf.extension_field import BinaryExtensionField
from repro.gf.lagrange import lagrange_interpolate
from repro.gf.linalg import gf_matvec
from repro.gf.polynomial import Poly
from repro.gf.prime_field import PrimeField
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import WorkerStrategy
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme
from repro.machine.library import random_polynomial_machine

FIELD = PrimeField(2_147_483_647)
SMALL = PrimeField(97)
GF16 = BinaryExtensionField(4)

elements = st.integers(min_value=0, max_value=96)
big_elements = st.integers(min_value=0, max_value=FIELD.order - 1)
gf16_elements = st.integers(min_value=0, max_value=15)

relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestFieldAxioms:
    @relaxed
    @given(a=elements, b=elements, c=elements)
    def test_gfp_ring_axioms(self, a, b, c):
        assert SMALL.add(a, b) == SMALL.add(b, a)
        assert SMALL.mul(a, b) == SMALL.mul(b, a)
        assert SMALL.mul(a, SMALL.add(b, c)) == SMALL.add(SMALL.mul(a, b), SMALL.mul(a, c))
        assert SMALL.add(SMALL.add(a, b), c) == SMALL.add(a, SMALL.add(b, c))
        assert SMALL.add(a, SMALL.neg(a)) == 0

    @relaxed
    @given(a=elements.filter(lambda x: x != 0))
    def test_gfp_inverse(self, a):
        assert SMALL.mul(a, SMALL.inv(a)) == 1

    @relaxed
    @given(a=gf16_elements, b=gf16_elements, c=gf16_elements)
    def test_gf2m_ring_axioms(self, a, b, c):
        assert GF16.add(a, b) == GF16.add(b, a)
        assert GF16.mul(a, b) == GF16.mul(b, a)
        assert GF16.mul(a, GF16.add(b, c)) == GF16.add(GF16.mul(a, b), GF16.mul(a, c))
        assert GF16.add(a, a) == 0  # characteristic 2

    @relaxed
    @given(a=gf16_elements.filter(lambda x: x != 0))
    def test_gf2m_inverse(self, a):
        assert GF16.mul(a, GF16.inv(a)) == 1


class TestPolynomialProperties:
    @relaxed
    @given(coeffs=st.lists(elements, min_size=1, max_size=8), point=elements)
    def test_evaluation_is_ring_homomorphism(self, coeffs, point):
        a = Poly(SMALL, coeffs)
        b = Poly(SMALL, list(reversed(coeffs)))
        assert (a + b).evaluate(point) == SMALL.add(a.evaluate(point), b.evaluate(point))
        assert (a * b).evaluate(point) == SMALL.mul(a.evaluate(point), b.evaluate(point))

    @relaxed
    @given(values=st.lists(elements, min_size=1, max_size=12))
    def test_interpolation_round_trip(self, values):
        xs = SMALL.distinct_points(len(values))
        poly = lagrange_interpolate(SMALL, xs, values)
        assert poly.degree < len(values)
        assert [poly.evaluate(x) for x in xs] == [v % 97 for v in values]

    @relaxed
    @given(
        coeffs=st.lists(elements, min_size=1, max_size=6),
        divisor=st.lists(elements, min_size=2, max_size=4),
    )
    def test_division_invariant(self, coeffs, divisor):
        a = Poly(SMALL, coeffs)
        b = Poly(SMALL, divisor)
        if b.is_zero:
            return
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree


class TestReedSolomonProperties:
    @relaxed
    @given(
        message=st.lists(big_elements, min_size=4, max_size=4),
        error_data=st.lists(
            st.tuples(st.integers(0, 14), st.integers(1, FIELD.order - 1)),
            min_size=0, max_size=5,
        ),
    )
    def test_any_error_pattern_within_radius_is_corrected(self, message, error_data):
        code = ReedSolomonCode(FIELD, FIELD.distinct_points(15), 4)
        codeword = code.encode(message)
        corrupted = codeword.copy()
        positions = {}
        for pos, offset in error_data:
            positions[pos] = offset
        positions = dict(list(positions.items())[: code.correction_radius])
        for pos, offset in positions.items():
            corrupted[pos] = FIELD.add(int(corrupted[pos]), offset)
        for decoder_cls in (BerlekampWelchDecoder, GaoDecoder):
            result = decoder_cls(code).decode(corrupted)
            assert result.polynomial.coefficient_array(4).tolist() == [
                m % FIELD.order for m in message
            ]
            assert set(result.error_positions) == set(positions)

    @relaxed
    @given(message=st.lists(big_elements, min_size=3, max_size=3))
    def test_reencoding_decoded_word_is_idempotent(self, message):
        code = ReedSolomonCode(FIELD, FIELD.distinct_points(9), 3)
        codeword = code.encode(message)
        result = BerlekampWelchDecoder(code).decode(codeword)
        assert result.codeword.tolist() == codeword.tolist()


class TestCSMPipelineProperties:
    @relaxed
    @given(
        data=st.data(),
        degree=st.integers(min_value=1, max_value=3),
        num_machines=st.integers(min_value=2, max_value=4),
    )
    def test_coded_execution_equals_uncoded_execution(self, data, degree, num_machines):
        """For random machines/states/commands and any fault set within the
        radius, decoding the coded results reproduces the uncoded outputs."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        machine = random_polynomial_machine(FIELD, 2, 2, degree=degree, rng=rng)
        composite_degree = degree * (num_machines - 1)
        num_nodes = composite_degree + 1 + 2 * 2  # radius exactly 2
        scheme = LagrangeScheme(FIELD, num_machines, num_nodes)
        encoder = CodedStateEncoder(scheme)
        decoder = CodedResultDecoder(scheme, transition_degree=degree)

        states = rng.integers(0, FIELD.order, size=(num_machines, 2))
        commands = rng.integers(0, FIELD.order, size=(num_machines, 2))
        coded_states = encoder.encode(states)
        coded_commands = encoder.encode(commands)
        results = np.zeros(
            (num_nodes, machine.transition.result_dim), dtype=np.int64
        )
        for i in range(num_nodes):
            results[i] = machine.transition.evaluate_result_vector(
                coded_states[i], coded_commands[i]
            )
        faulty = data.draw(
            st.sets(st.integers(0, num_nodes - 1), min_size=0, max_size=2)
        )
        for i in faulty:
            results[i] = rng.integers(0, FIELD.order, size=results.shape[1])
        decoded = decoder.decode(results)
        for k in range(num_machines):
            expected = machine.transition.evaluate_result_vector(states[k], commands[k])
            assert decoded.outputs[k].tolist() == expected.tolist()

    @relaxed
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_machines=st.integers(min_value=2, max_value=5),
    )
    def test_encoding_is_linear(self, seed, num_machines):
        """C(aX + bY) = a C(X) + b C(Y) — linearity that the state-update step
        (re-encoding decoded states) silently relies on."""
        rng = np.random.default_rng(seed)
        scheme = LagrangeScheme(FIELD, num_machines, num_machines + 4)
        x = rng.integers(0, FIELD.order, size=num_machines)
        y = rng.integers(0, FIELD.order, size=num_machines)
        a, b = int(rng.integers(1, 1000)), int(rng.integers(1, 1000))
        combined = FIELD.add(FIELD.mul(x, a), FIELD.mul(y, b))
        left = scheme.encode_scalars(combined)
        right = FIELD.add(
            FIELD.mul(scheme.encode_scalars(x), a), FIELD.mul(scheme.encode_scalars(y), b)
        )
        assert left.tolist() == right.tolist()


class TestIntermixProperties:
    @relaxed
    @given(
        seed=st.integers(0, 2**32 - 1),
        cols=st.integers(min_value=2, max_value=32),
        strategy=st.sampled_from(
            [WorkerStrategy.HONEST, WorkerStrategy.CORRUPT_RESULT, WorkerStrategy.CONSISTENT_LIAR]
        ),
    )
    def test_accept_iff_worker_honest(self, seed, cols, strategy):
        rng = np.random.default_rng(seed)
        node_ids = [f"n{i}" for i in range(8)]
        protocol = IntermixProtocol(
            FIELD, node_ids, fault_fraction=0.25, rng=rng,
            worker_strategies={n: strategy for n in node_ids},
        )
        matrix = rng.integers(0, FIELD.order, size=(8, cols))
        vector = rng.integers(0, FIELD.order, size=cols)
        outcome = protocol.run(matrix, vector)
        if strategy is WorkerStrategy.HONEST:
            assert outcome.accepted
            assert outcome.result.tolist() == gf_matvec(FIELD, matrix, vector).tolist()
        else:
            assert not outcome.accepted
