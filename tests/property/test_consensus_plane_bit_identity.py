"""Property tests for the vectorised consensus message plane.

:meth:`ConsensusProtocol.decide_rounds` has two implementations: the
event-driven oracle (per-copy ``network.send`` + scheduler delivery — the
reference semantics) and the vectorised message plane (struct-of-arrays
phase batches, one-shot batch signing/verification, array-level delay
sampling).  The plane is a pure reorganisation of the same sends, so under
*any* admissible Byzantine pattern — honest, silent, equivocating/lying,
delaying, and mid-batch fault onset — the two paths must agree bit for bit
on:

* the recorded round history (commands, clients, consensus views, outputs);
* the shared rng stream (both generators end in the same state);
* the network counters (``messages_sent``, ``rejected_signatures``);
* the full delivery log, field for field;

across batch-window boundaries too: deciding the same rounds one call at a
time (``B = 1``) or in one call wider than the round count (``B > rounds``)
must not move a single message or rng draw.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    DelayingBehavior,
    EquivocatingBehavior,
    FaultOnsetBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)

FIELD = PrimeField()

relaxed = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

BEHAVIOR_FACTORIES = (
    RandomGarbageBehavior,
    SilentBehavior,
    EquivocatingBehavior,
    DelayingBehavior,
    lambda: CorruptResultBehavior(offset=3),
    lambda: FaultOnsetBehavior(SilentBehavior(), onset_round=1),
    lambda: FaultOnsetBehavior(EquivocatingBehavior(), onset_round=2),
)


def _valid_config(num_nodes, num_faults, degree, partially_synchronous):
    for k in range(min(4, num_nodes), 0, -1):
        try:
            return CSMConfig(
                FIELD,
                num_nodes=num_nodes,
                num_machines=k,
                degree=degree,
                num_faults=num_faults,
                partially_synchronous=partially_synchronous,
            )
        except ConfigurationError:
            continue
    return None


def _run_windowed(protocol, batches, window):
    """Drive ``batches`` through ``run_rounds_batched`` in ``window``-sized calls."""
    records = []
    for start in range(0, len(batches), window):
        records.extend(protocol.run_rounds_batched(batches[start : start + window]))
    return records


def _assert_parity(oracle, plane, oracle_records, plane_records, num_rounds):
    assert len(oracle_records) == len(plane_records) == num_rounds
    for orc, vec in zip(oracle_records, plane_records):
        assert orc.round_index == vec.round_index
        assert np.array_equal(orc.commands, vec.commands)
        assert orc.clients == vec.clients
        assert orc.consensus_views == vec.consensus_views
        assert np.array_equal(orc.result.outputs, vec.result.outputs)
        assert np.array_equal(orc.result.states, vec.result.states)
        assert orc.result.correct == vec.result.correct
    # The consensus/network layer consumed the shared rng identically.
    assert (
        oracle.rng.bit_generator.state["state"]
        == plane.rng.bit_generator.state["state"]
    )
    assert oracle.network.messages_sent == plane.network.messages_sent
    assert oracle.network.rejected_signatures == plane.network.rejected_signatures
    assert oracle.network.now == plane.network.now
    oracle_log = oracle.network.delivery_log
    plane_log = plane.network.delivery_log
    assert len(oracle_log) == len(plane_log)
    for a, b in zip(oracle_log, plane_log):
        assert a.message.sender == b.message.sender
        assert a.message.recipient == b.message.recipient
        assert a.message.kind == b.message.kind
        assert a.message.round_index == b.message.round_index
        assert a.send_time == b.send_time
        assert a.delivery_time == b.delivery_time
        assert a.delivered == b.delivered
    # Each protocol took exactly the path it was configured for.
    assert oracle.consensus_fast_path_disabled == num_rounds
    assert plane.consensus_fast_path_disabled == 0


class TestConsensusPlaneBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_plane_matches_oracle(self, data):
        partially_synchronous = data.draw(st.booleans(), label="psync")
        num_nodes = data.draw(st.sampled_from([6, 9, 10, 12]), label="N")
        machine = bank_account_machine(FIELD, num_accounts=2)
        fault_cap = (num_nodes - 1) // 3 if partially_synchronous else num_nodes // 4
        num_faults = data.draw(st.integers(0, min(2, fault_cap)), label="b")
        config = _valid_config(
            num_nodes, num_faults, machine.degree, partially_synchronous
        )
        if config is None:
            return
        fault_indices = data.draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=num_faults,
                max_size=num_faults,
                unique=True,
            ),
            label="fault_indices",
        )
        behavior_picks = [
            data.draw(st.integers(0, len(BEHAVIOR_FACTORIES) - 1))
            for _ in fault_indices
        ]
        num_rounds = data.draw(st.integers(1, 4), label="rounds")
        # Batch-window boundaries: one round per call, everything in one
        # call, and a window wider than the round count (B > rounds).
        window = data.draw(
            st.sampled_from([1, max(num_rounds // 2, 1), num_rounds + 3]),
            label="window",
        )
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        batches = [
            command_rng.integers(
                1, 1000, size=(config.num_machines, machine.command_dim)
            )
            for _ in range(num_rounds)
        ]

        def fresh_behaviors():
            # Fresh instances per protocol: FaultOnsetBehavior is stateful
            # (its onset counter advances per execution-phase report).
            return {
                f"node-{index}": BEHAVIOR_FACTORIES[pick]()
                for index, pick in zip(fault_indices, behavior_picks)
            }

        oracle = CSMProtocol(
            config,
            machine,
            fresh_behaviors(),
            rng=np.random.default_rng(5),
            vectorised_consensus=False,
        )
        plane = CSMProtocol(
            config,
            machine,
            fresh_behaviors(),
            rng=np.random.default_rng(5),
            vectorised_consensus=True,
        )
        oracle_records = _run_windowed(oracle, batches, window)
        plane_records = _run_windowed(plane, batches, window)
        _assert_parity(oracle, plane, oracle_records, plane_records, num_rounds)

    @relaxed
    @given(data=st.data())
    def test_window_boundaries_do_not_move_messages(self, data):
        """B=1 versus B>rounds on the *same* plane path stays bit-identical."""
        partially_synchronous = data.draw(st.booleans(), label="psync")
        num_nodes = data.draw(st.sampled_from([6, 10]), label="N")
        machine = bank_account_machine(FIELD, num_accounts=2)
        fault_cap = (num_nodes - 1) // 3 if partially_synchronous else num_nodes // 4
        num_faults = data.draw(st.integers(0, min(2, fault_cap)), label="b")
        config = _valid_config(
            num_nodes, num_faults, machine.degree, partially_synchronous
        )
        if config is None:
            return
        fault_indices = data.draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=num_faults,
                max_size=num_faults,
                unique=True,
            ),
            label="fault_indices",
        )
        behavior_picks = [
            data.draw(st.integers(0, len(BEHAVIOR_FACTORIES) - 1))
            for _ in fault_indices
        ]
        num_rounds = data.draw(st.integers(2, 4), label="rounds")
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        batches = [
            command_rng.integers(
                1, 1000, size=(config.num_machines, machine.command_dim)
            )
            for _ in range(num_rounds)
        ]

        def build():
            # Fresh behaviour instances per protocol: FaultOnsetBehavior is
            # stateful (its onset counter advances per round).
            behaviors = {
                f"node-{index}": BEHAVIOR_FACTORIES[pick]()
                for index, pick in zip(fault_indices, behavior_picks)
            }
            return CSMProtocol(
                config, machine, behaviors, rng=np.random.default_rng(5)
            )

        one_by_one = build()
        single_call = build()
        narrow_records = _run_windowed(one_by_one, batches, window=1)
        wide_records = _run_windowed(
            single_call, batches, window=num_rounds + 5
        )
        assert len(narrow_records) == len(wide_records) == num_rounds
        for a, b in zip(narrow_records, wide_records):
            assert np.array_equal(a.commands, b.commands)
            assert a.clients == b.clients
            assert a.consensus_views == b.consensus_views
            assert np.array_equal(a.result.outputs, b.result.outputs)
            assert a.result.correct == b.result.correct
        assert (
            one_by_one.network.messages_sent == single_call.network.messages_sent
        )
        assert (
            one_by_one.network.rejected_signatures
            == single_call.network.rejected_signatures
        )
        assert len(one_by_one.network.delivery_log) == len(
            single_call.network.delivery_log
        )
