"""Property tests for the batched protocol round path.

:meth:`CSMProtocol.run_rounds_batched` takes a different route through every
layer — consensus rounds decided through ``decide_rounds`` over the network's
bulk delivery path, coded execution through the cached-matrix
``execute_rounds`` pipeline with the stacked transition step — yet the
recorded :class:`ProtocolRound` history must agree *bit for bit* with the
sequential ``run_round`` loop, across both network models and arbitrary
admissible Byzantine fault patterns.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    EquivocatingBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)

FIELD = PrimeField()

relaxed = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

BEHAVIOR_FACTORIES = (
    RandomGarbageBehavior,
    SilentBehavior,
    EquivocatingBehavior,
    lambda: CorruptResultBehavior(offset=3),
)


def _largest_valid_config(
    num_nodes: int, num_faults: int, degree: int, partially_synchronous: bool
) -> CSMConfig | None:
    """The widest configuration (capped at K=4) the bounds admit, or None."""
    for k in range(min(4, num_nodes), 0, -1):
        try:
            return CSMConfig(
                FIELD,
                num_nodes=num_nodes,
                num_machines=k,
                degree=degree,
                num_faults=num_faults,
                partially_synchronous=partially_synchronous,
            )
        except ConfigurationError:
            continue
    return None


class TestBatchedProtocolBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_history_matches_sequential_loop(self, data):
        partially_synchronous = data.draw(st.booleans(), label="psync")
        num_nodes = data.draw(st.sampled_from([6, 9, 10, 12]), label="N")
        quadratic = data.draw(st.booleans(), label="quadratic")
        machine = (
            quadratic_market_machine(FIELD)
            if quadratic
            else bank_account_machine(FIELD, num_accounts=2)
        )
        fault_cap = (num_nodes - 1) // 3 if partially_synchronous else num_nodes // 4
        num_faults = data.draw(st.integers(0, min(2, fault_cap)), label="b")
        config = _largest_valid_config(
            num_nodes, num_faults, machine.degree, partially_synchronous
        )
        if config is None:
            return  # bounds leave no admissible K for this draw
        fault_indices = data.draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=num_faults,
                max_size=num_faults,
                unique=True,
            ),
            label="fault_indices",
        )
        behaviors = {
            f"node-{index}": BEHAVIOR_FACTORIES[
                data.draw(st.integers(0, len(BEHAVIOR_FACTORIES) - 1))
            ]()
            for index in fault_indices
        }
        num_rounds = data.draw(st.integers(1, 4), label="rounds")
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        batches = [
            command_rng.integers(1, 1000, size=(config.num_machines, machine.command_dim))
            for _ in range(num_rounds)
        ]

        sequential = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(5)
        )
        batched = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(5)
        )
        sequential_records = sequential.run_rounds(batches)
        batched_records = batched.run_rounds_batched(batches)

        assert len(sequential_records) == len(batched_records) == num_rounds
        for seq, bat in zip(sequential_records, batched_records):
            assert seq.round_index == bat.round_index
            assert np.array_equal(seq.commands, bat.commands)
            assert seq.clients == bat.clients
            assert seq.consensus_views == bat.consensus_views
            assert np.array_equal(seq.result.outputs, bat.result.outputs)
            assert np.array_equal(seq.result.states, bat.result.states)
            assert seq.result.correct == bat.result.correct
            assert (
                seq.result.diagnostics["error_nodes"]
                == bat.result.diagnostics["error_nodes"]
            )
        # Client-facing state agrees too: delivered outputs and failed rounds.
        assert set(sequential.delivered_outputs) == set(batched.delivered_outputs)
        for client, outputs in sequential.delivered_outputs.items():
            assert len(outputs) == len(batched.delivered_outputs[client])
            for a, b in zip(outputs, batched.delivered_outputs[client]):
                assert np.array_equal(a, b)
        assert sequential.failed_deliveries == batched.failed_deliveries
        assert sequential.failed_rounds == batched.failed_rounds
        # Operation counts (and hence throughput) intentionally differ: the
        # batched decode amortisation is the whole point of the pipeline.
        # Message-plane parity: the batched path (vectorised consensus) must
        # perform *the same sends* as the sequential oracle — identical
        # message/signature counters and a field-identical delivery log.
        assert sequential.network.messages_sent == batched.network.messages_sent
        assert (
            sequential.network.rejected_signatures
            == batched.network.rejected_signatures
        )
        seq_log = sequential.network.delivery_log
        bat_log = batched.network.delivery_log
        assert len(seq_log) == len(bat_log)
        for a, b in zip(seq_log, bat_log):
            assert a.message.sender == b.message.sender
            assert a.message.recipient == b.message.recipient
            assert a.message.kind == b.message.kind
            assert a.message.round_index == b.message.round_index
            assert a.send_time == b.send_time
            assert a.delivery_time == b.delivery_time
            assert a.delivered == b.delivered
        # The batched driver must have taken the vectorised plane throughout.
        assert batched.consensus_fast_path_disabled == 0
