"""Property tests for the fault-injection plane and the self-healing service.

Three contracts pin the robustness layer:

1. **Standing oracle** — a service configured with retry machinery and an
   *empty* :class:`~repro.faults.FaultSchedule` is bit-identical to the
   plain service: same recorded history, same rng stream position, same
   ticket lifecycle.  The fault plane must cost nothing when idle.
2. **Liveness under admissible crashes** — any seeded random crash
   schedule whose concurrency stays within the decoding radius leaves
   every round verifying and every ticket ``EXECUTED``; crashed nodes are
   erasures the decoder absorbs and resync restores.
3. **Self-healing beyond the radius** — a corrupt burst that *does* fail
   rounds is recovered by :class:`~repro.service.RetryPolicy` resubmission,
   and a crashed PBFT primary is routed around by a view change.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.faults import FaultSchedule
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine
from repro.rng import default_stream
from repro.service import CSMService, RetryPolicy, TicketState

FIELD = PrimeField()

relaxed = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: N=12, K=3, degree 1 → threshold 3, decoding radius (12-3)//2 = 4: up to
#: four silent rows per round are correctable erasures.
NUM_NODES = 12
NUM_MACHINES = 3
CRASH_RADIUS = 4


def _protocol(seed=7, **config_kwargs):
    machine = bank_account_machine(FIELD, num_accounts=2)
    config = CSMConfig(
        FIELD,
        num_nodes=config_kwargs.pop("num_nodes", NUM_NODES),
        num_machines=config_kwargs.pop("num_machines", NUM_MACHINES),
        degree=machine.degree,
        num_faults=config_kwargs.pop("num_faults", 1),
        **config_kwargs,
    )
    return CSMProtocol(config, machine, rng=default_stream(seed))


def _run_traffic(service, plan):
    """Submit ``plan`` (one machine-index list per drive) and drain."""
    session = service.connect("alice")
    tickets = []
    for round_index, machines in enumerate(plan):
        for k in machines:
            tickets.append(session.submit(k, [100 + 10 * round_index + k, 1]))
        service.drive(flush=True)
    service.drain()
    return tickets


class TestEmptyScheduleOracle:
    @relaxed
    @given(data=st.data())
    def test_idle_fault_plane_is_bit_identical_to_plain_service(self, data):
        num_rounds = data.draw(st.integers(1, 4), label="rounds")
        plan = [
            data.draw(
                st.lists(
                    st.integers(0, NUM_MACHINES - 1),
                    min_size=1,
                    max_size=NUM_MACHINES,
                    unique=True,
                ),
                label=f"round-{r}",
            )
            for r in range(num_rounds)
        ]
        seed = data.draw(st.integers(0, 2**31), label="seed")

        plain = _protocol(seed=seed)
        plain_service = CSMService(plain)
        plain_tickets = _run_traffic(plain_service, plan)

        guarded = _protocol(seed=seed)
        guarded_service = CSMService(
            guarded,
            retry=RetryPolicy(max_attempts=3, backoff_ticks=1),
            faults=FaultSchedule(),
        )
        guarded_tickets = _run_traffic(guarded_service, plan)

        assert len(plain.history) == len(guarded.history)
        for a, b in zip(plain.history, guarded.history):
            assert np.array_equal(a.commands, b.commands)
            assert a.clients == b.clients
            assert a.consensus_views == b.consensus_views
            assert np.array_equal(a.result.outputs, b.result.outputs)
            assert np.array_equal(a.result.states, b.result.states)
            assert a.result.correct and b.result.correct
            assert a.result.diagnostics == b.result.diagnostics
            assert a.result.ops_per_node == b.result.ops_per_node
        assert plain.rng.bit_generator.state == guarded.rng.bit_generator.state
        for t_plain, t_guarded in zip(plain_tickets, guarded_tickets):
            assert t_plain.state is t_guarded.state is TicketState.EXECUTED
            assert t_guarded.attempts == 1
            assert np.array_equal(t_plain.result(), t_guarded.result())
            assert t_plain.submitted_tick == t_guarded.submitted_tick
            assert t_plain.resolved_tick == t_guarded.resolved_tick
        report = guarded_service.fault_report()
        assert report.injected_events == 0
        assert report.applied_events == 0


class TestRandomCrashLiveness:
    @relaxed
    @given(
        schedule_seed=st.integers(0, 2**31),
        concurrency=st.integers(1, CRASH_RADIUS),
        rounds=st.integers(2, 5),
    )
    def test_admissible_crash_schedules_keep_every_ticket_live(
        self, schedule_seed, concurrency, rounds
    ):
        schedule = FaultSchedule.random(
            default_stream(schedule_seed),
            [f"node-{i}" for i in range(NUM_NODES)],
            num_rounds=rounds,
            max_concurrent=concurrency,
            fault_probability=0.6,
            kinds=("crash",),
        )
        protocol = _protocol(seed=3)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=3, backoff_ticks=1),
            faults=schedule,
        )
        plan = [list(range(NUM_MACHINES))] * rounds
        tickets = _run_traffic(service, plan)
        # Crashes within the radius are erasures, never failed rounds:
        # liveness here means normal execution plus resync, no retries.
        assert protocol.failed_rounds == 0
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        report = service.fault_report()
        assert report.injected_events == len(schedule.events)
        assert report.applied_events + report.pending_events == len(schedule.events)


class TestSelfHealing:
    def test_corrupt_burst_beyond_radius_is_retried_to_completion(self):
        schedule = FaultSchedule()
        for i in range(CRASH_RADIUS + 1):
            schedule.behavior(f"node-{i}", "corrupt", at=1, until=3)
        protocol = _protocol(seed=3)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
            faults=schedule,
        )
        tickets = _run_traffic(service, [list(range(NUM_MACHINES))] * 4)
        assert protocol.failed_rounds == 2
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        report = service.fault_report()
        assert report.applied_events == report.injected_events
        assert report.recovered_tickets > 0
        assert report.exhausted_tickets == 0

    def test_crashed_pbft_primary_is_routed_around_by_view_change(self):
        # Under partial synchrony the primary of round r at view v is
        # node_ids[(r + v) % N]; crashing node-0 over rounds [0, 2) forces
        # round 0 through a view change while round 1 (primary node-1)
        # decides at view 0 with the node still down.
        schedule = FaultSchedule().crash("node-0", at=0, until=2)
        protocol = _protocol(
            seed=5, num_nodes=8, num_machines=2, partially_synchronous=True
        )
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=3, backoff_ticks=1),
            faults=schedule,
        )
        tickets = _run_traffic(service, [[0, 1]] * 3)
        assert protocol.failed_rounds == 0
        assert protocol.history[0].consensus_views >= 1
        assert protocol.history[1].consensus_views == 0
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        report = service.fault_report()
        assert report.applied_events == len(schedule.events)
        assert report.crashed_nodes == []
