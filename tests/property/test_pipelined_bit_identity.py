"""Property tests for the speculative decode/execute pipeline.

:meth:`CSMProtocol.run_rounds_pipelined` advances honest state from a
pivot-only speculative interpolation and defers the full error-locating
verification to a stacked per-window check, rolling back and re-executing
when speculation is invalidated — yet the recorded :class:`ProtocolRound`
history, the delivered outputs, the failure accounting *and the learnt
suspect set* must agree bit for bit with :meth:`run_rounds_batched`, across
network models, verification windows and fault patterns — including a node
that turns Byzantine mid-batch (the rollback path's worst case: the decoder
trusted it as a pivot until its first bad round).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    DelayingBehavior,
    FaultOnsetBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)

FIELD = PrimeField()

relaxed = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

BEHAVIOR_FACTORIES = (
    RandomGarbageBehavior,
    SilentBehavior,
    DelayingBehavior,
    lambda: CorruptResultBehavior(offset=3),
)


def _largest_valid_config(
    num_nodes: int, num_faults: int, degree: int, partially_synchronous: bool
) -> CSMConfig | None:
    """The widest configuration (capped at K=4) the bounds admit, or None."""
    for k in range(min(4, num_nodes), 0, -1):
        try:
            return CSMConfig(
                FIELD,
                num_nodes=num_nodes,
                num_machines=k,
                degree=degree,
                num_faults=num_faults,
                partially_synchronous=partially_synchronous,
            )
        except ConfigurationError:
            continue
    return None


def _assert_bit_identical(batched: CSMProtocol, pipelined: CSMProtocol) -> None:
    assert len(batched.history) == len(pipelined.history)
    for bat, pip in zip(batched.history, pipelined.history):
        assert bat.round_index == pip.round_index
        assert np.array_equal(bat.commands, pip.commands)
        assert bat.clients == pip.clients
        assert bat.consensus_views == pip.consensus_views
        assert np.array_equal(bat.result.outputs, pip.result.outputs)
        assert np.array_equal(bat.result.states, pip.result.states)
        assert bat.result.correct == pip.result.correct
        assert (
            bat.result.diagnostics["error_nodes"]
            == pip.result.diagnostics["error_nodes"]
        )
    # Client-facing state agrees: delivered outputs and failure book-keeping.
    assert set(batched.delivered_outputs) == set(pipelined.delivered_outputs)
    for client, outputs in batched.delivered_outputs.items():
        assert len(outputs) == len(pipelined.delivered_outputs[client])
        for a, b in zip(outputs, pipelined.delivered_outputs[client]):
            assert np.array_equal(a, b)
    assert batched.failed_deliveries == pipelined.failed_deliveries
    assert batched.failed_rounds == pipelined.failed_rounds
    # The decoder's learnt suspect set — which steers every later pivot
    # choice — must come out identical as well.
    assert batched.engine._suspects == pipelined.engine._suspects
    # And so must the nodes' coded states, so subsequent calls stay aligned.
    for bat_node, pip_node in zip(batched.engine.nodes, pipelined.engine.nodes):
        assert np.array_equal(
            bat_node.storage.coded_state, pip_node.storage.coded_state
        )


class TestPipelinedProtocolBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_history_matches_batched_path(self, data):
        partially_synchronous = data.draw(st.booleans(), label="psync")
        num_nodes = data.draw(st.sampled_from([6, 9, 10, 12]), label="N")
        quadratic = data.draw(st.booleans(), label="quadratic")
        machine = (
            quadratic_market_machine(FIELD)
            if quadratic
            else bank_account_machine(FIELD, num_accounts=2)
        )
        fault_cap = (num_nodes - 1) // 3 if partially_synchronous else num_nodes // 4
        num_faults = data.draw(st.integers(0, min(2, fault_cap)), label="b")
        config = _largest_valid_config(
            num_nodes, num_faults, machine.degree, partially_synchronous
        )
        if config is None:
            return  # bounds leave no admissible K for this draw
        fault_indices = data.draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=num_faults,
                max_size=num_faults,
                unique=True,
            ),
            label="fault_indices",
        )
        num_rounds = data.draw(st.integers(1, 6), label="rounds")
        behaviors = {}
        for index in fault_indices:
            inner = BEHAVIOR_FACTORIES[
                data.draw(st.integers(0, len(BEHAVIOR_FACTORIES) - 1))
            ]()
            if data.draw(st.booleans(), label=f"onset-{index}"):
                behaviors[f"node-{index}"] = FaultOnsetBehavior(
                    inner, data.draw(st.integers(0, num_rounds), label=f"round-{index}")
                )
            else:
                behaviors[f"node-{index}"] = inner
        verify_window = data.draw(st.sampled_from([1, 2, 3, 5, 16]), label="window")
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        batches = [
            command_rng.integers(
                1, 1000, size=(config.num_machines, machine.command_dim)
            )
            for _ in range(num_rounds)
        ]

        import copy

        batched = CSMProtocol(
            config, machine, copy.deepcopy(behaviors), rng=np.random.default_rng(5)
        )
        pipelined = CSMProtocol(
            config, machine, copy.deepcopy(behaviors), rng=np.random.default_rng(5)
        )
        batched.run_rounds_batched(batches)
        pipelined.run_rounds_pipelined(batches, verify_window=verify_window)
        _assert_bit_identical(batched, pipelined)

    def test_mid_batch_onset_triggers_rollback_and_stays_identical(self):
        """A pivot node turning Byzantine mid-batch must invalidate in-flight
        speculation (observable as a rollback + replay in the diagnostics)
        and still leave history, outputs and suspects bit-identical."""
        import copy

        machine = bank_account_machine(FIELD, num_accounts=2)
        config = CSMConfig(
            FIELD, num_nodes=12, num_machines=3, degree=machine.degree, num_faults=2
        )
        # node-0 sits in the initial pivot (first `dimension` non-suspects).
        behaviors = {
            "node-0": FaultOnsetBehavior(RandomGarbageBehavior(), onset_round=3),
            "node-1": FaultOnsetBehavior(CorruptResultBehavior(offset=9), onset_round=5),
        }
        command_rng = np.random.default_rng(17)
        batches = [
            command_rng.integers(1, 1000, size=(3, machine.command_dim))
            for _ in range(10)
        ]
        batched = CSMProtocol(
            config, machine, copy.deepcopy(behaviors), rng=np.random.default_rng(5)
        )
        pipelined = CSMProtocol(
            config, machine, copy.deepcopy(behaviors), rng=np.random.default_rng(5)
        )
        batched.run_rounds_batched(batches)
        pipelined.run_rounds_pipelined(batches, verify_window=16)
        _assert_bit_identical(batched, pipelined)
        speculation = [
            record.result.diagnostics.get("speculation")
            for record in pipelined.history
        ]
        assert "rollback" in speculation  # the onset round was re-resolved
        assert speculation.count("confirmed") >= 1  # speculation still paid off
        assert 0 in pipelined.engine._suspects
        assert 1 in pipelined.engine._suspects

    def test_service_pipeline_flag_preserves_ticket_outcomes(self):
        """CSMService(pipeline=True) must resolve every ticket exactly as the
        batched drive does, onset faults included."""
        import copy

        from repro.service import CSMService

        machine = bank_account_machine(FIELD, num_accounts=2)
        config = CSMConfig(
            FIELD, num_nodes=10, num_machines=3, degree=machine.degree, num_faults=1
        )
        behaviors = {
            "node-2": FaultOnsetBehavior(RandomGarbageBehavior(), onset_round=2)
        }
        command_rng = np.random.default_rng(23)
        batches = [
            command_rng.integers(1, 1000, size=(3, machine.command_dim))
            for _ in range(6)
        ]

        def run(pipeline: bool):
            protocol = CSMProtocol(
                config, machine, copy.deepcopy(behaviors), rng=np.random.default_rng(5)
            )
            service = CSMService(
                protocol, max_batch_rounds=6, min_fill=3, pipeline=pipeline
            )
            sessions = [service.connect(f"client:{k}") for k in range(3)]
            for batch in batches:
                for k in range(3):
                    sessions[k].submit(k, batch[k])
            service.drain()
            return protocol, service

        batched_protocol, batched_service = run(False)
        pipelined_protocol, pipelined_service = run(True)
        _assert_bit_identical(batched_protocol, pipelined_protocol)
        for bat, pip in zip(batched_service.tickets(), pipelined_service.tickets()):
            assert bat.sequence == pip.sequence
            assert bat.state is pip.state
            assert bat.machine_index == pip.machine_index
