"""Property tests: the sharded façade is the unsharded service, distributed.

Two guarantees pin the shard merge:

* **S = 1 degenerate case** — a :class:`ShardedCSMService` over a single
  backend is *bit-identical* to a :class:`CSMService` over an
  identically-constructed backend on the same ragged submission trace:
  same ticket sequences/states/outputs, same round history (commands,
  clients, consensus views, outputs, states, correctness), same merged
  reporting (delivered outputs, failure ledger, measured throughput).
* **Shard-merge determinism (S >= 2)** — partitioning the machines across
  independent shards must not change any client-visible *output*: every
  ticket of the same submission trace resolves to the same state/output as
  in the unsharded service, because machines are logically independent and
  each machine's FIFO order is preserved inside its owning shard.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior
from repro.replication import FullReplicationSMR, ReplicationProtocol
from repro.service import CSMService, ShardedCSMService, TicketState
from repro.service.sharding import partition_machines

FIELD = PrimeField()

relaxed = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _csm_backend(num_machines, num_nodes, num_faults, behaviors, seed):
    machine = bank_account_machine(FIELD, num_accounts=2)
    config = CSMConfig(
        field=FIELD,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=num_faults,
    )
    return CSMProtocol(
        config, machine, dict(behaviors), rng=np.random.default_rng(seed)
    )


def _replication_backend(num_machines, seed):
    machine = bank_account_machine(FIELD, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(4)]
    return ReplicationProtocol(
        FullReplicationSMR(
            machine, num_machines, node_ids, rng=np.random.default_rng(seed)
        )
    )


def _submit_trace(service, trace, tick_every):
    """Replay ``trace`` into ``service``, driving mid-stream, then drain."""
    sessions: dict[str, object] = {}
    tickets = []
    for i, (client_id, machine_index, command) in enumerate(trace):
        session = sessions.get(client_id)
        if session is None:
            session = sessions[client_id] = service.connect(client_id)
        tickets.append(session.submit(machine_index, command))
        if tick_every and (i + 1) % tick_every == 0:
            service.drive()
    service.drain()
    return tickets


class TestSingleShardBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_s1_is_bit_identical_to_unsharded(self, data):
        num_nodes = data.draw(st.sampled_from([8, 12]), label="N")
        num_faults = data.draw(st.integers(0, 1), label="b")
        machine = bank_account_machine(FIELD, num_accounts=2)
        num_machines = data.draw(st.integers(2, 3), label="K")
        behaviors = {}
        if num_faults:
            index = data.draw(st.integers(0, num_nodes - 1), label="fault_at")
            factory = data.draw(
                st.sampled_from([RandomGarbageBehavior, SilentBehavior])
            )
            behaviors = {f"node-{index}": factory()}
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        trace = [
            (
                f"client:{data.draw(st.integers(0, 2))}",
                data.draw(st.integers(0, num_machines - 1)),
                command_rng.integers(1, 1000, size=machine.command_dim),
            )
            for _ in range(data.draw(st.integers(1, 10), label="trace_len"))
        ]
        tick_every = data.draw(st.sampled_from([0, 1, 3]), label="tick_every")

        plain = CSMService(
            _csm_backend(num_machines, num_nodes, num_faults, behaviors, seed=5)
        )
        plain_tickets = _submit_trace(plain, trace, tick_every)

        sharded = ShardedCSMService(
            [_csm_backend(num_machines, num_nodes, num_faults, behaviors, seed=5)]
        )
        sharded_tickets = _submit_trace(sharded, trace, tick_every)

        # Ticket-for-ticket identity.
        assert len(plain_tickets) == len(sharded_tickets)
        for p, s in zip(plain_tickets, sharded_tickets):
            assert p.sequence == s.sequence
            assert p.machine_index == s.machine_index
            assert p.state is s.state
            assert p.round_index == s.round_index
            assert p.state_history == s.state_history
            assert p.failure_reason is s.failure_reason
            if p.state is TicketState.EXECUTED:
                assert np.array_equal(p.result(), s.result())

        # Round-for-round identity of the merged history.
        plain_history = plain.backend.history
        sharded_history = sharded.history
        assert len(plain_history) == len(sharded_history)
        for leg, srv in zip(plain_history, sharded_history):
            assert leg.round_index == srv.round_index
            assert np.array_equal(leg.commands, srv.commands)
            assert leg.clients == srv.clients
            assert leg.consensus_views == srv.consensus_views
            assert np.array_equal(leg.result.outputs, srv.result.outputs)
            assert np.array_equal(leg.result.states, srv.result.states)
            assert leg.result.correct == srv.result.correct

        # Merged reporting identity.
        assert plain.backend.failed_rounds == sharded.failed_rounds
        assert plain.backend.measured_throughput() == sharded.measured_throughput()
        plain_delivered = plain.backend.delivered_outputs
        sharded_delivered = sharded.delivered_outputs
        assert plain_delivered.keys() == sharded_delivered.keys()
        for client_id in plain_delivered:
            for a, b in zip(plain_delivered[client_id], sharded_delivered[client_id]):
                assert np.array_equal(a, b)
        assert plain.backend.failed_deliveries == sharded.failed_deliveries


class TestShardMergeDeterminism:
    @relaxed
    @given(data=st.data())
    def test_sharded_outputs_match_unsharded_per_ticket(self, data):
        machine = bank_account_machine(FIELD, num_accounts=2)
        num_shards = data.draw(st.integers(2, 3), label="S")
        num_machines = data.draw(st.integers(num_shards, 6), label="K")
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        trace = [
            (
                f"client:{data.draw(st.integers(0, 3))}",
                data.draw(st.integers(0, num_machines - 1)),
                command_rng.integers(1, 1000, size=machine.command_dim),
            )
            for _ in range(data.draw(st.integers(1, 14), label="trace_len"))
        ]
        tick_every = data.draw(st.sampled_from([0, 1, 2, 5]), label="tick_every")
        tick_mode = data.draw(
            st.sampled_from(["all", "round_robin"]), label="tick_mode"
        )

        plain = CSMService(_replication_backend(num_machines, seed=0))
        plain_tickets = _submit_trace(plain, trace, tick_every)

        sizes = partition_machines(num_machines, num_shards)
        backends = [
            _replication_backend(size, seed=1 + s) for s, size in enumerate(sizes)
        ]
        sharded = ShardedCSMService(backends, tick_mode=tick_mode)
        sharded_tickets = _submit_trace(sharded, trace, tick_every)

        # Same trace -> same per-ticket resolution, whatever the sharding:
        # sequences align one-to-one, every ticket executes, and outputs
        # (cumulative per-machine balances) are identical.
        assert len(plain_tickets) == len(sharded_tickets) == len(trace)
        for p, s in zip(plain_tickets, sharded_tickets):
            assert p.sequence == s.sequence
            assert p.machine_index == s.machine_index
            assert p.state is TicketState.EXECUTED
            assert s.state is TicketState.EXECUTED
            assert np.array_equal(p.result(), s.result())

        # The merged ledger delivers the same *set* of outputs per client.
        # (The per-client order may legitimately differ: the global round
        # order interleaves shards, while per-machine FIFO order — the
        # consistency the tickets above pin — is preserved either way.)
        plain_delivered = plain.backend.delivered_outputs
        sharded_delivered = sharded.delivered_outputs
        for client_id, outputs in plain_delivered.items():
            if client_id.startswith("service:"):
                continue  # noop padding differs per sharding, by design
            assert client_id in sharded_delivered
            assert sorted(
                tuple(int(v) for v in a) for a in outputs
            ) == sorted(
                tuple(int(v) for v in b) for b in sharded_delivered[client_id]
            )
        assert sharded.failed_rounds == 0
        assert sharded.all_rounds_correct
