"""Property test: a disabled :class:`QosPolicy` is bit-identical to none.

The QoS subsystem threads through the hot path of the service — submit
(admission checks), scheduler (slot selection), resolution (latency
stamping) — so its *disabled* configuration must be provably inert: for any
ragged submission trace, a service built with ``qos=None``, one built with a
default-constructed ``QosPolicy()`` and one running an explicit
:class:`~repro.service.qos.FifoSelection` selector must produce bit-identical
round histories, ticket outcomes, delivery logs and backend rng streams.
The same holds for the sharded façade.  This is the contract that lets the
rest of the repository's bit-identity oracles survive the QoS layer.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.net.byzantine import RandomGarbageBehavior
from repro.machine.library import bank_account_machine
from repro.service import CSMService, FifoSelection, QosPolicy, ShardedCSMService

FIELD = PrimeField()

relaxed = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _protocol(num_nodes, num_faults, seed):
    machine = bank_account_machine(FIELD, num_accounts=2)
    for k in range(min(3, num_nodes), 0, -1):
        try:
            config = CSMConfig(
                FIELD,
                num_nodes=num_nodes,
                num_machines=k,
                degree=machine.degree,
                num_faults=num_faults,
            )
        except ConfigurationError:
            continue
        behaviors = {
            f"node-{num_nodes - 1 - i}": RandomGarbageBehavior()
            for i in range(num_faults)
        }
        return CSMProtocol(
            config, machine, behaviors, rng=np.random.default_rng(seed)
        ), machine
    return None, machine


def _drive_trace(service, trace, machine):
    """Replay one ragged submission trace; returns the tickets in order."""
    sessions = {}
    tickets = []
    for tick in trace:
        for client, machine_index, seed in tick:
            session = sessions.setdefault(client, service.connect(client))
            command_rng = np.random.default_rng(seed)
            tickets.append(
                session.submit(
                    machine_index,
                    command_rng.integers(1, 1000, size=machine.command_dim),
                )
            )
        service.drive()
    service.drain()
    return tickets


def _ticket_view(ticket):
    return (
        ticket.sequence,
        ticket.client_id,
        ticket.machine_index,
        ticket.command,
        ticket.state,
        ticket.round_index,
        None if ticket.output is None else tuple(int(v) for v in ticket.output),
        ticket.error,
        ticket.failure_reason,
        ticket.throttle_reason,
        ticket.submitted_tick,
        ticket.committed_tick,
        ticket.resolved_tick,
    )


def _history_view(records):
    return [
        (
            record.round_index,
            tuple(map(tuple, np.asarray(record.commands).tolist())),
            tuple(record.clients),
            record.consensus_views,
            tuple(map(tuple, np.asarray(record.result.outputs).tolist())),
            record.result.correct,
        )
        for record in records
    ]


def _rng_state(protocol):
    state = protocol.rng.bit_generator.state
    return (state["bit_generator"], tuple(state["state"].values()))


@st.composite
def traces(draw):
    """A ragged submission trace: per tick, a few (client, machine, seed)."""
    num_ticks = draw(st.integers(1, 4))
    trace = []
    for _ in range(num_ticks):
        num_submits = draw(st.integers(0, 4))
        tick = []
        for _ in range(num_submits):
            client = f"client:{draw(st.integers(0, 2))}"
            machine_index = draw(st.integers(0, 10**6))  # reduced mod K later
            seed = draw(st.integers(0, 2**31))
            tick.append((client, machine_index, seed))
        trace.append(tick)
    return trace


class TestDisabledQosBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_unsharded_disabled_policy_is_inert(self, data):
        num_nodes = data.draw(st.sampled_from([6, 9, 12]), label="N")
        num_faults = data.draw(st.integers(0, 1), label="b")
        seed = data.draw(st.integers(0, 2**31), label="seed")
        trace = data.draw(traces(), label="trace")

        views = []
        for variant in ("none", "default-policy", "explicit-fifo"):
            protocol, machine = _protocol(num_nodes, num_faults, seed)
            if protocol is None:
                return  # no admissible K for this draw
            k = protocol.num_machines
            bounded = [
                [(c, m % k, s) for c, m, s in tick] for tick in trace
            ]
            if variant == "none":
                service = CSMService(protocol)
            elif variant == "default-policy":
                policy = QosPolicy()
                assert not policy.enabled
                assert policy.build_selector() is None
                service = CSMService(protocol, qos=policy)
            else:
                service = CSMService(protocol)
                service.scheduler.selector = FifoSelection()
            tickets = _drive_trace(service, bounded, machine)
            views.append(
                (
                    [_ticket_view(t) for t in tickets],
                    _history_view(protocol.history),
                    {
                        client: [tuple(int(v) for v in out) for out in outputs]
                        for client, outputs in protocol.delivered_outputs.items()
                    },
                    len(protocol.network.delivery_log),
                    _rng_state(protocol),
                )
            )
        assert views[0] == views[1] == views[2]

    @relaxed
    @given(data=st.data())
    def test_sharded_disabled_policy_is_inert(self, data):
        seed = data.draw(st.integers(0, 2**31), label="seed")
        trace = data.draw(traces(), label="trace")

        views = []
        for qos in (None, QosPolicy()):
            backends = []
            machine = None
            for shard in range(2):
                protocol, machine = _protocol(6, 0, seed + shard)
                assert protocol is not None
                backends.append(protocol)
            service = ShardedCSMService(backends, qos=qos)
            k = service.num_machines
            bounded = [
                [(c, m % k, s) for c, m, s in tick] for tick in trace
            ]
            tickets = _drive_trace(service, bounded, machine)
            views.append(
                (
                    [_ticket_view(t) for t in tickets],
                    _history_view(service.history),
                    service.measured_throughput(),
                    [_rng_state(backend) for backend in backends],
                )
            )
        assert views[0] == views[1]
