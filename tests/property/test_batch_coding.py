"""Property tests for the batched encode/decode pipeline.

Every batch API must agree *element for element* with the scalar path it
amortises — across random fields, batch sizes, and erasure/error mixes sat
exactly on the decoding-radius boundary from :mod:`repro.coding.radius`.
The batched fast paths take a different route through the linear algebra
(cached Vandermonde products instead of per-round interpolation /
Berlekamp–Welch systems), so these tests pin the bit-identity contract the
execution engine and the benchmarks rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.erasure import ErasureDecoder, puncture
from repro.coding.radius import max_errors_correctable
from repro.coding.reed_solomon import ReedSolomonCode
from repro.exceptions import DecodingError
from repro.gf.prime_field import PrimeField
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme

#: Random fields: every modulus gives different canonical arithmetic, so any
#: accidental int64 overflow or missing reduction in the vectorised paths
#: shows up as a bit difference against the scalar path.
FIELDS = [PrimeField(p) for p in (101, 257, 65_537, 2_147_483_647)]

relaxed = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _code(field: PrimeField, length: int, dimension: int) -> ReedSolomonCode:
    return ReedSolomonCode(field, list(range(1, length + 1)), dimension)


class TestEncodeBatch:
    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        length=st.integers(4, 16),
        data=st.data(),
    )
    def test_encode_batch_matches_scalar_encode(self, field_index, length, data):
        field = FIELDS[field_index]
        dimension = data.draw(st.integers(1, length), label="dimension")
        batch = data.draw(st.integers(1, 7), label="batch")
        messages = np.array(
            [
                [
                    data.draw(st.integers(0, min(field.order, 10**6) - 1))
                    for _ in range(dimension)
                ]
                for _ in range(batch)
            ],
            dtype=np.int64,
        )
        code = _code(field, length, dimension)
        encoded = code.encode_batch(messages)
        assert encoded.shape == (batch, length)
        for row in range(batch):
            np.testing.assert_array_equal(encoded[row], code.encode(messages[row]))

    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        batch=st.integers(1, 5),
        num_machines=st.integers(1, 5),
        dim=st.integers(1, 4),
        data=st.data(),
    )
    def test_lcc_encode_batch_matches_scalar(
        self, field_index, batch, num_machines, dim, data
    ):
        field = FIELDS[field_index]
        scheme = LagrangeScheme(field, num_machines, num_machines + 3)
        encoder = CodedStateEncoder(scheme)
        values = np.array(
            [
                [
                    [
                        data.draw(st.integers(0, min(field.order, 10**6) - 1))
                        for _ in range(dim)
                    ]
                    for _ in range(num_machines)
                ]
                for _ in range(batch)
            ],
            dtype=np.int64,
        )
        coded = encoder.encode_batch(values)
        assert coded.shape == (batch, scheme.num_nodes, dim)
        for round_index in range(batch):
            np.testing.assert_array_equal(
                coded[round_index], encoder.encode(values[round_index])
            )


class TestDecodeBatchAtRadiusBoundary:
    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        length=st.integers(6, 14),
        data=st.data(),
    )
    def test_decode_batch_matches_berlekamp_welch(self, field_index, length, data):
        """Error counts drawn up to the exact radius ``floor((n - k) / 2)``."""
        field = FIELDS[field_index]
        dimension = data.draw(st.integers(1, length - 2), label="dimension")
        code = _code(field, length, dimension)
        radius = max_errors_correctable(length, dimension)
        assert radius == code.correction_radius
        batch = data.draw(st.integers(1, 6), label="batch")
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
        words = np.zeros((batch, length), dtype=np.int64)
        for row in range(batch):
            message = rng.integers(0, field.order, size=dimension)
            word = code.encode(message)
            # Include the boundary itself: exactly `radius` errors.
            num_errors = int(rng.integers(0, radius + 1))
            positions = rng.choice(length, size=num_errors, replace=False)
            for position in positions:
                offset = int(rng.integers(1, field.order))
                word[position] = field.add(int(word[position]), offset)
            words[row] = word
        scalar = BerlekampWelchDecoder(code)
        batched = code.decode_batch(words)
        for row in range(batch):
            expected = scalar.decode(words[row])
            assert batched[row].polynomial == expected.polynomial
            np.testing.assert_array_equal(batched[row].codeword, expected.codeword)
            assert batched[row].error_positions == expected.error_positions

    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        length=st.integers(6, 14),
        data=st.data(),
    )
    def test_erasure_decode_batch_matches_scalar(self, field_index, length, data):
        """Erasure/error mixes sat on ``2e <= survivors - K`` exactly."""
        field = FIELDS[field_index]
        dimension = data.draw(st.integers(1, length - 2), label="dimension")
        code = _code(field, length, dimension)
        decoder = ErasureDecoder(code)
        batch = data.draw(st.integers(1, 6), label="batch")
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
        rows = []
        for _ in range(batch):
            message = rng.integers(0, field.order, size=dimension)
            word = code.encode(message)
            max_erasures = length - dimension
            num_erasures = int(rng.integers(0, max_erasures + 1))
            erased = rng.choice(length, size=num_erasures, replace=False)
            survivors = length - num_erasures
            # The exact budget: 2e <= survivors - K.
            num_errors = (survivors - dimension) // 2
            error_candidates = [i for i in range(length) if i not in set(erased)]
            error_positions = rng.choice(
                error_candidates, size=num_errors, replace=False
            )
            for position in error_positions:
                offset = int(rng.integers(1, field.order))
                word[position] = field.add(int(word[position]), offset)
            rows.append(puncture(word, erased))
        batched = decoder.decode_batch(rows)
        for row_values, result in zip(rows, batched):
            expected = decoder.decode_with_erasures(row_values)
            assert result.polynomial == expected.polynomial
            np.testing.assert_array_equal(result.codeword, expected.codeword)
            assert result.error_positions == expected.error_positions

    def test_erasure_failure_reports_budget(self):
        """One error past the radius: the DecodingError names the budget."""
        field = PrimeField(257)
        code = _code(field, 10, 4)
        decoder = ErasureDecoder(code)
        word = code.encode([1, 2, 3, 4])
        # Erase down to 6 survivors (budget e <= 1), then corrupt 2 survivors.
        received = puncture(word, [0, 1, 2, 3])
        received[4] = field.add(int(received[4]), 7)
        received[5] = field.add(int(received[5]), 9)
        with pytest.raises(DecodingError) as excinfo:
            decoder.decode_with_erasures(received)
        message = str(excinfo.value)
        assert "6 survivors" in message
        assert "K=4" in message
        assert "2e <= survivors - K = 2" in message


class TestDecodeFastAgainstScalarRounds:
    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        num_machines=st.integers(1, 4),
        extra=st.integers(2, 8),
        result_dim=st.integers(1, 3),
        data=st.data(),
    )
    def test_decode_fast_full_and_partial(
        self, field_index, num_machines, extra, result_dim, data
    ):
        field = FIELDS[field_index]
        num_nodes = num_machines + extra
        scheme = LagrangeScheme(field, num_machines, num_nodes)
        decoder = CodedResultDecoder(scheme, transition_degree=1)
        dimension = decoder.code.dimension
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
        # Random codeword matrix: each column is a degree < dimension poly.
        coeffs = rng.integers(0, field.order, size=(dimension, result_dim))
        results = field.matmul(decoder.code.encoding_matrix, coeffs)
        # Corrupt whole node rows up to the full-presence radius.
        radius = decoder.code.correction_radius
        num_bad = int(rng.integers(0, radius + 1))
        bad = rng.choice(num_nodes, size=num_bad, replace=False)
        corrupted = results.copy()
        for node in bad:
            corrupted[node] = rng.integers(0, field.order, size=result_dim)
        scalar = decoder.decode(corrupted)
        fast = decoder.decode_fast(corrupted, set())
        np.testing.assert_array_equal(scalar.outputs, fast.outputs)
        assert scalar.error_nodes == fast.error_nodes
        assert scalar.polynomials == fast.polynomials

        # Partially synchronous: silence some healthy rows, keep the bound
        # 2 * errors <= present - dimension satisfied.
        max_silent = (num_nodes - dimension) - 2 * num_bad
        if max_silent > 0:
            healthy = [i for i in range(num_nodes) if i not in set(bad)]
            num_silent = int(rng.integers(1, max_silent + 1))
            silent = set(
                int(i) for i in rng.choice(healthy, size=min(num_silent, len(healthy)), replace=False)
            )
            reported = [
                None if i in silent else corrupted[i] for i in range(num_nodes)
            ]
            scalar_partial = decoder.decode_partial(reported)
            fast_partial = decoder.decode_fast(reported, set())
            np.testing.assert_array_equal(
                scalar_partial.outputs, fast_partial.outputs
            )
            assert scalar_partial.error_nodes == fast_partial.error_nodes

    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        num_machines=st.integers(1, 4),
        batch=st.integers(1, 5),
        data=st.data(),
    )
    def test_decode_batch_shares_suspects_across_rounds(
        self, field_index, num_machines, batch, data
    ):
        field = FIELDS[field_index]
        num_nodes = num_machines + 4
        scheme = LagrangeScheme(field, num_machines, num_nodes)
        decoder = CodedResultDecoder(scheme, transition_degree=1)
        dimension = decoder.code.dimension
        radius = decoder.code.correction_radius
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
        num_bad = min(int(rng.integers(0, radius + 1)), radius)
        bad = set(int(i) for i in rng.choice(num_nodes, size=num_bad, replace=False))
        rounds = []
        for _ in range(batch):
            coeffs = rng.integers(0, field.order, size=(dimension, 2))
            results = field.matmul(decoder.code.encoding_matrix, coeffs)
            for node in bad:
                results[node] = rng.integers(0, field.order, size=2)
            rounds.append(results)
        suspects: set[int] = set()
        fast_rounds = decoder.decode_batch(
            np.stack(rounds) if rounds else rounds, suspects
        )
        for matrix, fast in zip(rounds, fast_rounds):
            scalar = decoder.decode(matrix)
            np.testing.assert_array_equal(scalar.outputs, fast.outputs)
            assert scalar.error_nodes == fast.error_nodes
        # Every node caught erring must have been learnt as a suspect.
        observed = set()
        for fast in fast_rounds:
            observed.update(fast.error_nodes)
        assert observed <= suspects


class TestStackedDecodeBatch:
    """The stacked verification path must be a bit-exact drop-in for the
    sequential ``decode_fast`` loop — same outputs, polynomials, error
    nodes, learnt suspects *and charged operation counts* — across fault
    onset, persistent faults and mixed partial-presence rounds."""

    @relaxed
    @given(
        field_index=st.integers(0, len(FIELDS) - 1),
        num_machines=st.integers(1, 4),
        batch=st.integers(1, 8),
        result_dim=st.integers(1, 3),
        data=st.data(),
    )
    def test_matches_decode_fast_loop_bit_identically(
        self, field_index, num_machines, batch, result_dim, data
    ):
        from repro.gf.field import OperationCounter

        field = FIELDS[field_index]
        num_nodes = num_machines + data.draw(st.integers(3, 8), label="extra")
        scheme = LagrangeScheme(field, num_machines, num_nodes)
        decoder = CodedResultDecoder(scheme, transition_degree=1)
        dimension = decoder.code.dimension
        radius = decoder.code.correction_radius
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31), label="seed"))
        num_bad = int(rng.integers(0, radius + 1))
        bad = [int(i) for i in rng.choice(num_nodes, size=num_bad, replace=False)]
        onset = data.draw(st.integers(0, batch), label="onset")
        silence_some = data.draw(st.booleans(), label="silence") and num_bad == 0
        rounds = []
        for b in range(batch):
            coeffs = rng.integers(0, field.order, size=(dimension, result_dim))
            results = field.matmul(decoder.code.encoding_matrix, coeffs)
            if b >= onset:
                for node in bad:
                    results[node] = rng.integers(0, field.order, size=result_dim)
            if silence_some and b % 2 == 1 and num_nodes - dimension >= 1:
                # Mix partial-presence rounds into the run: these must be
                # delegated to decode_fast and split the stacked runs.
                rounds.append(
                    [None if i == num_nodes - 1 else results[i] for i in range(num_nodes)]
                )
            else:
                rounds.append(results)

        loop_suspects: set[int] = set()
        loop_counter = OperationCounter()
        field.attach_counter(loop_counter)
        loop = [decoder.decode_fast(entry, loop_suspects) for entry in rounds]
        field.attach_counter(None)

        batch_suspects: set[int] = set()
        batch_counter = OperationCounter()
        field.attach_counter(batch_counter)
        stacked = decoder.decode_batch(rounds, batch_suspects)
        field.attach_counter(None)

        assert loop_suspects == batch_suspects
        assert loop_counter.snapshot() == batch_counter.snapshot()
        for a, b in zip(loop, stacked):
            np.testing.assert_array_equal(a.outputs, b.outputs)
            assert a.error_nodes == b.error_nodes
            assert len(a.polynomials) == len(b.polynomials)
            for p, q in zip(a.polynomials, b.polynomials):
                np.testing.assert_array_equal(
                    p.coefficient_array(), q.coefficient_array()
                )

    def test_stacked_run_splits_on_fault_onset(self):
        """A mid-batch onset must fall back for the onset round only, then
        re-group: later rounds keep decoding through the fast path with the
        offender excluded from the pivot."""
        field = FIELDS[-1]
        scheme = LagrangeScheme(field, 3, 12)
        decoder = CodedResultDecoder(scheme, transition_degree=1)
        dimension = decoder.code.dimension
        rng = np.random.default_rng(11)
        rounds = []
        for b in range(6):
            coeffs = rng.integers(0, field.order, size=(dimension, 2))
            results = field.matmul(decoder.code.encoding_matrix, coeffs)
            if b >= 3:
                results[0] = rng.integers(0, field.order, size=2)  # pivot member
            rounds.append(results)
        suspects: set[int] = set()
        stacked = decoder.decode_batch(rounds, suspects)
        reference = [decoder.decode(matrix) for matrix in rounds]
        for a, b in zip(reference, stacked):
            np.testing.assert_array_equal(a.outputs, b.outputs)
            assert a.error_nodes == b.error_nodes
        assert 0 in suspects
