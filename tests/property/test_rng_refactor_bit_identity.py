"""Regression guard for the ``repro.rng`` helper refactor.

The csm-lint PR replaced every silent ``rng or np.random.default_rng(0)``
fallback (consensus, network, intermix, replication, execution) with the
single allowlisted constructor :func:`repro.rng.default_stream` and the
derived-stream helper :func:`repro.rng.derived_stream`.  That refactor must
be a pure renaming: the same seeds must produce byte-for-byte the same
protocol run as before the change.

The ``GOLDEN_DIGESTS`` below were captured from the tree *before* the
refactor (commit 206fd96) by hashing every observable of a fixed-seed
``CSMProtocol`` run: the round history (commands, clients, views, outputs,
states, per-node operation counts), the delivered/failed output maps, the
network counters and clock, the field-wise delivery log, and the final
consensus rng state.  If any rng stream moved, these digests move.
"""

import hashlib

import numpy as np

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior

# sha256 digests of the scenario observables, captured pre-refactor.
GOLDEN_DIGESTS = {
    "sync": "0549b157c22c6f4d6ee1d7057e2b58597cbc477c1a8211111558b0d0c18afd6a",
    "psync": "01ab5b9dbd3f2b7c75f331d7169a95cbe0d7fd52378459a2065fbd86230f268f",
}

NUM_ROUNDS = 3
COMMAND_SEED = 1234
PROTOCOL_SEED = 5


def _valid_config(field, num_nodes, num_faults, degree, partially_synchronous):
    for k in range(min(4, num_nodes), 0, -1):
        try:
            return CSMConfig(
                field,
                num_nodes=num_nodes,
                num_machines=k,
                degree=degree,
                num_faults=num_faults,
                partially_synchronous=partially_synchronous,
            )
        except ConfigurationError:
            continue
    raise AssertionError("no valid config for the scenario parameters")


def _build_protocol(partially_synchronous):
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    num_nodes = 8 if partially_synchronous else 6
    config = _valid_config(
        field, num_nodes, 1, machine.degree, partially_synchronous
    )
    behaviors = {
        "node-1": RandomGarbageBehavior() if partially_synchronous else SilentBehavior()
    }
    protocol = CSMProtocol(
        config,
        machine,
        behaviors,
        rng=np.random.default_rng(PROTOCOL_SEED),
    )
    command_rng = np.random.default_rng(COMMAND_SEED)
    batches = [
        command_rng.integers(
            1, 1000, size=(config.num_machines, machine.command_dim)
        )
        for _ in range(NUM_ROUNDS)
    ]
    return protocol, batches


def compute_scenario_digest(partially_synchronous):
    """Run the fixed-seed scenario and hash every bit-identity observable."""
    protocol, batches = _build_protocol(partially_synchronous)
    records = protocol.run_rounds_batched(batches)
    h = hashlib.sha256()

    def feed(*parts):
        for part in parts:
            h.update(repr(part).encode())
            h.update(b"\x00")

    for record in records:
        feed(
            record.round_index,
            record.commands.tolist(),
            record.clients,
            record.consensus_views,
            record.result.correct,
            np.asarray(record.result.outputs).tolist(),
            np.asarray(record.result.states).tolist(),
            sorted(record.result.ops_per_node.items()),
        )
    for client in sorted(protocol.delivered_outputs):
        feed(client, [np.asarray(o).tolist() for o in protocol.delivered_outputs[client]])
    feed(sorted(protocol.failed_deliveries.items()))
    feed(
        protocol.network.messages_sent,
        protocol.network.rejected_signatures,
        protocol.network.now,
    )
    for entry in protocol.network.delivery_log:
        feed(
            entry.message.sender,
            entry.message.recipient,
            entry.message.kind.value,
            entry.message.round_index,
            entry.send_time,
            entry.delivery_time,
            entry.delivered,
        )
    feed(protocol.rng.bit_generator.state["state"])
    return h.hexdigest()


class TestRngRefactorBitIdentity:
    def test_sync_scenario_matches_pre_refactor_digest(self):
        assert compute_scenario_digest(False) == GOLDEN_DIGESTS["sync"]

    def test_psync_scenario_matches_pre_refactor_digest(self):
        assert compute_scenario_digest(True) == GOLDEN_DIGESTS["psync"]

    def test_two_runs_same_seed_identical(self):
        # Self-consistency: a fresh protocol with the same seeds reproduces
        # the identical digest (guards ambient nondeterminism, not just the
        # refactor delta).
        assert compute_scenario_digest(False) == compute_scenario_digest(False)
