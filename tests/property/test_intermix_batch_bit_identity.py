"""Property tests: batched INTERMIX is bit-identical to the scalar oracle.

:meth:`IntermixProtocol.run_batch` amortises a batch of verified
matrix–vector products into one stacked matrix multiplication shared by the
worker and every auditor; the scalar :meth:`IntermixProtocol.run` loop is
the reference oracle.  Across random shapes, seeds, cheating-worker
strategies and dishonest-auditor sets, the two paths must agree on
*everything* observable: verdicts, accusation transcripts, per-role
operation counts, and the position of the shared rng stream.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gf.prime_field import PrimeField
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import WorkerStrategy
from repro.rng import default_stream

FIELDS = [PrimeField(p) for p in (101, 65_537, 2_147_483_647)]

STRATEGIES = (
    WorkerStrategy.HONEST,
    WorkerStrategy.CORRUPT_RESULT,
    WorkerStrategy.CONSISTENT_LIAR,
    WorkerStrategy.SILENT,
)

relaxed = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _transcripts_identical(a, b):
    return len(a) == len(b) and all(
        x.auditor_id == y.auditor_id
        and x.accepted == y.accepted
        and x.row_index == y.row_index
        and x.path == y.path
        and x.failure_kind == y.failure_kind
        and x.parent_claim == y.parent_claim
        and x.half_claims == y.half_claims
        and x.leaf_range == y.leaf_range
        and x.queries_issued == y.queries_issued
        for x, y in zip(a, b)
    )


def assert_outcomes_identical(a, b):
    assert a.accepted == b.accepted
    assert a.confirmed_fraud == b.confirmed_fraud
    if a.result is None or b.result is None:
        assert a.result is None and b.result is None
    else:
        assert np.array_equal(a.result, b.result)
    assert a.committee == b.committee
    assert _transcripts_identical(a.transcripts, b.transcripts)
    assert [
        (v.commoner_id, v.transcript_author, v.fraud_confirmed, v.operations)
        for v in a.verdicts
    ] == [
        (v.commoner_id, v.transcript_author, v.fraud_confirmed, v.operations)
        for v in b.verdicts
    ]
    assert a.worker_operations == b.worker_operations
    assert a.auditor_operations == b.auditor_operations
    assert a.commoner_operations == b.commoner_operations


@relaxed
@given(
    field_index=st.integers(min_value=0, max_value=len(FIELDS) - 1),
    length=st.integers(min_value=2, max_value=33),
    columns=st.integers(min_value=1, max_value=5),
    num_nodes=st.integers(min_value=8, max_value=18),
    strategy=st.sampled_from(STRATEGIES),
    dishonest_count=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_run_batch_bit_identical_to_scalar_run(
    field_index, length, columns, num_nodes, strategy, dishonest_count, seed
):
    field = FIELDS[field_index]
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    data = default_stream(seed)
    matrix = data.integers(0, field.order, size=(num_nodes, length))
    vectors = data.integers(0, field.order, size=(length, columns))
    # Marked nodes audit dishonestly *if* elected to the committee; the
    # election itself is part of the compared rng stream.
    dishonest = set(node_ids[:dishonest_count])
    kwargs = dict(
        fault_fraction=0.25,
        worker_strategies={n: strategy for n in node_ids},
        dishonest_auditors=dishonest,
    )

    batch_protocol = IntermixProtocol(
        field, node_ids, rng=default_stream(seed), **kwargs
    )
    batch_outcomes = batch_protocol.run_batch(matrix, vectors)

    scalar_protocol = IntermixProtocol(
        field, node_ids, rng=default_stream(seed), **kwargs
    )
    committee = scalar_protocol.election.elect()
    scalar_outcomes = [
        scalar_protocol.run(matrix, vectors[:, c], committee=committee)
        for c in range(columns)
    ]

    assert len(batch_outcomes) == len(scalar_outcomes) == columns
    for batched, scalar in zip(batch_outcomes, scalar_outcomes):
        assert_outcomes_identical(batched, scalar)
    # Same rng position afterwards: the batch drew exactly the draws the
    # scalar loop did (election permutation + one corruption index per
    # cheating, non-silent worker round).
    assert (
        batch_protocol.rng.bit_generator.state
        == scalar_protocol.rng.bit_generator.state
    )


@relaxed
@given(
    length=st.integers(min_value=2, max_value=17),
    columns=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_run_batch_soundness(length, columns, seed):
    """Batched verification still catches every cheating worker."""
    field = FIELDS[-1]
    node_ids = [f"node-{i}" for i in range(12)]
    data = default_stream(seed)
    matrix = data.integers(0, field.order, size=(12, length))
    vectors = data.integers(0, field.order, size=(length, columns))
    for strategy in STRATEGIES[1:]:
        protocol = IntermixProtocol(
            field,
            node_ids,
            fault_fraction=0.25,
            rng=default_stream(seed),
            worker_strategies={n: strategy for n in node_ids},
        )
        for outcome in protocol.run_batch(matrix, vectors):
            assert not outcome.accepted
            assert outcome.fraud_detected
