"""Property test: service-scheduled lockstep traffic ≡ ``run_rounds_batched``.

The client-session service takes yet another route into the protocol —
commands land in the service's ingress pool as tickets, the round scheduler
dequeues them into dense batches, and the backend is driven with explicit
per-round client identities.  When the traffic happens to be exactly one
command per machine per round (the old lockstep shape), the recorded
:class:`~repro.rounds.ProtocolRound` history must be *bit-identical* to the
legacy ``run_rounds_batched`` entry point, across network models, machines
and admissible Byzantine fault patterns — and every ticket must come back
``EXECUTED`` with exactly the output the legacy path delivered.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)
from repro.service import CSMService, TicketState

FIELD = PrimeField()

relaxed = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

BEHAVIOR_FACTORIES = (
    RandomGarbageBehavior,
    SilentBehavior,
    lambda: CorruptResultBehavior(offset=3),
)


def _valid_config(num_nodes, num_faults, degree, partially_synchronous):
    for k in range(min(4, num_nodes), 0, -1):
        try:
            return CSMConfig(
                FIELD,
                num_nodes=num_nodes,
                num_machines=k,
                degree=degree,
                num_faults=num_faults,
                partially_synchronous=partially_synchronous,
            )
        except ConfigurationError:
            continue
    return None


class TestServiceBitIdentity:
    @relaxed
    @given(data=st.data())
    def test_full_rounds_match_run_rounds_batched(self, data):
        partially_synchronous = data.draw(st.booleans(), label="psync")
        num_nodes = data.draw(st.sampled_from([6, 9, 12]), label="N")
        quadratic = data.draw(st.booleans(), label="quadratic")
        machine = (
            quadratic_market_machine(FIELD)
            if quadratic
            else bank_account_machine(FIELD, num_accounts=2)
        )
        fault_cap = (num_nodes - 1) // 3 if partially_synchronous else num_nodes // 4
        num_faults = data.draw(st.integers(0, min(2, fault_cap)), label="b")
        config = _valid_config(
            num_nodes, num_faults, machine.degree, partially_synchronous
        )
        if config is None:
            return  # bounds leave no admissible K for this draw
        fault_indices = data.draw(
            st.lists(
                st.integers(0, num_nodes - 1),
                min_size=num_faults,
                max_size=num_faults,
                unique=True,
            ),
            label="fault_indices",
        )
        behaviors = {
            f"node-{index}": BEHAVIOR_FACTORIES[
                data.draw(st.integers(0, len(BEHAVIOR_FACTORIES) - 1))
            ]()
            for index in fault_indices
        }
        num_rounds = data.draw(st.integers(1, 4), label="rounds")
        command_rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        batches = [
            command_rng.integers(
                1, 1000, size=(config.num_machines, machine.command_dim)
            )
            for _ in range(num_rounds)
        ]

        legacy = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(5)
        )
        legacy_records = legacy.run_rounds_batched(batches)

        served = CSMProtocol(
            config, machine, dict(behaviors), rng=np.random.default_rng(5)
        )
        service = CSMService(
            served,
            max_batch_rounds=num_rounds,
            min_fill=config.num_machines,
        )
        # Lockstep traffic through the session API: machine k's commands come
        # from session "client:k", matching the legacy labels exactly.
        sessions = [
            service.connect(f"client:{k}") for k in range(config.num_machines)
        ]
        tickets = []
        for batch in batches:
            tickets.append(
                [sessions[k].submit(k, batch[k]) for k in range(config.num_machines)]
            )
        service_records = service.drain()

        assert len(legacy_records) == len(service_records) == num_rounds
        for leg, srv in zip(legacy_records, service_records):
            assert leg.round_index == srv.round_index
            assert np.array_equal(leg.commands, srv.commands)
            assert leg.clients == srv.clients
            assert leg.consensus_views == srv.consensus_views
            assert np.array_equal(leg.result.outputs, srv.result.outputs)
            assert np.array_equal(leg.result.states, srv.result.states)
            assert leg.result.correct == srv.result.correct
            assert (
                leg.result.diagnostics["error_nodes"]
                == srv.result.diagnostics["error_nodes"]
            )
        assert legacy.failed_rounds == served.failed_rounds

        # Ticket-level delivery agrees with the legacy delivered_outputs.
        for round_tickets, record in zip(tickets, service_records):
            for k, ticket in enumerate(round_tickets):
                if record.correct:
                    assert ticket.state is TicketState.EXECUTED
                    assert np.array_equal(ticket.result(), record.result.outputs[k])
                else:
                    assert ticket.state is TicketState.FAILED
                    assert ticket.output is None
