"""Unit tests for dense univariate polynomials."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.gf.polynomial import Poly


class TestConstruction:
    def test_trailing_zero_coefficients_trimmed(self, small_field):
        poly = Poly(small_field, [1, 2, 0, 0])
        assert poly.degree == 1
        assert poly.coeffs == [1, 2]

    def test_zero_polynomial_degree_minus_one(self, small_field):
        assert Poly.zero(small_field).degree == -1
        assert Poly(small_field, [0, 0]).is_zero

    def test_monomial(self, small_field):
        poly = Poly.monomial(small_field, 3, coefficient=5)
        assert poly.coefficient(3) == 5
        assert poly.degree == 3

    def test_monomial_negative_degree_raises(self, small_field):
        with pytest.raises(FieldError):
            Poly.monomial(small_field, -1)

    def test_from_roots(self, small_field):
        poly = Poly.from_roots(small_field, [2, 5])
        assert poly.evaluate(2) == 0
        assert poly.evaluate(5) == 0
        assert poly.degree == 2
        assert poly.leading_coefficient() == 1

    def test_random_has_exact_degree(self, small_field, rng):
        for degree in (0, 1, 5):
            assert Poly.random(small_field, degree, rng).degree == degree

    def test_coefficient_array_padding(self, small_field):
        poly = Poly(small_field, [1, 2])
        assert list(poly.coefficient_array(4)) == [1, 2, 0, 0]
        with pytest.raises(FieldError):
            poly.coefficient_array(1)


class TestArithmetic:
    def test_add_sub_roundtrip(self, small_field, rng):
        a = Poly.random(small_field, 4, rng)
        b = Poly.random(small_field, 6, rng)
        assert (a + b) - b == a

    def test_mul_degree_adds(self, small_field, rng):
        a = Poly.random(small_field, 3, rng)
        b = Poly.random(small_field, 4, rng)
        assert (a * b).degree == 7

    def test_mul_by_zero(self, small_field, rng):
        a = Poly.random(small_field, 3, rng)
        assert (a * Poly.zero(small_field)).is_zero

    def test_scale(self, small_field):
        poly = Poly(small_field, [1, 2, 3])
        assert Poly(small_field, [2, 4, 6]) == poly.scale(2)
        assert poly.scale(0).is_zero

    def test_shift(self, small_field):
        poly = Poly(small_field, [1, 2])
        assert poly.shift(2).coeffs == [0, 0, 1, 2]

    def test_divmod_reconstructs(self, small_field, rng):
        numerator = Poly.random(small_field, 9, rng)
        divisor = Poly.random(small_field, 4, rng)
        quotient, remainder = numerator.divmod(divisor)
        assert quotient * divisor + remainder == numerator
        assert remainder.degree < divisor.degree

    def test_division_by_zero_raises(self, small_field):
        with pytest.raises(FieldError):
            Poly(small_field, [1]).divmod(Poly.zero(small_field))

    def test_mod_of_multiple_is_zero(self, small_field, rng):
        a = Poly.random(small_field, 3, rng)
        b = Poly.random(small_field, 2, rng)
        assert ((a * b) % a).is_zero

    def test_monic(self, small_field):
        poly = Poly(small_field, [4, 0, 2])
        assert poly.monic().leading_coefficient() == 1

    def test_derivative(self, small_field):
        poly = Poly(small_field, [7, 3, 5, 2])  # 7 + 3z + 5z^2 + 2z^3
        assert poly.derivative().coeffs == [3, 10, 6]

    def test_cross_field_operations_rejected(self, small_field, big_field):
        with pytest.raises(FieldError):
            Poly(small_field, [1]) + Poly(big_field, [1])


class TestEvaluation:
    def test_evaluate_matches_manual_horner(self, small_field):
        poly = Poly(small_field, [1, 2, 3])  # 1 + 2z + 3z^2
        assert poly.evaluate(5) == (1 + 10 + 75) % 97

    def test_evaluate_many_matches_scalar(self, small_field, rng):
        poly = Poly.random(small_field, 6, rng)
        points = list(range(10))
        vectorised = poly.evaluate_many(points)
        assert list(vectorised) == [poly.evaluate(p) for p in points]

    def test_call_dispatches_on_type(self, small_field):
        poly = Poly(small_field, [1, 1])
        assert poly(3) == 4
        assert list(poly([1, 2, 3])) == [2, 3, 4]

    def test_compose(self, small_field):
        outer = Poly(small_field, [0, 0, 1])       # z^2
        inner = Poly(small_field, [1, 1])          # z + 1
        composed = outer.compose(inner)            # (z+1)^2
        assert composed.coeffs == [1, 2, 1]

    def test_zero_polynomial_evaluates_to_zero(self, small_field):
        assert Poly.zero(small_field).evaluate(12) == 0


class TestEuclid:
    def test_gcd_of_multiples(self, small_field, rng):
        g = Poly.random(small_field, 2, rng).monic()
        a = g * Poly.random(small_field, 3, rng)
        b = g * Poly.random(small_field, 4, rng)
        gcd = a.gcd(b)
        assert (a % gcd).is_zero and (b % gcd).is_zero
        assert gcd.degree >= g.degree

    def test_partial_extended_gcd_invariant(self, small_field, rng):
        a = Poly.random(small_field, 8, rng)
        b = Poly.random(small_field, 6, rng)
        r, s, t = Poly.partial_extended_gcd(a, b, 4)
        assert r == s * a + t * b
        assert r.degree < 4
