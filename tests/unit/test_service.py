"""Unit tests for the client-session service: tickets, scheduler, facades.

Covers the redesigned client API end to end at small scale: ragged traffic
(idle machines padded with noop commands, bursty multi-command clients),
adaptive batching (``min_fill`` deferral, empty scheduler ticks), the
``PENDING -> COMMITTED -> EXECUTED | FAILED`` ticket lifecycle including
``FAILED`` on unverified rounds, and the replication facade behind the same
:class:`~repro.rounds.RoundProtocol` interface as the coded protocol.
"""

import numpy as np
import pytest

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError, ServiceError
from repro.machine.library import affine_kv_machine, bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior
from repro.replication import FullReplicationSMR, PartialReplicationSMR, ReplicationProtocol
from repro.rounds import RoundProtocol
from repro.service import (
    NOOP_CLIENT,
    CSMService,
    CommandTicket,
    FailureReason,
    QosPolicy,
    RoundScheduler,
    ThrottleReason,
    TicketState,
)


def _csm_protocol(field, num_machines=3, num_nodes=12, seed=7, behaviors=None):
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=1,
    )
    return CSMProtocol(
        config, machine, behaviors, rng=np.random.default_rng(seed)
    )


def _replication_backend(field, num_machines=3, num_nodes=4, behaviors=None, seed=0):
    machine = bank_account_machine(field, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    engine = FullReplicationSMR(
        machine, num_machines, node_ids, behaviors, np.random.default_rng(seed)
    )
    return ReplicationProtocol(engine)


class TestTicketLifecycle:
    def test_executed_path_records_every_state(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        session = service.connect("alice")
        ticket = session.submit(1, [10, 20])
        assert ticket.state is TicketState.PENDING
        assert not ticket.done
        with pytest.raises(ServiceError):
            ticket.result()  # no output before execution
        records = service.drive(flush=True)
        assert len(records) == 1
        assert ticket.state is TicketState.EXECUTED
        assert ticket.round_index == 0
        assert ticket.state_history == [
            TicketState.PENDING,
            TicketState.COMMITTED,
            TicketState.EXECUTED,
        ]
        np.testing.assert_array_equal(ticket.result(), [10, 20])
        assert session.outputs() and session.pending() == []

    def test_failed_on_unverified_round(self, big_field):
        # 3 of 4 replicas report garbage: no output can gather b+1 honest
        # matches, the round fails verification, and the ticket must FAIL
        # without ever exposing an output.
        node_ids = [f"node-{i}" for i in range(4)]
        behaviors = {n: RandomGarbageBehavior() for n in node_ids[:3]}
        backend = _replication_backend(big_field, behaviors=behaviors)
        service = CSMService(backend)
        ticket = service.connect("carol").submit(0, [5, 5])
        service.drain()
        assert ticket.state is TicketState.FAILED
        assert ticket.state_history == [
            TicketState.PENDING,
            TicketState.COMMITTED,
            TicketState.FAILED,
        ]
        assert ticket.output is None
        assert "failed verification" in ticket.error
        assert ticket.failure_reason is FailureReason.VERIFICATION_FAILED
        with pytest.raises(ServiceError):
            ticket.result()
        assert backend.failed_rounds == 1
        assert "carol" in backend.failed_deliveries

    def test_illegal_transitions_raise(self):
        ticket = CommandTicket(
            client_id="a", machine_index=0, command=(1,), sequence=0
        )
        with pytest.raises(ServiceError):
            ticket._execute(np.array([1]))  # cannot execute before commit
        ticket._commit(0)
        ticket._execute(np.array([1]))
        with pytest.raises(ServiceError):
            # terminal states are final
            ticket._fail("too late", FailureReason.BACKEND_ERROR)
        assert ticket.failure_reason is None  # the illegal edge set nothing

    def test_scheduler_abort_fails_pending_tickets(self, big_field):
        backend = _replication_backend(big_field)

        class ExplodingBackend(RoundProtocol):
            machine = backend.machine

            def __init__(self):
                self._init_round_state()

            @property
            def num_machines(self):
                return backend.num_machines

            def run_rounds_batched(self, command_batches, client_rounds=None):
                raise RuntimeError("backend down")

        service = CSMService(ExplodingBackend())
        ticket = service.connect("dave").submit(0, [1, 1])
        with pytest.raises(RuntimeError):
            service.drive(flush=True)
        assert ticket.state is TicketState.FAILED
        assert "backend down" in ticket.error
        assert ticket.failure_reason is FailureReason.BACKEND_ERROR

    def test_consensus_mismatch_and_abort_failure_reasons(self, big_field):
        from repro.exceptions import ConsensusError

        inner = _replication_backend(big_field)

        class LyingBackend(RoundProtocol):
            """Executes honestly but reports tampered decided commands."""

            machine = inner.machine

            def __init__(self):
                self._init_round_state()

            @property
            def num_machines(self):
                return inner.num_machines

            def run_rounds_batched(self, command_batches, client_rounds=None):
                tampered = [np.asarray(b).copy() for b in command_batches]
                for batch in tampered:
                    batch[0] += 1  # machine 0's decided command is a lie
                return inner.run_rounds_batched(tampered, client_rounds)

        service = CSMService(LyingBackend())
        victim = service.connect("alice").submit(0, [1, 1])
        bystander = service.connect("bob").submit(1, [2, 2])
        with pytest.raises(ConsensusError, match="different command"):
            service.drive(flush=True)
        assert victim.state is TicketState.FAILED
        assert victim.failure_reason is FailureReason.CONSENSUS_MISMATCH
        # The sibling slot never got resolved before the abort: it is failed
        # with the abort reason instead of being stranded mid-lifecycle.
        assert bystander.state is TicketState.FAILED
        assert bystander.failure_reason is FailureReason.RESOLUTION_ABORTED


class TestRaggedTraffic:
    def test_idle_machines_are_noop_padded(self, big_field):
        protocol = _csm_protocol(big_field)
        service = CSMService(protocol)
        service.connect("alice").submit(0, [7, 7])
        records = service.drive(flush=True)
        (record,) = records
        assert record.clients == ["alice", NOOP_CLIENT, NOOP_CLIENT]
        noop = protocol.machine.noop_command()
        np.testing.assert_array_equal(record.commands[1], noop)
        np.testing.assert_array_equal(record.commands[2], noop)
        # The noop is an identity transition: idle ledgers did not move.
        np.testing.assert_array_equal(record.result.states[1], [0, 0])
        np.testing.assert_array_equal(record.result.states[2], [0, 0])
        np.testing.assert_array_equal(record.result.states[0], [7, 7])

    def test_multi_command_client_spans_rounds(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        session = service.connect("burst")
        tickets = [session.submit(2, [i, i]) for i in range(1, 4)]
        records = service.drain()
        # One machine queue of depth 3 becomes 3 FIFO rounds.
        assert len(records) == 3
        assert [t.round_index for t in tickets] == [0, 1, 2]
        np.testing.assert_array_equal(tickets[-1].result(), [6, 6])  # 1+2+3
        assert [len(o) for o in session.outputs()] == [2, 2, 2]

    def test_empty_tick_runs_nothing(self, big_field):
        protocol = _csm_protocol(big_field)
        service = CSMService(protocol)
        assert service.drive() == []
        assert service.drive(flush=True) == []
        assert service.drain() == []
        assert protocol.history == []

    def test_min_fill_defers_until_enough_traffic(self, big_field):
        service = CSMService(_csm_protocol(big_field), min_fill=2)
        service.connect("alice").submit(0, [1, 1])
        assert service.drive() == []  # 1 of 3 machines filled: below min_fill
        assert service.pending_commands() == 1
        service.connect("bob").submit(2, [2, 2])
        records = service.drive()
        assert len(records) == 1 and records[0].clients[1] == NOOP_CLIENT
        # flush overrides min_fill for the stragglers.
        service.connect("alice").submit(0, [3, 3])
        assert service.drive() == []
        assert len(service.drive(flush=True)) == 1

    def test_max_batch_rounds_caps_one_drive(self, big_field):
        service = CSMService(_csm_protocol(big_field), max_batch_rounds=2)
        session = service.connect("burst")
        for i in range(5):
            session.submit(1, [i, i])
        assert len(service.drive(flush=True)) == 2
        assert service.pending_commands() == 3
        assert len(service.drain()) == 3  # loops drive() until the pool is dry
        assert service.pending_commands() == 0

    def test_scheduler_validates_configuration(self, big_field):
        backend = _replication_backend(big_field)
        with pytest.raises(ConfigurationError):
            CSMService(backend, max_batch_rounds=0)
        with pytest.raises(ConfigurationError):
            CSMService(backend, min_fill=0)
        with pytest.raises(ConfigurationError):
            CSMService(backend, min_fill=backend.num_machines + 1)
        with pytest.raises(ConfigurationError):
            CSMService(backend, max_wait_ticks=0)
        with pytest.raises(ConfigurationError):
            CSMService(object())  # not a RoundProtocol

    def test_stale_commands_flush_after_max_wait_ticks(self, big_field):
        # Regression: below-min_fill traffic with no flush ever arriving
        # used to sit PENDING forever (scheduler starvation deadlock).
        service = CSMService(
            _csm_protocol(big_field), min_fill=3, max_wait_ticks=3
        )
        ticket = service.connect("alice").submit(0, [1, 1])
        assert service.drive() == []  # deferred tick 1
        assert service.drive() == []  # deferred tick 2
        records = service.drive()     # tick 3: stale override fires
        assert len(records) == 1
        assert ticket.state is TicketState.EXECUTED
        np.testing.assert_array_equal(ticket.result(), [1, 1])

    def test_stale_override_age_resets_on_progress(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), min_fill=2, max_wait_ticks=2
        )
        service.connect("alice").submit(0, [1, 1])
        assert service.drive() == []          # deferred tick 1
        service.connect("bob").submit(1, [2, 2])
        assert len(service.drive()) == 1      # min_fill reached: normal round
        late = service.connect("alice").submit(0, [3, 3])
        assert service.drive() == []          # fresh deferral count: tick 1
        assert late.state is TicketState.PENDING
        assert len(service.drive()) == 1      # tick 2: override fires again
        assert late.state is TicketState.EXECUTED

    def test_max_wait_ticks_none_preserves_pure_deferral(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), min_fill=3, max_wait_ticks=None
        )
        ticket = service.connect("alice").submit(0, [1, 1])
        for _ in range(30):
            assert service.drive() == []
        assert ticket.state is TicketState.PENDING
        assert len(service.drive(flush=True)) == 1  # flush still drains

    def test_submit_validates_command_shape(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        with pytest.raises(ConfigurationError):
            service.connect("alice").submit(0, [1, 2, 3])
        with pytest.raises(ConfigurationError):
            service.connect("alice").submit(9, [1, 2])

    def test_connect_is_idempotent(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        session = service.connect("alice")
        assert service.connect("alice") is session


class TestReplicationFacade:
    def test_partial_replication_backend(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(6)]
        engine = PartialReplicationSMR(
            machine, 3, node_ids, rng=np.random.default_rng(0)
        )
        service = CSMService(ReplicationProtocol(engine))
        tickets = [
            service.connect("alice").submit(0, [1, 1]),
            service.connect("bob").submit(2, [2, 2]),
        ]
        service.drain()
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        assert engine.round_index == 1  # one padded round served both

    def test_facade_matches_direct_engine_execution(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(4)]
        batches = [
            np.arange(1, 7).reshape(3, 2),
            np.arange(7, 13).reshape(3, 2),
        ]
        direct = FullReplicationSMR(machine, 3, node_ids, rng=np.random.default_rng(1))
        direct_results = direct.execute_rounds(np.stack(batches))
        facade = ReplicationProtocol(
            FullReplicationSMR(machine, 3, node_ids, rng=np.random.default_rng(1))
        )
        records = facade.run_rounds_batched(batches)
        assert [r.clients for r in records] == [
            ["client:0", "client:1", "client:2"]
        ] * 2
        for record, result in zip(records, direct_results):
            np.testing.assert_array_equal(record.result.outputs, result.outputs)
            np.testing.assert_array_equal(record.result.states, result.states)
            assert record.correct == result.correct
        assert facade.all_rounds_correct
        assert facade.measured_throughput() > 0

    def test_facade_rejects_malformed_rounds(self, big_field):
        facade = _replication_backend(big_field)
        with pytest.raises(ConfigurationError):
            facade.run_rounds_batched([np.ones((2, 2))])
        with pytest.raises(ConfigurationError):
            facade.run_rounds_batched(
                [np.ones((3, 2))], client_rounds=[["a"] * 3, ["b"] * 3]
            )
        assert facade.run_rounds_batched([]) == []


class TestNoopCommands:
    def test_library_machines_declare_identity_noops(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=3)
        state = np.array([4, 5, 6])
        next_state, _ = machine.step(state, machine.noop_command())
        np.testing.assert_array_equal(next_state, state)

    def test_affine_machine_only_identity_at_scale_one(self, big_field):
        scaled = affine_kv_machine(big_field, num_keys=2, scale=3)
        assert scaled.noop is None  # no identity command exists
        unit = affine_kv_machine(big_field, num_keys=2, scale=1)
        state = np.array([8, 9])
        next_state, _ = unit.step(state, unit.noop_command())
        np.testing.assert_array_equal(next_state, state)

    def test_noop_dimension_validated(self, big_field):
        with pytest.raises(ConfigurationError):
            machine = bank_account_machine(big_field, num_accounts=2)
            type(machine)(
                field=machine.field,
                transition=machine.transition,
                initial_state=machine.initial_state,
                noop=np.zeros(5, dtype=np.int64),
            )

    def test_replicate_preserves_noop(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        clones = machine.replicate(2)
        for clone in clones:
            np.testing.assert_array_equal(
                clone.noop_command(), machine.noop_command()
            )

    def test_engines_expose_noop_round(self, big_field):
        backend = _replication_backend(big_field)
        round_ = backend.engine.noop_round()
        assert round_.shape == (3, 2)
        assert not round_.any()


class TestPipelineFlag:
    def test_pipeline_drive_matches_batched_drive(self, big_field):
        """pipeline=True must change only how the backend executes, not what
        any ticket or history record contains."""
        rng = np.random.default_rng(4)
        batches = [rng.integers(1, 1000, size=(3, 2)) for _ in range(4)]

        def run(pipeline):
            protocol = _csm_protocol(big_field)
            service = CSMService(
                protocol, max_batch_rounds=4, min_fill=3, pipeline=pipeline
            )
            sessions = [service.connect(f"client:{k}") for k in range(3)]
            for batch in batches:
                for k in range(3):
                    sessions[k].submit(k, batch[k])
            service.drain()
            return protocol, service

        batched_protocol, batched_service = run(False)
        pipelined_protocol, pipelined_service = run(True)
        assert len(batched_protocol.history) == len(pipelined_protocol.history)
        for bat, pip in zip(batched_protocol.history, pipelined_protocol.history):
            np.testing.assert_array_equal(bat.commands, pip.commands)
            assert bat.clients == pip.clients
            np.testing.assert_array_equal(bat.result.outputs, pip.result.outputs)
            assert bat.result.correct == pip.result.correct
        for bat, pip in zip(batched_service.tickets(), pipelined_service.tickets()):
            assert bat.sequence == pip.sequence and bat.state is pip.state

    def test_pipeline_flag_works_on_replication_backends(self, big_field):
        """Backends without a speculative path fall back to the batched drive
        through the RoundProtocol default — same outcomes, no errors."""
        service = CSMService(
            _replication_backend(big_field), max_batch_rounds=2, pipeline=True
        )
        session = service.connect("alice")
        ticket = session.submit(0, [5, 5])
        service.drain()
        assert ticket.state is TicketState.EXECUTED

    def test_run_lockstep_pipeline_matches_default(self, big_field):
        rng = np.random.default_rng(11)
        batches = [rng.integers(1, 1000, size=(3, 2)) for _ in range(3)]
        batched = CSMService.run_lockstep(_csm_protocol(big_field), batches)
        pipelined = CSMService.run_lockstep(
            _csm_protocol(big_field), batches, pipeline=True
        )
        for bat, pip in zip(batched, pipelined):
            np.testing.assert_array_equal(bat.commands, pip.commands)
            assert bat.clients == pip.clients
            np.testing.assert_array_equal(bat.result.outputs, pip.result.outputs)
            assert bat.result.correct == pip.result.correct


class TestThrottledTicketEdges:
    def test_pending_to_throttled_is_legal_and_terminal(self):
        ticket = CommandTicket(
            client_id="a", machine_index=0, command=(1,), sequence=0
        )
        ticket._throttle(
            "session queue full", ThrottleReason.SESSION_QUEUE_FULL, tick=4
        )
        assert ticket.state is TicketState.THROTTLED
        assert ticket.done
        assert ticket.throttle_reason is ThrottleReason.SESSION_QUEUE_FULL
        assert ticket.resolved_tick == 4
        assert ticket.state_history == [
            TicketState.PENDING,
            TicketState.THROTTLED,
        ]
        with pytest.raises(ServiceError):
            ticket.result()  # a shed command never has an output

    def test_no_transitions_out_of_throttled(self):
        ticket = CommandTicket(
            client_id="a", machine_index=0, command=(1,), sequence=0
        )
        ticket._throttle("shed", ThrottleReason.ADMISSION_SHED)
        with pytest.raises(ServiceError):
            ticket._commit(0)
        with pytest.raises(ServiceError):
            ticket._execute(np.array([1]))
        with pytest.raises(ServiceError):
            ticket._fail("nope", FailureReason.BACKEND_ERROR)
        with pytest.raises(ServiceError):
            ticket._throttle("again", ThrottleReason.SESSION_QUEUE_FULL)
        # The illegal edges left no trace on the terminal ticket.
        assert ticket.state is TicketState.THROTTLED
        assert ticket.failure_reason is None
        assert ticket.round_index is None

    def test_committed_ticket_cannot_be_throttled(self):
        ticket = CommandTicket(
            client_id="a", machine_index=0, command=(1,), sequence=0
        )
        ticket._commit(0)
        with pytest.raises(ServiceError):
            ticket._throttle("late", ThrottleReason.SESSION_QUEUE_FULL)

    def test_backpressure_releases_capacity_after_resolution(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(max_session_pending=1)
        )
        session = service.connect("alice")
        session.submit(0, [1, 1])
        assert session.submit(0, [2, 2]).state is TicketState.THROTTLED
        service.drive(flush=True)  # resolves the open ticket
        assert session.submit(0, [2, 2]).state is TicketState.PENDING


class TestDeferralAgeAcrossCappedTicks:
    def test_leftovers_of_a_capped_tick_keep_their_age(self, big_field):
        # Regression: a tick that forms rounds but leaves commands behind
        # (max_batch_rounds exhausted) used to reset the deferral age, so the
        # leftover's starvation clock restarted from zero and the max_wait
        # override fired one tick late.  The age must follow the oldest
        # still-pending command.
        service = CSMService(
            _csm_protocol(big_field),
            max_batch_rounds=1,
            min_fill=2,
            max_wait_ticks=3,
        )
        alice = service.connect("alice")
        first = alice.submit(0, [1, 1])
        leftover = alice.submit(0, [2, 2])
        other = service.connect("bob").submit(1, [3, 3])

        # Tick 1: two machines pending (>= min_fill) forms one capped round;
        # the second machine-0 command stays behind and is now 1 tick old.
        assert len(service.drive()) == 1
        assert first.state is TicketState.EXECUTED
        assert other.state is TicketState.EXECUTED
        assert leftover.state is TicketState.PENDING

        # Tick 2: below min_fill, deferred — the leftover is 2 ticks old.
        assert service.drive() == []
        assert leftover.state is TicketState.PENDING

        # Tick 3: the override fires at age 3.  Resetting the age on the
        # capped tick would have deferred here and flushed only on tick 4.
        assert len(service.drive()) == 1
        assert leftover.state is TicketState.EXECUTED


class TestLogicalTimestamps:
    def test_ticks_stamped_through_the_lifecycle(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        ticket = service.connect("alice").submit(0, [1, 1])
        assert ticket.submitted_tick == 0
        assert ticket.commit_latency is None
        assert ticket.execute_latency is None
        service.drive(flush=True)
        assert ticket.submitted_tick == 0
        assert ticket.committed_tick == 1
        assert ticket.resolved_tick == 1
        assert ticket.commit_latency == 1
        assert ticket.execute_latency == 1

    def test_clock_advances_on_empty_ticks(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        service.drive()
        service.drive()
        assert service.clock.now == 2
        ticket = service.connect("alice").submit(0, [1, 1])
        assert ticket.submitted_tick == 2

    def test_throttled_ticket_resolves_at_its_submit_tick(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(max_session_pending=1)
        )
        session = service.connect("alice")
        session.submit(0, [1, 1])
        service.drive()  # advances the clock without resolving (min_fill met?)
        shed = session.submit(0, [2, 2])
        if shed.state is TicketState.PENDING:
            shed = session.submit(0, [3, 3])
        assert shed.state is TicketState.THROTTLED
        assert shed.submitted_tick == shed.resolved_tick == service.clock.now
        assert shed.commit_latency is None
        assert shed.execute_latency is None

    def test_deferred_commit_accrues_latency(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), min_fill=3, max_wait_ticks=3
        )
        ticket = service.connect("alice").submit(0, [1, 1])
        service.drive()  # deferred
        service.drive()  # deferred
        service.drive()  # stale override executes it at tick 3
        assert ticket.state is TicketState.EXECUTED
        assert ticket.commit_latency == 3
        assert ticket.execute_latency == 3


class TestRetryPolicy:
    """The self-healing layer: failed rounds re-enqueue instead of failing."""

    def _corrupt_burst(self, at, until=None, nodes=5):
        # Five corrupt rows exceed the N=12, K=3 decode radius (4), so the
        # burst rounds fail verification while consensus still decides.
        from repro.faults import FaultSchedule

        schedule = FaultSchedule()
        for i in range(nodes):
            schedule.behavior(f"node-{i}", "corrupt", at=at, until=until)
        return schedule

    def test_policy_validation(self):
        from repro.service import RetryPolicy

        assert not RetryPolicy().enabled
        assert RetryPolicy(max_attempts=2).enabled
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_ticks=-1)

    def test_burst_failures_recover_within_max_attempts(self, big_field):
        from repro.service import RetryPolicy

        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=4, backoff_ticks=1),
            faults=self._corrupt_burst(at=1, until=3),
        )
        session = service.connect("alice")
        tickets = [
            session.submit(k, [10 + r, k]) for r in range(4) for k in range(3)
        ]
        service.drain()
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        retried = [t for t in tickets if t.attempts > 1]
        assert retried, "the burst rounds' tickets must have retried"
        for ticket in retried:
            assert TicketState.RETRYING in ticket.state_history
        report = service.qos_report()
        assert report["retried_commands"] == len(retried)
        assert report["recovered_tickets"] == len(retried)
        assert report["exhausted_tickets"] == 0
        assert report["retry_backlog"] == 0

    def test_exhausted_retries_fail_with_distinct_reason(self, big_field):
        from repro.service import RetryPolicy

        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=2, backoff_ticks=1),
            faults=self._corrupt_burst(at=0),  # permanent corruption
        )
        ticket = service.connect("alice").submit(0, [5, 5])
        service.drain()
        assert ticket.state is TicketState.FAILED
        assert ticket.failure_reason is FailureReason.RETRY_EXHAUSTED
        assert ticket.attempts == 2
        assert "retries exhausted" in ticket.error
        assert service.qos_report()["exhausted_tickets"] == 1

    def test_disabled_policy_fails_fast(self, big_field):
        from repro.service import RetryPolicy

        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=1),
            faults=self._corrupt_burst(at=0, until=2),
        )
        ticket = service.connect("alice").submit(0, [5, 5])
        service.drain()
        assert ticket.state is TicketState.FAILED
        assert ticket.failure_reason is FailureReason.VERIFICATION_FAILED
        assert ticket.attempts == 1

    def test_backoff_holds_the_retry_in_the_backlog(self, big_field):
        from repro.service import RetryPolicy

        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol,
            retry=RetryPolicy(max_attempts=3, backoff_ticks=4),
            faults=self._corrupt_burst(at=0, until=1),
        )
        ticket = service.connect("alice").submit(0, [5, 5])
        service.drive(flush=True)  # tick 1: the burst round fails, re-enqueue
        assert ticket.state is TicketState.RETRYING
        assert service.qos_report()["retry_backlog"] == 1
        # ready at tick 1 + 4 = 5: ticks 2..4 only wait out the backoff
        for _ in range(3):
            assert service.drive(flush=True) == []
            assert ticket.state is TicketState.RETRYING
        service.drain()  # tick 5 resubmits and executes
        assert ticket.state is TicketState.EXECUTED
        assert ticket.attempts == 2

    def test_report_blocks_present_without_policy(self, big_field):
        service = CSMService(_csm_protocol(big_field))
        report = service.qos_report()
        assert report["retry"]["enabled"] is False
        assert report["retried_commands"] == 0
        assert report["faults"]["injected_events"] == 0
