"""Unit tests for the batched round pipeline and the measurement bugfixes.

Covers the contract the benchmarks rely on — ``execute_rounds`` is
bit-identical to the scalar round loop for every engine — plus the
measurement-harness fixes: ``failed_rounds`` accounting and the
``num_faults > N`` guard.
"""

import numpy as np
import pytest

from repro.analysis.measurement import (
    _fault_behaviors,
    measure_csm,
    measure_full_replication,
    measure_partial_replication,
)
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.exceptions import ConfigurationError
from repro.gf.matrix_cache import clear_matrix_cache, matrix_cache_info
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR


def _coded_engine(field, num_nodes, num_machines, behaviors, seed=3, **config_kwargs):
    machine = bank_account_machine(field, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        **config_kwargs,
    )
    engine = CodedExecutionEngine(
        config, machine, node_ids, behaviors(node_ids), np.random.default_rng(seed)
    )
    return engine, machine


class TestCodedBatchPipeline:
    @pytest.mark.parametrize("num_garbage,num_silent", [(0, 0), (2, 0), (1, 1)])
    def test_execute_rounds_bit_identical_to_scalar(
        self, big_field, num_garbage, num_silent
    ):
        def behaviors(node_ids):
            chosen = {
                node_ids[i]: RandomGarbageBehavior() for i in range(num_garbage)
            }
            for j in range(num_silent):
                chosen[node_ids[num_garbage + j]] = SilentBehavior()
            return chosen

        scalar_engine, machine = _coded_engine(
            big_field, 12, 4, behaviors, num_faults=1
        )
        batch_engine, _ = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        commands = np.random.default_rng(9).integers(
            1, 1000, size=(5, 4, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        assert len(batch_results) == 5
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            np.testing.assert_array_equal(scalar_round.outputs, batch_round.outputs)
            np.testing.assert_array_equal(scalar_round.states, batch_round.states)
            assert scalar_round.correct == batch_round.correct
            assert (
                scalar_round.diagnostics["error_nodes"]
                == batch_round.diagnostics["error_nodes"]
            )
            assert batch_round.diagnostics["batched"] is True
        # The engines end the batch with identical coded node states.
        for scalar_node, batch_node in zip(scalar_engine.nodes, batch_engine.nodes):
            np.testing.assert_array_equal(
                scalar_node.coded_state, batch_node.coded_state
            )

    def test_single_round_promoted_to_batch(self, big_field):
        engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(0).integers(
            1, 100, size=(3, machine.command_dim)
        )
        results = engine.execute_rounds(commands)
        assert len(results) == 1
        assert results[0].correct

    def test_batch_shape_validation(self, big_field):
        engine, _ = _coded_engine(big_field, 9, 3, lambda ids: {})
        with pytest.raises(ConfigurationError):
            engine.execute_rounds(np.zeros((2, 4, 2), dtype=np.int64))

    def test_batch_charges_scalar_encode_and_update_ops(self, big_field):
        """Per-node encode/update op counts match the scalar protocol model."""
        scalar_engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        batch_engine, _ = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(4).integers(
            1, 100, size=(2, 3, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            for node in scalar_engine.nodes:
                scalar_ops = scalar_round.ops_per_node[node.node_id]
                batch_ops = batch_round.ops_per_node[node.node_id]
                # The decode share differs (that is the optimisation); the
                # local encode + transition + update share must not.
                scalar_local = scalar_ops - scalar_round.diagnostics["decode_ops"]
                batch_local = batch_ops - batch_round.diagnostics["decode_ops"]
                assert scalar_local == batch_local
            assert (
                batch_round.diagnostics["decode_ops"]
                < scalar_round.diagnostics["decode_ops"]
            )

    def test_matrix_cache_populated_by_batch(self, big_field):
        clear_matrix_cache()
        engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(1).integers(
            1, 100, size=(2, 3, machine.command_dim)
        )
        engine.execute_rounds(commands)
        info = matrix_cache_info()
        assert info.get("lagrange-C", 0) >= 1
        assert info.get("transfer", 0) >= 1


class TestReplicationBatchMixin:
    def test_full_replication_execute_rounds(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(6)]
        scalar_engine = FullReplicationSMR(
            machine, 2, node_ids, {}, np.random.default_rng(0)
        )
        batch_engine = FullReplicationSMR(
            machine, 2, node_ids, {}, np.random.default_rng(0)
        )
        commands = np.random.default_rng(2).integers(
            1, 100, size=(3, 2, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            np.testing.assert_array_equal(scalar_round.outputs, batch_round.outputs)
            assert scalar_round.correct == batch_round.correct

    def test_partial_replication_execute_rounds(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(8)]
        engine = PartialReplicationSMR(
            machine, 4, node_ids, {}, np.random.default_rng(0)
        )
        commands = np.random.default_rng(2).integers(
            1, 100, size=(2, 4, machine.command_dim)
        )
        results = engine.execute_rounds(commands)
        assert len(results) == 2
        assert all(r.correct for r in results)

    def test_batch_shape_rejected(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        engine = FullReplicationSMR(machine, 2, ["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            engine.execute_rounds(np.zeros((2, 3, 2), dtype=np.int64))


class TestMeasurementBugfixes:
    def test_fault_behaviors_rejects_excess_faults(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="exceeds the number of nodes"):
            _fault_behaviors(["a", "b", "c"], 4, rng)

    def test_measure_rejects_excess_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        with pytest.raises(ValueError):
            measure_full_replication(machine, 4, 2, num_faults=5, rounds=1)
        with pytest.raises(ValueError):
            measure_partial_replication(machine, 4, 2, num_faults=5, rounds=1)
        with pytest.raises(ValueError):
            measure_csm(machine, 6, 2, num_faults=7, rounds=1)

    def test_failed_rounds_counted_beyond_bound(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        # (N=12, K=4, b=5) violates 2b + 1 <= N - d(K - 1): every round's
        # decode fails, yet every executed round must stay in the report.
        outcome = measure_csm(machine, 12, 4, num_faults=5, rounds=3)
        assert not outcome.all_correct
        assert outcome.failed_rounds == 3
        assert outcome.rounds == 3
        assert outcome.mean_ops_per_node > 0  # failed rounds still did work
        assert outcome.as_row()["failed_rounds"] == 3

    def test_failed_rounds_zero_when_clean(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        outcome = measure_csm(machine, 12, 4, num_faults=4, rounds=2)
        assert outcome.all_correct
        assert outcome.failed_rounds == 0

    def test_partial_replication_failed_rounds_reported(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        outcome = measure_partial_replication(machine, 8, 4, num_faults=1, rounds=2)
        assert not outcome.all_correct
        assert outcome.failed_rounds == 2

    @pytest.mark.parametrize(
        "measure", [measure_full_replication, measure_partial_replication, measure_csm]
    )
    def test_batched_measurement_matches_scalar(self, big_field, measure):
        machine = bank_account_machine(big_field, num_accounts=2)
        scalar = measure(machine, 8, 2, num_faults=1, rounds=3, batched=False)
        batched = measure(machine, 8, 2, num_faults=1, rounds=3, batched=True)
        assert batched.batched and not scalar.batched
        assert batched.all_correct == scalar.all_correct
        assert batched.failed_rounds == scalar.failed_rounds
        assert batched.storage_efficiency == scalar.storage_efficiency
