"""Unit tests for the batched round pipeline and the measurement bugfixes.

Covers the contract the benchmarks rely on — ``execute_rounds`` is
bit-identical to the scalar round loop for every engine — plus the
measurement-harness fixes: ``failed_rounds`` accounting and the
``num_faults > N`` guard.
"""

import numpy as np
import pytest

from repro.analysis.measurement import (
    _fault_behaviors,
    measure_csm,
    measure_full_replication,
    measure_partial_replication,
)
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.exceptions import ConfigurationError
from repro.gf.matrix_cache import clear_matrix_cache, matrix_cache_info
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR


def _coded_engine(field, num_nodes, num_machines, behaviors, seed=3, **config_kwargs):
    machine = bank_account_machine(field, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        **config_kwargs,
    )
    engine = CodedExecutionEngine(
        config, machine, node_ids, behaviors(node_ids), np.random.default_rng(seed)
    )
    return engine, machine


class TestCodedBatchPipeline:
    @pytest.mark.parametrize("num_garbage,num_silent", [(0, 0), (2, 0), (1, 1)])
    def test_execute_rounds_bit_identical_to_scalar(
        self, big_field, num_garbage, num_silent
    ):
        def behaviors(node_ids):
            chosen = {
                node_ids[i]: RandomGarbageBehavior() for i in range(num_garbage)
            }
            for j in range(num_silent):
                chosen[node_ids[num_garbage + j]] = SilentBehavior()
            return chosen

        scalar_engine, machine = _coded_engine(
            big_field, 12, 4, behaviors, num_faults=1
        )
        batch_engine, _ = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        commands = np.random.default_rng(9).integers(
            1, 1000, size=(5, 4, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        assert len(batch_results) == 5
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            np.testing.assert_array_equal(scalar_round.outputs, batch_round.outputs)
            np.testing.assert_array_equal(scalar_round.states, batch_round.states)
            assert scalar_round.correct == batch_round.correct
            assert (
                scalar_round.diagnostics["error_nodes"]
                == batch_round.diagnostics["error_nodes"]
            )
            assert batch_round.diagnostics["batched"] is True
        # The engines end the batch with identical coded node states.
        for scalar_node, batch_node in zip(scalar_engine.nodes, batch_engine.nodes):
            np.testing.assert_array_equal(
                scalar_node.coded_state, batch_node.coded_state
            )

    def test_single_round_promoted_to_batch(self, big_field):
        engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(0).integers(
            1, 100, size=(3, machine.command_dim)
        )
        results = engine.execute_rounds(commands)
        assert len(results) == 1
        assert results[0].correct

    def test_batch_shape_validation(self, big_field):
        engine, _ = _coded_engine(big_field, 9, 3, lambda ids: {})
        with pytest.raises(ConfigurationError):
            engine.execute_rounds(np.zeros((2, 4, 2), dtype=np.int64))

    def test_batch_charges_scalar_encode_and_update_ops(self, big_field):
        """Per-node encode/update op counts match the scalar protocol model."""
        scalar_engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        batch_engine, _ = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(4).integers(
            1, 100, size=(2, 3, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            for node in scalar_engine.nodes:
                scalar_ops = scalar_round.ops_per_node[node.node_id]
                batch_ops = batch_round.ops_per_node[node.node_id]
                # The decode share differs (that is the optimisation); the
                # local encode + transition + update share must not.
                scalar_local = scalar_ops - scalar_round.diagnostics["decode_ops"]
                batch_local = batch_ops - batch_round.diagnostics["decode_ops"]
                assert scalar_local == batch_local
            assert (
                batch_round.diagnostics["decode_ops"]
                < scalar_round.diagnostics["decode_ops"]
            )

    def test_matrix_cache_populated_by_batch(self, big_field):
        clear_matrix_cache()
        engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(1).integers(
            1, 100, size=(2, 3, machine.command_dim)
        )
        engine.execute_rounds(commands)
        info = matrix_cache_info()
        assert info.get("lagrange-C", 0) >= 1
        assert info.get("transfer", 0) >= 1


class TestReplicationBatchMixin:
    def test_full_replication_execute_rounds(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(6)]
        scalar_engine = FullReplicationSMR(
            machine, 2, node_ids, {}, np.random.default_rng(0)
        )
        batch_engine = FullReplicationSMR(
            machine, 2, node_ids, {}, np.random.default_rng(0)
        )
        commands = np.random.default_rng(2).integers(
            1, 100, size=(3, 2, machine.command_dim)
        )
        scalar_results = [scalar_engine.execute_round(c) for c in commands]
        batch_results = batch_engine.execute_rounds(commands)
        for scalar_round, batch_round in zip(scalar_results, batch_results):
            np.testing.assert_array_equal(scalar_round.outputs, batch_round.outputs)
            assert scalar_round.correct == batch_round.correct

    def test_partial_replication_execute_rounds(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(8)]
        engine = PartialReplicationSMR(
            machine, 4, node_ids, {}, np.random.default_rng(0)
        )
        commands = np.random.default_rng(2).integers(
            1, 100, size=(2, 4, machine.command_dim)
        )
        results = engine.execute_rounds(commands)
        assert len(results) == 2
        assert all(r.correct for r in results)

    def test_batch_shape_rejected(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        engine = FullReplicationSMR(machine, 2, ["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            engine.execute_rounds(np.zeros((2, 3, 2), dtype=np.int64))


class TestMeasurementBugfixes:
    def test_fault_behaviors_rejects_excess_faults(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="exceeds the number of nodes"):
            _fault_behaviors(["a", "b", "c"], 4, rng)

    def test_measure_rejects_excess_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        with pytest.raises(ValueError):
            measure_full_replication(machine, 4, 2, num_faults=5, rounds=1)
        with pytest.raises(ValueError):
            measure_partial_replication(machine, 4, 2, num_faults=5, rounds=1)
        with pytest.raises(ValueError):
            measure_csm(machine, 6, 2, num_faults=7, rounds=1)

    def test_failed_rounds_counted_beyond_bound(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        # (N=12, K=4, b=5) violates 2b + 1 <= N - d(K - 1): every round's
        # decode fails, yet every executed round must stay in the report.
        outcome = measure_csm(machine, 12, 4, num_faults=5, rounds=3)
        assert not outcome.all_correct
        assert outcome.failed_rounds == 3
        assert outcome.rounds == 3
        assert outcome.mean_ops_per_node > 0  # failed rounds still did work
        assert outcome.as_row()["failed_rounds"] == 3

    def test_failed_rounds_zero_when_clean(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        outcome = measure_csm(machine, 12, 4, num_faults=4, rounds=2)
        assert outcome.all_correct
        assert outcome.failed_rounds == 0

    def test_partial_replication_failed_rounds_reported(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        outcome = measure_partial_replication(machine, 8, 4, num_faults=1, rounds=2)
        assert not outcome.all_correct
        assert outcome.failed_rounds == 2

    @pytest.mark.parametrize(
        "measure", [measure_full_replication, measure_partial_replication, measure_csm]
    )
    def test_batched_measurement_matches_scalar(self, big_field, measure):
        machine = bank_account_machine(big_field, num_accounts=2)
        scalar = measure(machine, 8, 2, num_faults=1, rounds=3, batched=False)
        batched = measure(machine, 8, 2, num_faults=1, rounds=3, batched=True)
        assert batched.batched and not scalar.batched
        assert batched.all_correct == scalar.all_correct
        assert batched.failed_rounds == scalar.failed_rounds
        assert batched.storage_efficiency == scalar.storage_efficiency


class TestSpeculativePipeline:
    """Engine-level contract of ``execute_rounds_pipelined``: bit-identical
    results across fault patterns and verify windows, rollback on
    mis-speculation, and graceful handling of rounds it cannot speculate."""

    @pytest.mark.parametrize("verify_window", [1, 2, 3, 16])
    @pytest.mark.parametrize("num_garbage,num_silent", [(0, 0), (2, 0), (1, 1)])
    def test_bit_identical_to_batched(
        self, big_field, num_garbage, num_silent, verify_window
    ):
        def behaviors(node_ids):
            chosen = {
                node_ids[i]: RandomGarbageBehavior() for i in range(num_garbage)
            }
            for j in range(num_silent):
                chosen[node_ids[num_garbage + j]] = SilentBehavior()
            return chosen

        batch_engine, machine = _coded_engine(
            big_field, 12, 4, behaviors, num_faults=1
        )
        pipelined_engine, _ = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        commands = np.random.default_rng(9).integers(
            1, 1000, size=(7, 4, machine.command_dim)
        )
        batch_results = batch_engine.execute_rounds(commands)
        pipelined_results = pipelined_engine.execute_rounds_pipelined(
            commands, verify_window=verify_window
        )
        for batch_round, pipelined_round in zip(batch_results, pipelined_results):
            assert batch_round.round_index == pipelined_round.round_index
            np.testing.assert_array_equal(
                batch_round.outputs, pipelined_round.outputs
            )
            np.testing.assert_array_equal(batch_round.states, pipelined_round.states)
            assert batch_round.correct == pipelined_round.correct
            assert (
                batch_round.diagnostics["error_nodes"]
                == pipelined_round.diagnostics["error_nodes"]
            )
            assert pipelined_round.diagnostics["pipelined"] is True
        assert batch_engine._suspects == pipelined_engine._suspects
        for batch_node, pipelined_node in zip(
            batch_engine.nodes, pipelined_engine.nodes
        ):
            np.testing.assert_array_equal(
                batch_node.coded_state, pipelined_node.coded_state
            )

    def test_garbage_pivot_node_forces_rollback(self, big_field):
        """A Byzantine node inside the trusted pivot invalidates speculation:
        its rounds resolve through the rollback path, later rounds re-learn
        the fast path, and every result still matches the batched engine."""

        def behaviors(node_ids):
            return {node_ids[0]: RandomGarbageBehavior()}

        batch_engine, machine = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        pipelined_engine, _ = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        commands = np.random.default_rng(3).integers(
            1, 1000, size=(6, 4, machine.command_dim)
        )
        batch_results = batch_engine.execute_rounds(commands)
        pipelined_results = pipelined_engine.execute_rounds_pipelined(commands)
        speculation = [r.diagnostics["speculation"] for r in pipelined_results]
        assert speculation[0] == "rollback"  # node-0 sat in the initial pivot
        assert "confirmed" in speculation[1:]  # pivots re-learnt around it
        for batch_round, pipelined_round in zip(batch_results, pipelined_results):
            np.testing.assert_array_equal(
                batch_round.outputs, pipelined_round.outputs
            )
            assert batch_round.correct == pipelined_round.correct
        assert 0 in pipelined_engine._suspects

    def test_silent_rounds_resolve_inline(self, big_field):
        def behaviors(node_ids):
            return {node_ids[2]: SilentBehavior()}

        engine, machine = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        commands = np.random.default_rng(5).integers(
            1, 1000, size=(3, 4, machine.command_dim)
        )
        results = engine.execute_rounds_pipelined(commands)
        assert all(r.diagnostics["speculation"] == "inline" for r in results)
        assert all(r.correct for r in results)

    def test_decode_failure_restores_checkpoint(self, big_field):
        """Past-the-radius corruption fails verification; the pipelined path
        must restore the checkpoint and report the identical failed rounds."""

        def behaviors(node_ids):
            return {node_ids[i]: RandomGarbageBehavior() for i in range(5)}

        batch_engine, machine = _coded_engine(big_field, 12, 6, behaviors, num_faults=1)
        pipelined_engine, _ = _coded_engine(big_field, 12, 6, behaviors, num_faults=1)
        commands = np.random.default_rng(8).integers(
            1, 1000, size=(4, 6, machine.command_dim)
        )
        batch_results = batch_engine.execute_rounds(commands)
        pipelined_results = pipelined_engine.execute_rounds_pipelined(commands)
        assert any(r.diagnostics["decoding_failed"] for r in batch_results)
        for batch_round, pipelined_round in zip(batch_results, pipelined_results):
            np.testing.assert_array_equal(
                batch_round.outputs, pipelined_round.outputs
            )
            np.testing.assert_array_equal(batch_round.states, pipelined_round.states)
            assert batch_round.correct == pipelined_round.correct
            assert (
                batch_round.diagnostics["decoding_failed"]
                == pipelined_round.diagnostics["decoding_failed"]
            )
        for batch_node, pipelined_node in zip(
            batch_engine.nodes, pipelined_engine.nodes
        ):
            np.testing.assert_array_equal(
                batch_node.coded_state, pipelined_node.coded_state
            )

    def test_repeated_calls_stay_aligned(self, big_field):
        """Service ticks call the pipeline repeatedly; state carried between
        calls (suspects, coded states, round indices) must stay in lockstep
        with the batched engine."""

        def behaviors(node_ids):
            return {node_ids[0]: RandomGarbageBehavior()}

        batch_engine, machine = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        pipelined_engine, _ = _coded_engine(big_field, 12, 4, behaviors, num_faults=1)
        rng = np.random.default_rng(2)
        for _ in range(3):
            commands = rng.integers(1, 1000, size=(4, 4, machine.command_dim))
            batch_results = batch_engine.execute_rounds(commands)
            pipelined_results = pipelined_engine.execute_rounds_pipelined(
                commands, verify_window=2
            )
            for batch_round, pipelined_round in zip(batch_results, pipelined_results):
                assert batch_round.round_index == pipelined_round.round_index
                np.testing.assert_array_equal(
                    batch_round.outputs, pipelined_round.outputs
                )
        assert batch_engine.round_index == pipelined_engine.round_index

    def test_rejects_non_positive_verify_window(self, big_field):
        engine, machine = _coded_engine(big_field, 9, 3, lambda ids: {})
        commands = np.random.default_rng(0).integers(
            1, 100, size=(2, 3, machine.command_dim)
        )
        with pytest.raises(ConfigurationError):
            engine.execute_rounds_pipelined(commands, verify_window=0)

    def test_partial_round_after_rollback_recomputes_on_repaired_states(
        self, big_field
    ):
        """Regression: a silent round arriving while mis-speculated rounds are
        still unverified must not decode results computed on the wrong bank —
        the flush rolls back first, then the round's honest results are
        recomputed on the repaired states."""
        from repro.net.byzantine import FaultOnsetBehavior

        def behaviors(node_ids):
            return {
                # In the initial pivot: honest for round 0, garbage after —
                # invalidating the speculation the silent round lands on.
                node_ids[0]: FaultOnsetBehavior(
                    RandomGarbageBehavior(), onset_round=1
                ),
                node_ids[7]: FaultOnsetBehavior(SilentBehavior(), onset_round=2),
            }

        batch_engine, machine = _coded_engine(big_field, 12, 3, behaviors, num_faults=2)
        pipelined_engine, _ = _coded_engine(big_field, 12, 3, behaviors, num_faults=2)
        commands = np.random.default_rng(13).integers(
            1, 1000, size=(6, 3, machine.command_dim)
        )
        batch_results = batch_engine.execute_rounds(commands)
        pipelined_results = pipelined_engine.execute_rounds_pipelined(
            commands, verify_window=16
        )
        for batch_round, pipelined_round in zip(batch_results, pipelined_results):
            np.testing.assert_array_equal(
                batch_round.outputs, pipelined_round.outputs
            )
            np.testing.assert_array_equal(batch_round.states, pipelined_round.states)
            assert batch_round.correct == pipelined_round.correct
            assert (
                batch_round.diagnostics["error_nodes"]
                == pipelined_round.diagnostics["error_nodes"]
            )
        assert batch_engine._suspects == pipelined_engine._suspects
