"""Unit tests for the vectorised message-plane primitives.

The plane's correctness contract is *bit-identity with the scalar paths*:
``DelayModel.sample_delays`` must consume the rng stream exactly as repeated
``sample_delay`` calls, ``KeyRegistry.sign_batch``/``verify_batch`` must
produce the signatures the scalar ``sign``/``verify`` would, and
``MessagePlane.broadcast_phase`` must leave the network (counters, delivery
log, rng, collected messages) in the state ``deliver_all`` would have.
"""

import numpy as np
import pytest

from repro.net.latency import PartiallySynchronousDelay, SynchronousDelay
from repro.net.message import Message, MessageKind
from repro.net.network import DeliveryRecord, MessagePlane, SimulatedNetwork
from repro.net.signatures import KeyRegistry


class TestSampleDelays:
    def test_synchronous_vector_matches_scalar_draws(self):
        model = SynchronousDelay()
        scalar_rng = np.random.default_rng(11)
        vector_rng = np.random.default_rng(11)
        scalar = [model.sample_delay(0.0, scalar_rng) for _ in range(20)]
        vector = model.sample_delays(0.0, vector_rng, 20)
        assert np.array_equal(np.array(scalar), vector)
        assert (
            scalar_rng.bit_generator.state["state"]
            == vector_rng.bit_generator.state["state"]
        )

    def test_psync_post_gst_vector_matches_scalar(self):
        model = PartiallySynchronousDelay(gst=2.0)
        scalar_rng = np.random.default_rng(7)
        vector_rng = np.random.default_rng(7)
        scalar = [model.sample_delay(5.0, scalar_rng) for _ in range(12)]
        vector = model.sample_delays(5.0, vector_rng, 12)
        assert np.array_equal(np.array(scalar), vector)
        assert (
            scalar_rng.bit_generator.state["state"]
            == vector_rng.bit_generator.state["state"]
        )

    def test_psync_pre_gst_loop_matches_scalar(self):
        # Pre-GST each message interleaves a uniform and an exponential draw,
        # so the batch helper must fall back to the scalar loop.
        model = PartiallySynchronousDelay(gst=10.0)
        scalar_rng = np.random.default_rng(3)
        vector_rng = np.random.default_rng(3)
        scalar = [model.sample_delay(0.0, scalar_rng) for _ in range(12)]
        vector = model.sample_delays(0.0, vector_rng, 12)
        assert np.array_equal(np.array(scalar), vector)
        assert (
            scalar_rng.bit_generator.state["state"]
            == vector_rng.bit_generator.state["state"]
        )

    def test_zero_count_consumes_no_randomness(self):
        for model in (SynchronousDelay(), PartiallySynchronousDelay(gst=2.0)):
            rng = np.random.default_rng(5)
            before = rng.bit_generator.state["state"]
            out = model.sample_delays(0.0, rng, 0)
            assert out.shape == (0,)
            assert rng.bit_generator.state["state"] == before


def _message(sender, payload, round_index=3, kind=MessageKind.CONSENSUS_PROPOSAL):
    return Message(
        sender=sender,
        recipient="*",
        kind=kind,
        round_index=round_index,
        payload=payload,
    )


class TestBatchSignatures:
    def test_sign_batch_matches_scalar_sign(self):
        scalar_keys = KeyRegistry()
        batch_keys = KeyRegistry()
        payloads = [{"commands": [i, i + 1]} for i in range(4)]
        scalar = [_message(f"node-{i}", payloads[i]) for i in range(4)]
        batch = [_message(f"node-{i}", payloads[i]) for i in range(4)]
        for message in scalar:
            scalar_keys.sign(message)
        batch_keys.sign_batch(batch, norm_cache={})
        for a, b in zip(scalar, batch):
            assert a.signature == b.signature
        assert all(batch_keys.verify_batch(batch, norm_cache={}))

    def test_verify_batch_flags_tampered_message(self):
        keys = KeyRegistry()
        messages = [_message(f"node-{i}", {"value": i}) for i in range(3)]
        keys.sign_batch(messages)
        messages[1].payload = {"value": 99}
        assert keys.verify_batch(messages) == [True, False, True]

    def test_norm_cache_is_shared_between_sign_and_verify(self):
        keys = KeyRegistry()
        cache: dict = {}
        payload = {"commands": [1, 2, 3]}
        messages = [_message(f"node-{i}", payload) for i in range(3)]
        keys.sign_batch(messages, cache)
        # One shared payload object -> one normalisation entry.
        assert len(cache) == 1
        assert keys.verify_batch(messages, cache) == [True, True, True]


def _network(seed=9, num_nodes=5, delay=None):
    net = SimulatedNetwork(
        delay_model=delay or SynchronousDelay(), rng=np.random.default_rng(seed)
    )
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    for node_id in node_ids:
        net.register(node_id)
    return net, node_ids


class TestMessagePlaneParity:
    def _templates(self, node_ids, payloads):
        return [
            _message(node_id, payload)
            for node_id, payload in zip(node_ids, payloads)
        ]

    def test_broadcast_phase_matches_deliver_all(self):
        scalar_net, node_ids = _network()
        plane_net, _ = _network()
        payloads = [{"commands": [i]} for i in range(3)]

        for template in self._templates(node_ids[:3], payloads):
            scalar_net.deliver_all(template, node_ids)
        scalar_collected = scalar_net.collect_all(
            node_ids, MessageKind.CONSENSUS_PROPOSAL, 3
        )

        plane = MessagePlane(plane_net, node_ids)
        templates = self._templates(node_ids[:3], payloads)
        refs = [plane.register(t.payload) for t in templates]
        batch = plane.broadcast_phase(templates, refs)
        view = plane.collect_phase(batch, MessageKind.CONSENSUS_PROPOSAL, 3)

        # Same sends: counters, rng stream and simulated clock agree.
        assert scalar_net.messages_sent == plane_net.messages_sent
        assert scalar_net.rejected_signatures == plane_net.rejected_signatures
        assert (
            scalar_net.rng.bit_generator.state["state"]
            == plane_net.rng.bit_generator.state["state"]
        )
        assert scalar_net.scheduler.now == plane_net.scheduler.now
        # Field-identical delivery log, in the same order.
        assert len(scalar_net.delivery_log) == len(plane_net.delivery_log)
        for a, b in zip(scalar_net.delivery_log, plane_net.delivery_log):
            assert isinstance(b, DeliveryRecord)
            assert a.message.sender == b.message.sender
            assert a.message.recipient == b.message.recipient
            assert a.send_time == b.send_time
            assert a.delivery_time == b.delivery_time
            assert a.delivered == b.delivered
        # Every node observes the same (sender, payload) multiset in-window.
        for j, node_id in enumerate(node_ids):
            scalar_view = [
                (m.sender, tuple(m.payload["commands"]))
                for m in scalar_collected[node_id]
            ]
            plane_view = [
                (m.sender, tuple(plane.payload(ref)["commands"]))
                for m, ref in view.messages_for(j)
            ]
            assert sorted(scalar_view) == sorted(plane_view)

    def test_empty_phase_is_a_noop(self):
        net, node_ids = _network()
        plane = MessagePlane(net, node_ids)
        state_before = net.rng.bit_generator.state["state"]
        batch = plane.broadcast_phase([], [])
        assert batch is None
        assert net.messages_sent == 0
        assert len(net.delivery_log) == 0
        assert net.rng.bit_generator.state["state"] == state_before
        # Collecting an empty phase still advances the window clock, exactly
        # as a scalar collect over no messages would.
        view = plane.collect_phase(batch, MessageKind.CONSENSUS_PROPOSAL, 0)
        assert net.scheduler.now == net.delay_model.synchronous_bound
        for j in range(len(node_ids)):
            assert list(view.messages_for(j)) == []

    def test_payload_table_interns_by_identity(self):
        net, node_ids = _network()
        plane = MessagePlane(net, node_ids)
        payload = {"commands": [1, 2]}
        ref_a = plane.register(payload)
        ref_b = plane.register(payload)
        assert ref_a == ref_b
        assert plane.payload(ref_a) is payload
        # An equal-but-distinct object gets its own ref (identity interning).
        assert plane.register({"commands": [1, 2]}) != ref_a

    def test_content_key_memoised_per_ref(self):
        net, node_ids = _network()
        plane = MessagePlane(net, node_ids)
        ref = plane.register({"commands": [4, 5]})
        calls = []

        def key_fn(payload):
            calls.append(payload)
            return tuple(payload["commands"])

        assert plane.content_key(ref, key_fn) == (4, 5)
        assert plane.content_key(ref, key_fn) == (4, 5)
        assert len(calls) == 1


class TestDeliveryLogLaziness:
    def test_scalar_appends_behave_like_a_list(self):
        net, node_ids = _network()
        message = _message("node-0", {"value": 1})
        message.recipient = "node-1"
        net.send(message)
        assert len(net.delivery_log) == 1
        assert net.delivery_log[0].message.sender == "node-0"
        assert [r.message.recipient for r in net.delivery_log] == ["node-1"]

    def test_phase_entries_expand_without_per_copy_appends(self):
        net, node_ids = _network()
        plane = MessagePlane(net, node_ids)
        templates = [_message("node-0", {"commands": [1]})]
        plane.broadcast_phase(templates, [plane.register(templates[0].payload)])
        # One broadcast to N nodes: N-1 non-self copies in the log.
        assert len(net.delivery_log) == len(node_ids) - 1
        recipients = [r.message.recipient for r in net.delivery_log]
        assert recipients == [n for n in node_ids if n != "node-0"]
        # Indexing and slicing work across the materialised view.
        assert net.delivery_log[-1].message.sender == "node-0"
        assert all(r.delivered for r in net.delivery_log)


class TestFastPathCounter:
    def _protocol(self, vectorised):
        from repro.core.config import CSMConfig
        from repro.core.protocol import CSMProtocol
        from repro.gf.prime_field import PrimeField
        from repro.machine.library import bank_account_machine

        field = PrimeField()
        machine = bank_account_machine(field, num_accounts=2)
        config = CSMConfig(
            field, num_nodes=6, num_machines=2, degree=machine.degree, num_faults=0
        )
        return CSMProtocol(
            config,
            machine,
            rng=np.random.default_rng(1),
            vectorised_consensus=vectorised,
        ), machine

    def test_disabled_plane_counts_fallback_rounds(self):
        protocol, machine = self._protocol(vectorised=False)
        batches = [
            np.random.default_rng(2).integers(
                1, 100, size=(2, machine.command_dim)
            )
            for _ in range(3)
        ]
        protocol.run_rounds_batched(batches)
        assert protocol.consensus.fast_path_disabled == 3
        assert protocol.consensus_fast_path_disabled == 3

    def test_enabled_plane_never_counts(self):
        protocol, machine = self._protocol(vectorised=True)
        batches = [
            np.random.default_rng(2).integers(
                1, 100, size=(2, machine.command_dim)
            )
            for _ in range(3)
        ]
        protocol.run_rounds_batched(batches)
        assert protocol.consensus_fast_path_disabled == 0

    def test_service_surfaces_backend_counter(self):
        from repro.service import CSMService

        protocol, machine = self._protocol(vectorised=False)
        service = CSMService(protocol, max_batch_rounds=2, min_fill=2)
        sessions = [service.connect(f"client:{k}") for k in range(2)]
        commands = np.random.default_rng(4).integers(
            1, 100, size=(2, 2, machine.command_dim)
        )
        for batch in commands:
            for k, session in enumerate(sessions):
                session.submit(k, batch[k])
        service.drain()
        assert service.consensus_fast_path_disabled == 2
