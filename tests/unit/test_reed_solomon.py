"""Unit tests for the Reed–Solomon code container and both decoders."""

import numpy as np
import pytest

from repro.exceptions import DecodingError, FieldError
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.erasure import ErasureDecoder, puncture
from repro.coding.gao import GaoDecoder
from repro.coding.radius import (
    composite_degree,
    max_dimension_for_errors,
    max_errors_correctable,
    max_faults_partially_synchronous,
    max_faults_synchronous,
    max_machines_partially_synchronous,
    max_machines_synchronous,
    required_length,
)
from repro.coding.reed_solomon import ReedSolomonCode
from repro.gf.polynomial import Poly


@pytest.fixture
def code(small_field):
    return ReedSolomonCode(small_field, small_field.distinct_points(15), 5)


class TestCodeContainer:
    def test_length_dimension_distance(self, code):
        assert code.length == 15
        assert code.dimension == 5
        assert code.minimum_distance == 11
        assert code.correction_radius == 5

    def test_duplicate_points_rejected(self, small_field):
        with pytest.raises(FieldError):
            ReedSolomonCode(small_field, [1, 1, 2], 2)

    def test_dimension_larger_than_length_rejected(self, small_field):
        with pytest.raises(FieldError):
            ReedSolomonCode(small_field, [1, 2, 3], 4)

    def test_field_too_small_rejected(self, small_field):
        with pytest.raises(FieldError):
            ReedSolomonCode(small_field, list(range(97)), 3)

    def test_encode_matches_polynomial_evaluation(self, code, small_field):
        poly = Poly(small_field, [1, 2, 3, 4, 5])
        codeword = code.encode([1, 2, 3, 4, 5])
        assert list(codeword) == [poly.evaluate(x) for x in code.evaluation_points]

    def test_encode_wrong_length_rejected(self, code):
        with pytest.raises(FieldError):
            code.encode([1, 2, 3])

    def test_encode_polynomial_degree_too_high_rejected(self, code, small_field):
        with pytest.raises(FieldError):
            code.encode_polynomial(Poly.monomial(small_field, 5))

    def test_is_codeword(self, code):
        codeword = code.encode([9, 8, 7, 6, 5])
        assert code.is_codeword(codeword)
        corrupted = codeword.copy()
        corrupted[0] = (corrupted[0] + 1) % 97
        assert not code.is_codeword(corrupted)

    def test_errors_against(self, code, small_field):
        poly = Poly(small_field, [1, 0, 0, 0, 1])
        word = code.encode_polynomial(poly).copy()
        word[3] = (word[3] + 5) % 97
        word[7] = (word[7] + 5) % 97
        assert code.errors_against(poly, word) == (3, 7)


@pytest.mark.parametrize("decoder_cls", [BerlekampWelchDecoder, GaoDecoder])
class TestErrorDecoders:
    def test_decodes_clean_codeword(self, code, decoder_cls):
        message = [3, 1, 4, 1, 5]
        result = decoder_cls(code).decode(code.encode(message))
        assert result.polynomial.coefficient_array(5).tolist() == message
        assert result.num_errors == 0

    def test_corrects_up_to_radius(self, code, decoder_cls, rng):
        message = [int(v) for v in rng.integers(0, 97, size=5)]
        codeword = code.encode(message)
        corrupted = codeword.copy()
        error_positions = rng.choice(code.length, size=code.correction_radius, replace=False)
        for pos in error_positions:
            corrupted[pos] = (corrupted[pos] + int(rng.integers(1, 97))) % 97
        result = decoder_cls(code).decode(corrupted)
        assert result.polynomial.coefficient_array(5).tolist() == message
        assert set(result.error_positions) <= set(int(p) for p in error_positions)

    def test_fails_beyond_radius(self, code, decoder_cls, rng):
        message = [int(v) for v in rng.integers(0, 97, size=5)]
        codeword = code.encode(message)
        corrupted = codeword.copy()
        # radius + 1 structured errors that do not form another codeword
        for pos in range(code.correction_radius + 1):
            corrupted[pos] = (corrupted[pos] + 1 + pos) % 97
        with pytest.raises(DecodingError):
            decoder_cls(code).decode(corrupted)

    def test_error_positions_reported(self, code, decoder_cls):
        codeword = code.encode([1, 2, 3, 4, 5])
        corrupted = codeword.copy()
        corrupted[2] = (corrupted[2] + 11) % 97
        corrupted[9] = (corrupted[9] + 22) % 97
        result = decoder_cls(code).decode(corrupted)
        assert set(result.error_positions) == {2, 9}

    def test_wrong_length_rejected(self, code, decoder_cls):
        with pytest.raises(DecodingError):
            decoder_cls(code).decode([1, 2, 3])


class TestBerlekampWelchSpecifics:
    def test_explicit_error_count(self, code, rng):
        message = [int(v) for v in rng.integers(0, 97, size=5)]
        corrupted = code.encode(message)
        corrupted[1] = (corrupted[1] + 3) % 97
        result = BerlekampWelchDecoder(code).decode(corrupted, num_errors=1)
        assert result.polynomial.coefficient_array(5).tolist() == message

    def test_trivial_code(self, small_field):
        code = ReedSolomonCode(small_field, [5], 1)
        result = BerlekampWelchDecoder(code).decode([42])
        assert result.polynomial.coeffs == [42]


class TestErasureDecoder:
    def test_erasures_only(self, code, rng):
        message = [int(v) for v in rng.integers(0, 97, size=5)]
        word = puncture(code.encode(message), [0, 4, 8, 12])
        result = ErasureDecoder(code).decode_erasures_only(word)
        assert result.polynomial.coefficient_array(5).tolist() == message

    def test_erasures_plus_errors(self, code, rng):
        message = [int(v) for v in rng.integers(0, 97, size=5)]
        codeword = code.encode(message)
        word = puncture(codeword, [1, 6])          # 2 erasures -> 13 survivors
        word[3] = (int(word[3]) + 7) % 97            # plus errors within radius
        word[10] = (int(word[10]) + 7) % 97
        result = ErasureDecoder(code).decode_with_erasures(word)
        assert result.polynomial.coefficient_array(5).tolist() == message
        assert set(result.error_positions) == {3, 10}

    def test_too_few_survivors_rejected(self, code):
        word = puncture(code.encode([1, 2, 3, 4, 5]), list(range(12)))
        with pytest.raises(DecodingError):
            ErasureDecoder(code).decode_with_erasures(word)

    def test_erasures_only_detects_inconsistency(self, code):
        word = puncture(code.encode([1, 2, 3, 4, 5]), [0])
        word[5] = (int(word[5]) + 1) % 97
        with pytest.raises(DecodingError):
            ErasureDecoder(code).decode_erasures_only(word)


class TestRadiusFormulas:
    def test_max_errors(self):
        assert max_errors_correctable(15, 5) == 5
        assert max_errors_correctable(16, 5) == 5
        with pytest.raises(ValueError):
            max_errors_correctable(4, 5)

    def test_max_dimension(self):
        assert max_dimension_for_errors(15, 5) == 5
        assert max_dimension_for_errors(10, 6) == 0

    def test_required_length(self):
        assert required_length(5, 5) == 15

    def test_composite_degree(self):
        assert composite_degree(4, 2) == 6
        with pytest.raises(ValueError):
            composite_degree(0, 2)

    def test_table2_machine_bounds(self):
        # N = 16, b = 3, d = 1:  K <= (16 - 7) / 1 + 1 = 10  (sync uses 2b)
        assert max_machines_synchronous(16, 3, 1) == 10
        # partial sync uses 3b: K <= (16 - 10) / 1 + 1 = 7
        assert max_machines_partially_synchronous(16, 3, 1) == 7

    def test_table2_fault_bounds(self):
        assert max_faults_synchronous(16, 4, 1) == 6   # (16 - 3 - 1) / 2
        assert max_faults_partially_synchronous(16, 4, 1) == 4  # (16 - 3 - 1) / 3

    def test_fault_bounds_infeasible(self):
        assert max_faults_synchronous(4, 8, 2) == -1
