"""Unit tests for the QoS subsystem: policy config, selection, backpressure.

Covers :class:`~repro.service.qos.QosPolicy` validation and the
enabled/disabled contract, the stride arithmetic of
:class:`~repro.service.qos.WeightedFairSelection` (weight shares, strict
priority lanes, sequence tie-breaks, late-joiner pass initialisation),
per-session queue caps and admission shedding through
:class:`~repro.service.service.CSMService`, the global cap across
:class:`~repro.service.sharding.ShardedCSMService` shards, and the merged
``qos_report`` counters the traffic reports are built from.
"""

import numpy as np
import pytest

from repro.consensus.command_pool import SubmittedCommand
from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.machine.library import bank_account_machine
from repro.service import (
    CSMService,
    FifoSelection,
    QosPolicy,
    ShardedCSMService,
    ThrottleReason,
    TicketState,
    WeightedFairSelection,
)


def _csm_protocol(field, num_machines=3, num_nodes=6, seed=7):
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=0,
    )
    return CSMProtocol(config, machine, rng=np.random.default_rng(seed))


def _entry(client_id, sequence, machine_index=0):
    return SubmittedCommand(
        machine_index=machine_index,
        client_id=client_id,
        command=(1, 2),
        sequence=sequence,
    )


class TestQosPolicyConfig:
    def test_default_policy_is_disabled_and_fifo(self):
        policy = QosPolicy()
        assert not policy.enabled
        assert policy.build_selector() is None
        assert policy.describe() == {
            "enabled": False,
            "max_session_pending": None,
            "admission_watermark": None,
            "selection": "fifo",
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_session_pending": 4},
            {"admission_watermark": 10},
            {"selection": "weighted_fair"},
        ],
    )
    def test_any_knob_enables_the_policy(self, kwargs):
        assert QosPolicy(**kwargs).enabled

    def test_weighted_fair_builds_a_configured_selector(self):
        policy = QosPolicy(
            selection="weighted_fair",
            session_weights={"a": 3},
            default_weight=2,
            session_priorities={"b": 1},
            default_priority=0,
        )
        selector = policy.build_selector()
        assert isinstance(selector, WeightedFairSelection)
        assert selector.weight_of("a") == 3
        assert selector.weight_of("unknown") == 2
        assert selector.priority_of("b") == 1
        assert selector.priority_of("unknown") == 0
        # One selector per scheduler: stride passes must not be shared.
        assert policy.build_selector() is not selector

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"selection": "lifo"},
            {"max_session_pending": 0},
            {"admission_watermark": 0},
            {"default_weight": 0},
            {"session_weights": {"a": 0}},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            QosPolicy(**kwargs)

    def test_selector_weight_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedFairSelection(weights={"a": 0})
        with pytest.raises(ConfigurationError):
            WeightedFairSelection(default_weight=-1)


class TestFifoSelection:
    def test_returns_queue_head(self):
        candidates = [_entry("b", 5), _entry("a", 6), _entry("c", 7)]
        assert FifoSelection().select(0, candidates) is candidates[0]


def _drain_with(selector, entries):
    """Repeatedly select-and-remove until the queue empties; return client order."""
    queue = list(entries)
    order = []
    while queue:
        chosen = selector.select(0, queue)
        queue.remove(chosen)
        order.append(chosen.client_id)
    return order


class TestWeightedFairSelection:
    def test_weight_two_gets_twice_the_slots(self):
        selector = WeightedFairSelection(weights={"a": 2, "b": 1})
        entries = [
            _entry("a" if s % 2 == 0 else "b", s) for s in range(18)
        ]
        order = _drain_with(selector, entries)
        first_nine = order[:9]
        assert first_nine.count("a") == 6
        assert first_nine.count("b") == 3

    def test_strict_priority_lane_always_wins(self):
        selector = WeightedFairSelection(priorities={"vip": 1})
        entries = [_entry("bulk", s) for s in range(4)] + [
            _entry("vip", s) for s in range(4, 7)
        ]
        order = _drain_with(selector, entries)
        # Every vip entry drains before any bulk entry, despite arriving later.
        assert order == ["vip"] * 3 + ["bulk"] * 4

    def test_ties_break_on_older_sequence(self):
        selector = WeightedFairSelection()
        first = selector.select(0, [_entry("late", 9), _entry("early", 3)])
        assert first.client_id == "early"

    def test_late_joiner_enters_at_the_pass_floor(self):
        selector = WeightedFairSelection()
        solo = [_entry("a", s) for s in range(6)]
        for _ in range(6):
            chosen = selector.select(0, solo)
            solo.remove(chosen)
        # "b" joins after "a" accrued 6 slots of pass: it must neither wait
        # for "a"'s pass to be caught up to (no monopoly for b) nor be
        # starved; from here the two alternate.
        mixed = [_entry("a", s) for s in range(6, 12)] + [
            _entry("b", s) for s in range(12, 18)
        ]
        order = _drain_with(selector, mixed)
        assert sorted(order[:2]) == ["a", "b"]
        assert order[:6].count("a") == 3
        assert order[:6].count("b") == 3

    def test_fifo_preserved_within_a_session(self):
        selector = WeightedFairSelection(weights={"a": 2, "b": 1})
        entries = [_entry("a", s) for s in range(5)] + [
            _entry("b", s) for s in range(5, 10)
        ]
        queue = list(entries)
        sequences = {"a": [], "b": []}
        while queue:
            chosen = selector.select(0, queue)
            queue.remove(chosen)
            sequences[chosen.client_id].append(chosen.sequence)
        assert sequences["a"] == sorted(sequences["a"])
        assert sequences["b"] == sorted(sequences["b"])


class TestSessionQueueCap:
    def test_submit_over_cap_returns_throttled_ticket(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(max_session_pending=2)
        )
        session = service.connect("alice")
        ok = [session.submit(0, [10, 20]), session.submit(1, [30, 40])]
        over = session.submit(2, [50, 60])
        assert all(t.state is TicketState.PENDING for t in ok)
        assert over.state is TicketState.THROTTLED
        assert over.done
        assert over.throttle_reason is ThrottleReason.SESSION_QUEUE_FULL
        assert over.error and "alice" in over.error
        assert session.throttled() == [over]
        # The shed command never entered the pool, but still drew a sequence.
        assert service.pending_commands() == 2
        assert over.sequence > ok[-1].sequence

    def test_resolving_tickets_releases_capacity(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(max_session_pending=1)
        )
        session = service.connect("alice")
        first = session.submit(0, [10, 20])
        assert session.submit(0, [11, 21]).state is TicketState.THROTTLED
        service.drive(flush=True)
        assert first.state is TicketState.EXECUTED
        assert service.open_tickets("alice") == 0
        retry = session.submit(0, [11, 21])
        assert retry.state is TicketState.PENDING

    def test_cap_is_per_session(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(max_session_pending=1)
        )
        alice = service.connect("alice")
        bob = service.connect("bob")
        assert alice.submit(0, [1, 2]).state is TicketState.PENDING
        assert bob.submit(0, [3, 4]).state is TicketState.PENDING
        assert alice.submit(0, [5, 6]).state is TicketState.THROTTLED
        assert bob.submit(0, [7, 8]).state is TicketState.THROTTLED


class TestAdmissionControl:
    def test_watermark_sheds_every_session(self, big_field):
        service = CSMService(
            _csm_protocol(big_field), qos=QosPolicy(admission_watermark=2)
        )
        alice = service.connect("alice")
        bob = service.connect("bob")
        assert alice.submit(0, [1, 2]).state is TicketState.PENDING
        assert alice.submit(1, [3, 4]).state is TicketState.PENDING
        shed = bob.submit(2, [5, 6])
        assert shed.state is TicketState.THROTTLED
        assert shed.throttle_reason is ThrottleReason.ADMISSION_SHED
        # Draining the backlog re-opens admission.
        service.drive(flush=True)
        assert bob.submit(2, [5, 6]).state is TicketState.PENDING

    def test_session_cap_checked_before_watermark(self, big_field):
        service = CSMService(
            _csm_protocol(big_field),
            qos=QosPolicy(max_session_pending=1, admission_watermark=1),
        )
        session = service.connect("alice")
        session.submit(0, [1, 2])
        over = session.submit(0, [3, 4])
        assert over.throttle_reason is ThrottleReason.SESSION_QUEUE_FULL


class TestQosReport:
    def test_counters_and_policy_description(self, big_field):
        qos = QosPolicy(max_session_pending=1, admission_watermark=2)
        service = CSMService(_csm_protocol(big_field), qos=qos)
        session = service.connect("alice")
        session.submit(0, [1, 2])
        session.submit(0, [3, 4])  # session cap (alice already holds 1)
        service.connect("bob").submit(1, [5, 6])
        # carol holds nothing, so only the watermark can throttle her: the
        # pool already holds 2 commands, at the shed threshold.
        service.connect("carol").submit(2, [7, 8])
        report = service.qos_report()
        assert report["policy"] == qos.describe()
        assert report["pending"] == 2
        assert report["open_tickets"] == 2
        assert report["throttled_session"] == 1
        assert report["throttled_admission"] == 1
        assert report["tick"] == service.clock.now

    def test_report_without_policy_shows_disabled_defaults(self, big_field):
        report = CSMService(_csm_protocol(big_field)).qos_report()
        assert report["policy"]["enabled"] is False
        assert report["throttled_session"] == 0
        assert report["throttled_admission"] == 0


class TestWeightedFairThroughService:
    def test_weight_two_session_drains_first(self, big_field):
        # Saturate one machine from two sessions; with max_batch_rounds=1
        # each tick grants machine 0 exactly one slot, so the stride shares
        # are directly visible in the execution order.
        qos = QosPolicy(selection="weighted_fair", session_weights={"heavy": 2})
        service = CSMService(
            _csm_protocol(big_field), max_batch_rounds=1, qos=qos
        )
        heavy = service.connect("heavy")
        light = service.connect("light")
        heavy_tickets = [heavy.submit(0, [1, v]) for v in range(1, 7)]
        light_tickets = [light.submit(0, [2, v]) for v in range(1, 7)]
        for _ in range(6):
            service.drive()
        executed_heavy = sum(
            1 for t in heavy_tickets if t.state is TicketState.EXECUTED
        )
        executed_light = sum(
            1 for t in light_tickets if t.state is TicketState.EXECUTED
        )
        assert executed_heavy == 4
        assert executed_light == 2
        service.drain()
        assert all(
            t.state is TicketState.EXECUTED
            for t in heavy_tickets + light_tickets
        )


class TestShardedQos:
    def _sharded(self, field, qos):
        backends = [
            _csm_protocol(field, seed=11 + shard) for shard in range(2)
        ]
        return ShardedCSMService(backends, qos=qos)

    def test_session_cap_is_global_across_shards(self, big_field):
        service = self._sharded(big_field, QosPolicy(max_session_pending=2))
        session = service.connect("alice")
        shard_width = service.num_machines // 2
        first = session.submit(0, [1, 2])  # shard 0
        second = session.submit(shard_width, [3, 4])  # shard 1
        assert first.state is second.state is TicketState.PENDING
        # Each shard holds only one open ticket, yet the third submit must
        # throttle: the cap counts the session's tickets across all shards.
        over = session.submit(0, [5, 6])
        assert over.state is TicketState.THROTTLED
        assert over.throttle_reason is ThrottleReason.SESSION_QUEUE_FULL
        assert over.machine_index == 0
        service.drain()
        assert session.submit(0, [5, 6]).state is TicketState.PENDING

    def test_merged_report_sums_shards(self, big_field):
        service = self._sharded(big_field, QosPolicy(max_session_pending=1))
        shard_width = service.num_machines // 2
        a, b = service.connect("a"), service.connect("b")
        a.submit(0, [1, 2])
        a.submit(shard_width, [3, 4])  # global cap -> throttled
        b.submit(shard_width, [5, 6])
        report = service.qos_report()
        assert report["pending"] == 2
        assert report["open_tickets"] == 2
        assert report["throttled_session"] == 1
        assert len(report["shards"]) == 2
        assert report["tick"] == service.clock.now

    def test_sequences_stay_globally_ordered_with_throttles(self, big_field):
        service = self._sharded(big_field, QosPolicy(max_session_pending=1))
        session = service.connect("alice")
        shard_width = service.num_machines // 2
        tickets = [
            session.submit(0, [1, 2]),
            session.submit(shard_width, [3, 4]),  # throttled (global cap)
            session.submit(0, [5, 6]),  # throttled
        ]
        sequences = [t.sequence for t in tickets]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
