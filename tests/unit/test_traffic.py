"""Unit tests for the open-loop traffic generator and latency accounting.

Covers nearest-rank :func:`~repro.service.traffic.latency_percentiles`,
determinism of the :class:`~repro.service.traffic.PoissonProcess` and
:class:`~repro.service.traffic.BurstyProcess` arrival models, and the
:class:`~repro.service.traffic.OpenLoopDriver` — seed reproducibility,
ticket bookkeeping, logical-tick latency stamping and the report invariants
the benchmarks rely on.
"""

import numpy as np
import pytest

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.machine.library import bank_account_machine
from repro.rng import default_stream
from repro.service import (
    BurstyProcess,
    CSMService,
    OpenLoopDriver,
    PoissonProcess,
    latency_percentiles,
)


def _service(field, seed=7, **kwargs):
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field=field,
        num_nodes=6,
        num_machines=3,
        degree=machine.degree,
        num_faults=0,
    )
    protocol = CSMProtocol(config, machine, rng=np.random.default_rng(seed))
    return CSMService(protocol, **kwargs)


class TestLatencyPercentiles:
    def test_nearest_rank_on_known_sample(self):
        out = latency_percentiles(range(1, 11))
        assert out == {"p50": 5.0, "p90": 9.0, "p99": 10.0}

    def test_single_sample_is_every_percentile(self):
        assert latency_percentiles([7]) == {"p50": 7.0, "p90": 7.0, "p99": 7.0}

    def test_empty_sample_reports_none_not_zero(self):
        assert latency_percentiles([]) == {"p50": None, "p90": None, "p99": None}

    def test_reported_values_actually_occurred(self):
        sample = [3, 1, 4, 1, 5, 9, 2, 6]
        out = latency_percentiles(sample, percentiles=(25, 50, 75, 100))
        assert all(v in [float(s) for s in sample] for v in out.values())

    @pytest.mark.parametrize("bad", [0, -5, 101])
    def test_out_of_range_percentile_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            latency_percentiles([1, 2, 3], percentiles=(bad,))


class TestArrivalProcesses:
    def test_poisson_rejects_nonpositive_rate(self):
        for rate in (0, -1.5):
            with pytest.raises(ConfigurationError):
                PoissonProcess(rate)

    def test_poisson_same_stream_same_arrivals(self):
        a = [PoissonProcess(2.0).sample(default_stream(3), 8) for _ in range(2)]
        np.testing.assert_array_equal(a[0], a[1])
        assert a[0].shape == (8,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_rate": 0},
            {"on_rate": 2.0, "off_rate": -0.1},
            {"on_rate": 2.0, "p_on_off": 0},
            {"on_rate": 2.0, "p_off_on": 1.5},
        ],
    )
    def test_bursty_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            BurstyProcess(**kwargs)

    def test_bursty_off_start_is_silent_until_a_flip(self):
        # All sessions start off with off_rate 0; p_off_on=1 guarantees the
        # flip, so tick 1 is silent and tick 2 bursts.
        process = BurstyProcess(on_rate=5.0, p_off_on=1.0, p_on_off=0.01)
        rng = default_stream(0)
        first = process.sample(rng, 6)
        second = process.sample(rng, 6)
        np.testing.assert_array_equal(first, np.zeros(6, dtype=first.dtype))
        assert second.sum() > 0

    def test_bursty_session_count_is_pinned(self):
        process = BurstyProcess(on_rate=1.0)
        process.sample(default_stream(0), 4)
        with pytest.raises(ConfigurationError):
            process.sample(default_stream(0), 5)

    def test_bursty_same_stream_same_trace(self):
        traces = []
        for _ in range(2):
            process = BurstyProcess(on_rate=3.0, p_off_on=0.5)
            rng = default_stream(11)
            traces.append([process.sample(rng, 5).tolist() for _ in range(6)])
        assert traces[0] == traces[1]


class TestOpenLoopDriver:
    def test_constructor_validation(self, big_field):
        service = _service(big_field)
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(service, PoissonProcess(1.0), num_sessions=0)
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(service, "not-a-process", num_sessions=2)
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(
                service, PoissonProcess(1.0), num_sessions=2, command_low=5,
                command_high=5,
            )
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(service, PoissonProcess(1.0), num_sessions=2).run(0)

    def test_sessions_spread_round_robin_over_machines(self, big_field):
        service = _service(big_field)
        driver = OpenLoopDriver(
            service, PoissonProcess(1.0), num_sessions=5, rng=default_stream(1)
        )
        assert [s.client_id for s in driver.sessions] == [
            f"traffic:{i}" for i in range(5)
        ]
        assert driver._cursors == [0, 1, 2, 0, 1]

    def test_same_seed_reproduces_the_full_report(self, big_field):
        reports = []
        for _ in range(2):
            driver = OpenLoopDriver(
                _service(big_field),
                PoissonProcess(1.5),
                num_sessions=4,
                rng=default_stream(5),
            )
            reports.append(driver.run(ticks=6).as_dict())
        assert reports[0] == reports[1]

    def test_report_accounts_for_every_ticket(self, big_field):
        driver = OpenLoopDriver(
            _service(big_field),
            PoissonProcess(2.0),
            num_sessions=4,
            rng=default_stream(2),
        )
        report = driver.run(ticks=5)
        assert report.submitted > 0
        assert report.submitted == (
            report.executed + report.failed + report.pending + report.throttled
        )
        # Drained run with no QoS: everything submitted was delivered.
        assert report.pending == 0
        assert report.throttled == 0
        assert report.executed == report.submitted
        assert sum(report.executed_by_session.values()) == report.executed
        assert report.ticks == 5

    def test_latencies_are_logical_ticks(self, big_field):
        driver = OpenLoopDriver(
            _service(big_field),
            PoissonProcess(1.0),
            num_sessions=3,
            rng=default_stream(8),
        )
        report = driver.run(ticks=4)
        for ticket in driver._tickets():
            assert ticket.submitted_tick is not None
            if ticket.commit_latency is not None:
                assert ticket.commit_latency >= 1
            if ticket.execute_latency is not None:
                assert ticket.execute_latency >= ticket.commit_latency
        p50 = report.commit_latency["p50"]
        p99 = report.commit_latency["p99"]
        assert p50 is not None and p99 is not None and 1 <= p50 <= p99

    def test_max_pending_sees_the_pre_drive_backlog(self, big_field):
        # max_batch_rounds=1 drains at most one slot per machine per tick,
        # so an offered load above K/tick must leave a visible backlog.
        driver = OpenLoopDriver(
            _service(big_field, max_batch_rounds=1),
            PoissonProcess(3.0),
            num_sessions=4,
            rng=default_stream(3),
        )
        report = driver.run(ticks=6, drain=False)
        assert report.max_pending > 3
        assert report.pending > 0
