"""Unit tests for the replication baselines and client output acceptance."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SecurityViolation
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior
from repro.replication.client import OutputCollector, majority_value
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR


class TestOutputCollector:
    def test_majority_value(self):
        assert majority_value([(1,), (1,), (2,)]) == (1,)
        assert majority_value([(1,), (2,)]) is None
        assert majority_value([]) is None

    def test_threshold_acceptance(self):
        collector = OutputCollector(machine_index=0, round_index=0)
        collector.add_response("a", np.array([5]))
        collector.add_response("b", np.array([5]))
        collector.add_response("c", np.array([9]))
        assert collector.accept_with_threshold(2) == (5,)
        assert collector.accept_with_threshold(3) is None
        assert collector.accept_majority() == (5,)

    def test_verify_against_raises_on_wrong_accepted_value(self):
        collector = OutputCollector(machine_index=0, round_index=0)
        collector.add_response("a", np.array([9]))
        collector.add_response("b", np.array([9]))
        with pytest.raises(SecurityViolation):
            collector.verify_against(np.array([5]), threshold=2)

    def test_verify_against_true_when_correct(self):
        collector = OutputCollector(machine_index=0, round_index=0)
        collector.add_response("a", np.array([5]))
        assert collector.verify_against(np.array([5]), threshold=1)

    def test_conflicting_threshold_values_raise(self):
        # Two *distinct* values each backed by >= threshold nodes means at
        # least one honest node supported each — the fault bound is broken,
        # and picking the Counter-insertion-order winner would be arbitrary.
        collector = OutputCollector(machine_index=0, round_index=0)
        collector.add_response("a", np.array([5]))
        collector.add_response("b", np.array([5]))
        collector.add_response("c", np.array([9]))
        collector.add_response("d", np.array([9]))
        with pytest.raises(SecurityViolation):
            collector.accept_with_threshold(2)
        # A threshold only one value reaches still accepts normally.
        collector.add_response("e", np.array([5]))
        assert collector.accept_with_threshold(3) == (5,)


def _node_ids(n):
    return [f"node-{i}" for i in range(n)]


class TestFullReplication:
    def test_honest_round_correct_and_states_advance(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        engine = FullReplicationSMR(machine, 3, _node_ids(5))
        commands = np.array([[1, 1], [2, 2], [3, 3]])
        result = engine.execute_round(commands)
        assert result.correct
        assert result.outputs.tolist() == commands.tolist()
        assert engine.states.tolist() == commands.tolist()
        # second round accumulates
        result2 = engine.execute_round(commands)
        assert result2.outputs.tolist() == (2 * commands).tolist()

    def test_tolerates_minority_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        behaviors = {"node-0": RandomGarbageBehavior(), "node-1": RandomGarbageBehavior()}
        engine = FullReplicationSMR(machine, 2, _node_ids(5), behaviors, np.random.default_rng(0))
        result = engine.execute_round(np.array([[4], [5]]))
        assert result.correct

    def test_majority_faults_break_it(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        behaviors = {f"node-{i}": SilentBehavior() for i in range(3)}
        engine = FullReplicationSMR(machine, 2, _node_ids(5), behaviors, np.random.default_rng(0))
        result = engine.execute_round(np.array([[4], [5]]))
        # With 3 of 5 silent, only 2 responses arrive < threshold b+1 = 4.
        assert not result.correct

    def test_security_bound_and_storage(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        engine = FullReplicationSMR(machine, 2, _node_ids(9))
        assert engine.security_bound() == 4
        assert engine.security_bound(partially_synchronous=True) == 2
        assert engine.storage_efficiency == 1.0

    def test_ops_per_node_scale_with_k(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        small = FullReplicationSMR(machine, 2, _node_ids(4))
        large = FullReplicationSMR(
            bank_account_machine(big_field, num_accounts=1), 8, _node_ids(4)
        )
        ops_small = small.execute_round(np.ones((2, 1), dtype=int)).mean_ops_per_node
        ops_large = large.execute_round(np.ones((8, 1), dtype=int)).mean_ops_per_node
        assert ops_large > ops_small

    def test_command_shape_validation(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        engine = FullReplicationSMR(machine, 2, _node_ids(3))
        with pytest.raises(ConfigurationError):
            engine.execute_round(np.zeros((3, 2), dtype=int))


class TestPartialReplication:
    def test_group_partition(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        engine = PartialReplicationSMR(machine, 3, _node_ids(9))
        assert engine.group_size == 3
        assert engine.group_of("node-0") == 0
        assert engine.group_of("node-8") == 2

    def test_requires_k_divides_n(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        with pytest.raises(ConfigurationError):
            PartialReplicationSMR(machine, 3, _node_ids(10))

    def test_honest_round_correct(self, big_field):
        machine = quadratic_market_machine(big_field)
        engine = PartialReplicationSMR(machine, 2, _node_ids(6))
        result = engine.execute_round(np.array([[1, 2], [3, 4]]))
        assert result.correct

    def test_security_collapses_to_group_majority(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        # 8 nodes, 4 machines -> groups of 2; a single fault in a group breaks it
        # (majority of 2 requires both nodes to agree).
        behaviors = {"node-0": RandomGarbageBehavior()}
        engine = PartialReplicationSMR(machine, 4, _node_ids(8), behaviors, np.random.default_rng(0))
        result = engine.execute_round(np.ones((4, 1), dtype=int))
        assert not result.correct
        assert engine.security_bound() == 0

    def test_same_faults_spread_across_groups_are_harmless(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        # 12 nodes, 3 machines -> groups of 4; one fault per group tolerated.
        behaviors = {
            "node-0": RandomGarbageBehavior(),
            "node-4": RandomGarbageBehavior(),
            "node-8": RandomGarbageBehavior(),
        }
        engine = PartialReplicationSMR(machine, 3, _node_ids(12), behaviors, np.random.default_rng(0))
        result = engine.execute_round(np.ones((3, 1), dtype=int))
        assert result.correct

    def test_storage_efficiency_is_k(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        engine = PartialReplicationSMR(machine, 4, _node_ids(8))
        assert engine.storage_efficiency == 4.0

    def test_throughput_advantage_over_full_replication(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        k, n = 4, 8
        commands = np.ones((k, 1), dtype=int)
        full = FullReplicationSMR(
            bank_account_machine(big_field, num_accounts=1), k, _node_ids(n)
        ).execute_round(commands)
        partial = PartialReplicationSMR(machine, k, _node_ids(n)).execute_round(commands)
        assert partial.throughput(k) > full.throughput(k)
