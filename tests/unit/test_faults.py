"""Unit tests for the fault-injection plane.

Covers the schedule builders and their validation, the behaviour-spec
grammar (``onset:``/``burst:``/``until:`` combinators over the legacy
names), the network fault switchboard (drops, delays, partitions applied
*after* the delay draw), and the injector: capability validation, exact
round-boundary segmentation, crash/recover with state transfer, adaptive
targets and the fault report's books.
"""

import numpy as np
import pytest

from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.machine.library import bank_account_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    CrashedBehavior,
    FaultOnsetBehavior,
    SilentBehavior,
    WindowedBehavior,
    behavior_from_name,
)
from repro.net.message import Message, MessageKind
from repro.net.network import NetworkFaultState, SimulatedNetwork
from repro.rng import default_stream
from repro.service import CSMService


def _csm_protocol(field, num_machines=3, num_nodes=12, seed=7):
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=1,
    )
    return CSMProtocol(config, machine, None, rng=np.random.default_rng(seed))


def _submit_rounds(service, rounds, num_machines=3):
    session = service.connect("alice")
    tickets = []
    for r in range(rounds):
        for k in range(num_machines):
            tickets.append(session.submit(k, [10 + r, k]))
    return tickets


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(round_index=-1, kind="crash", target="node-0")
        with pytest.raises(ConfigurationError):
            FaultEvent(round_index=0, kind="meteor-strike")

    def test_builders_pair_onset_and_recovery_events(self):
        schedule = (
            FaultSchedule()
            .crash("node-3", at=2, until=5)
            .behavior("node-1", "corrupt", at=4, until=6)
            .drop_link("node-0", "node-2", at=1, until=3)
            .delay(0.5, at=0, until=2)
            .partition([["node-0", "node-1"], ["node-2"]], at=7, until=9)
        )
        kinds = [event.kind for event in schedule.events]
        assert kinds == [
            "delay",
            "drop-link",
            "crash",
            "undelay",
            "undrop-link",
            "behavior",
            "recover",
            "restore",
            "partition",
            "heal",
        ]
        assert schedule.max_round() == 9
        assert schedule.has_node_events() and schedule.has_network_events()

    def test_events_sorted_stably_within_a_round(self):
        schedule = (
            FaultSchedule()
            .add(FaultEvent(round_index=2, kind="crash", target="node-1"))
            .add(FaultEvent(round_index=0, kind="crash", target="node-2"))
            .add(FaultEvent(round_index=2, kind="recover", target="node-1"))
        )
        assert [(e.round_index, e.kind) for e in schedule.events] == [
            (0, "crash"),
            (2, "crash"),
            (2, "recover"),
        ]

    def test_empty_schedule(self):
        schedule = FaultSchedule.empty()
        assert schedule.is_empty()
        assert schedule.max_round() == -1
        assert schedule.describe() == []

    def test_span_and_group_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().crash("node-0", at=3, until=3)
        with pytest.raises(ConfigurationError):
            FaultSchedule().delay(0.0, at=0, until=2)
        with pytest.raises(ConfigurationError):
            FaultSchedule().partition([["node-0", "node-1"]], at=0, until=2)

    def test_random_schedule_is_seed_deterministic_and_bounded(self):
        nodes = [f"node-{i}" for i in range(8)]
        a = FaultSchedule.random(default_stream(11), nodes, 20, max_concurrent=2)
        b = FaultSchedule.random(default_stream(11), nodes, 20, max_concurrent=2)
        assert a.describe() == b.describe()
        # every crash is paired with a recovery, so concurrency is bounded
        active: set[str] = set()
        peak = 0
        for event in a.events:
            if event.kind == "crash":
                active.add(event.target)
            elif event.kind == "recover":
                active.discard(event.target)
            peak = max(peak, len(active))
        assert peak <= 2


class TestBehaviorSpecGrammar:
    def test_legacy_names_still_work(self):
        assert isinstance(behavior_from_name("silent"), SilentBehavior)
        assert isinstance(behavior_from_name("corrupt"), CorruptResultBehavior)
        assert isinstance(behavior_from_name("crash"), CrashedBehavior)

    def test_onset_spec_matches_fault_onset_behavior(self):
        spec = behavior_from_name("onset:5:liar")
        assert isinstance(spec, WindowedBehavior)
        assert spec.start_round == 5 and spec.end_round is None
        assert isinstance(spec.inner, CorruptResultBehavior)

    def test_burst_spec_is_a_bounded_window(self):
        spec = behavior_from_name("burst:3-7:silent")
        assert isinstance(spec, WindowedBehavior)
        # burst bounds are inclusive: rounds 3..7
        assert spec.start_round == 3 and spec.end_round == 8
        assert isinstance(spec.inner, SilentBehavior)

    def test_until_spec_starts_active(self):
        spec = behavior_from_name("until:4:garbage")
        assert spec.start_round == 0 and spec.end_round == 4

    def test_windowed_behavior_activates_exactly_in_window(self, big_field):
        behavior = WindowedBehavior(SilentBehavior(), start_round=1, end_round=3)
        rng = default_stream(0)
        dropped = [
            behavior.transform_result(big_field, "n", np.array([5, 5]), rng) is None
            for _ in range(5)
        ]
        assert dropped == [False, True, True, False, False]

    def test_fault_onset_compat_subclass(self):
        behavior = FaultOnsetBehavior(CorruptResultBehavior(), onset_round=2)
        assert isinstance(behavior, WindowedBehavior)
        assert behavior.onset_round == 2
        with pytest.raises(ValueError):
            FaultOnsetBehavior(SilentBehavior(), onset_round=-1)

    def test_grammar_errors(self):
        with pytest.raises(ValueError):
            behavior_from_name("onset:5")  # missing inner spec
        with pytest.raises(ValueError):
            behavior_from_name("burst:7-3:silent")  # inverted span
        with pytest.raises(ValueError):
            behavior_from_name("sometimes-wrong")  # unknown name


class TestNetworkFaultState:
    def test_inactive_by_default(self):
        faults = NetworkFaultState()
        assert not faults.active
        assert not faults.should_drop("a", "b")

    def test_drop_rules(self):
        faults = NetworkFaultState()
        faults.dropped_nodes.add("node-1")
        faults.dropped_links.add(("node-2", "node-3"))
        assert faults.active
        assert faults.should_drop("node-1", "node-0")
        assert faults.should_drop("node-0", "node-1")
        assert faults.should_drop("node-2", "node-3")
        assert not faults.should_drop("node-3", "node-2")  # links are directed
        assert not faults.should_drop("node-1", "node-1")  # self-sends survive

    def test_partition_drops_cross_group_only(self):
        faults = NetworkFaultState()
        faults.set_partition([["node-0", "node-1"], ["node-2"]])
        assert faults.should_drop("node-0", "node-2")
        assert not faults.should_drop("node-0", "node-1")
        # endpoints outside every group (clients) stay reachable
        assert not faults.should_drop("client:0", "node-0")
        faults.clear()
        assert not faults.active

    def test_network_send_honours_drops_and_counts_them(self):
        network = SimulatedNetwork(rng=default_stream(3))
        network.register("node-0")
        network.register("node-1")
        network.faults.dropped_nodes.add("node-1")
        record = network.send(
            Message(
                sender="node-0",
                recipient="node-1",
                kind=MessageKind.CODED_RESULT,
                round_index=0,
                payload={"v": 1},
            )
        )
        assert not record.delivered
        assert network.faults.dropped_messages == 1
        network.scheduler.run_until(record.delivery_time + 1.0)
        assert network.collect("node-1") == []

    def test_extra_delay_applies_after_the_rng_draw(self):
        plain = SimulatedNetwork(rng=default_stream(5))
        delayed = SimulatedNetwork(rng=default_stream(5))
        for network in (plain, delayed):
            network.register("node-0")
            network.register("node-1")
        delayed.faults.extra_delay = 2.5
        message = dict(
            kind=MessageKind.CODED_RESULT, round_index=0, payload={"v": 1}
        )
        a = plain.send(Message(sender="node-0", recipient="node-1", **message))
        b = delayed.send(Message(sender="node-0", recipient="node-1", **message))
        assert b.delivery_time == pytest.approx(a.delivery_time + 2.5)
        # the rng stream is untouched by the fault state
        assert (
            plain.rng.bit_generator.state == delayed.rng.bit_generator.state
        )


class TestFaultInjector:
    def test_node_events_need_a_behaviour_plane(self, big_field):
        from repro.intermix.rounds import DelegationRoundProtocol

        machine = bank_account_machine(big_field, num_accounts=2)
        backend = DelegationRoundProtocol(
            machine, 3, [f"node-{i}" for i in range(8)], rng=default_stream(3)
        )
        with pytest.raises(ConfigurationError):
            FaultInjector(backend, FaultSchedule().crash("node-0", at=0))
        with pytest.raises(ConfigurationError):
            FaultInjector(backend, FaultSchedule().delay(1.0, at=0, until=2))

    def test_events_fire_at_exact_round_boundaries(self, big_field):
        # Five corrupt rows exceed the decode radius (N=12, K=3 corrects 4),
        # so exactly the burst rounds [2, 4) fail and everything else
        # verifies — proving the batch was split at the event boundaries.
        protocol = _csm_protocol(big_field)
        schedule = FaultSchedule()
        for i in range(5):
            schedule.behavior(f"node-{i}", "corrupt", at=2, until=4)
        service = CSMService(protocol, faults=schedule)
        _submit_rounds(service, 6)
        service.drain()
        assert [record.correct for record in protocol.history] == [
            True,
            True,
            False,
            False,
            True,
            True,
        ]
        report = service.fault_report()
        assert report.injected_events == 10
        assert report.applied_events == 10
        assert report.pending_events == 0

    def test_crash_recover_resyncs_and_keeps_rounds_verifying(self, big_field):
        protocol = _csm_protocol(big_field)
        schedule = FaultSchedule().crash("node-2", at=1, until=3)
        service = CSMService(protocol, faults=schedule)
        _submit_rounds(service, 5)
        service.drain()
        # one crashed row is within the decode radius: every round verifies
        assert protocol.all_rounds_correct
        report = service.fault_report()
        assert report.applied_events == 2
        assert report.crashed_nodes == []  # recovered
        # after recovery the node is honest again (behaviour map cleared)
        assert protocol.node_behavior("node-2") is None

    def test_unrecovered_crash_shows_in_the_report(self, big_field):
        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol, faults=FaultSchedule().crash("node-4", at=0)
        )
        _submit_rounds(service, 2)
        service.drain()
        report = service.fault_report()
        assert report.crashed_nodes == ["node-4"]
        assert isinstance(protocol.node_behavior("node-4"), CrashedBehavior)

    def test_events_beyond_driven_rounds_stay_pending(self, big_field):
        protocol = _csm_protocol(big_field)
        service = CSMService(
            protocol, faults=FaultSchedule().crash("node-0", at=50, until=52)
        )
        _submit_rounds(service, 2)
        service.drain()
        report = service.fault_report()
        assert report.injected_events == 2
        assert report.applied_events == 0
        assert report.pending_events == 2

    def test_adaptive_primary_target_resolves(self, big_field):
        protocol = _csm_protocol(big_field)
        resolved = protocol.resolve_fault_target("@primary", 0)
        assert resolved in protocol.node_ids
        with pytest.raises(ConfigurationError):
            protocol.resolve_fault_target("@worker", 0)
        with pytest.raises(ConfigurationError):
            protocol.resolve_fault_target("node-999", 0)

    def test_injector_backend_mismatch_is_rejected(self, big_field):
        protocol = _csm_protocol(big_field)
        other = _csm_protocol(big_field, seed=9)
        injector = FaultInjector(other, FaultSchedule.empty())
        with pytest.raises(ConfigurationError):
            CSMService(protocol, faults=injector)
