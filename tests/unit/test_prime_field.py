"""Unit tests for the prime field GF(p)."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.gf.field import OperationCounter
from repro.gf.prime_field import DEFAULT_PRIME, PrimeField


class TestConstruction:
    def test_default_modulus_is_mersenne_prime(self):
        field = PrimeField()
        assert field.order == DEFAULT_PRIME == 2**31 - 1

    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(91)

    def test_rejects_modulus_too_large_for_int64(self):
        with pytest.raises(FieldError):
            PrimeField(2**62 - 57)  # even if prime, products overflow

    def test_characteristic_equals_modulus(self):
        assert PrimeField(97).characteristic == 97

    def test_equality_and_hash(self):
        assert PrimeField(97) == PrimeField(97)
        assert PrimeField(97) != PrimeField(101)
        assert hash(PrimeField(97)) == hash(PrimeField(97))


class TestScalarArithmetic:
    def test_add_wraps_modulo_p(self, small_field):
        assert small_field.add(90, 10) == 3

    def test_sub_wraps_modulo_p(self, small_field):
        assert small_field.sub(3, 10) == 90

    def test_mul(self, small_field):
        assert small_field.mul(10, 20) == 200 % 97

    def test_neg(self, small_field):
        assert small_field.neg(1) == 96
        assert small_field.neg(0) == 0

    def test_inverse_times_element_is_one(self, small_field):
        for value in range(1, 97):
            assert small_field.mul(value, small_field.inv(value)) == 1

    def test_inverse_of_zero_raises(self, small_field):
        with pytest.raises(FieldError):
            small_field.inv(0)

    def test_pow_matches_python_pow(self, small_field):
        assert small_field.pow(5, 13) == pow(5, 13, 97)

    def test_pow_negative_exponent_uses_inverse(self, small_field):
        assert small_field.mul(small_field.pow(5, -2), small_field.pow(5, 2)) == 1

    def test_div(self, small_field):
        assert small_field.div(10, 5) == 2

    def test_element_canonicalises_negative_values(self, small_field):
        assert small_field.element(-1) == 96


class TestVectorArithmetic:
    def test_array_reduces_mod_p(self, small_field):
        arr = small_field.array([98, 194, -1])
        assert list(arr) == [1, 0, 96]

    def test_vector_add_and_mul(self, small_field):
        a = small_field.array([1, 2, 3])
        b = small_field.array([96, 95, 94])
        assert list(small_field.add(a, b)) == [0, 0, 0]
        assert list(small_field.mul(a, b)) == [96, 93, 88]

    def test_vector_inverse(self, small_field):
        values = small_field.array([1, 2, 3, 50])
        inverses = small_field.inv(values)
        assert list(small_field.mul(values, inverses)) == [1, 1, 1, 1]

    def test_vector_inverse_with_zero_raises(self, small_field):
        with pytest.raises(FieldError):
            small_field.inv(small_field.array([1, 0, 3]))

    def test_vector_pow(self, small_field):
        values = small_field.array([2, 3, 4])
        assert list(small_field.pow(values, 3)) == [8, 27, 64 % 97]

    def test_dot_product(self, small_field):
        a = small_field.array([1, 2, 3])
        b = small_field.array([4, 5, 6])
        assert small_field.dot(a, b) == (4 + 10 + 18) % 97

    def test_dot_shape_mismatch_raises(self, small_field):
        with pytest.raises(FieldError):
            small_field.dot(small_field.array([1, 2]), small_field.array([1, 2, 3]))

    def test_batch_inv_matches_scalar_inv(self, small_field, rng):
        values = small_field.array(rng.integers(1, 97, size=17))
        batch = small_field.batch_inv(values)
        expected = [small_field.inv(int(v)) for v in values]
        assert list(batch) == expected

    def test_batch_inv_rejects_zero(self, small_field):
        with pytest.raises(FieldError):
            small_field.batch_inv(small_field.array([1, 0]))

    def test_sum(self, small_field):
        assert small_field.sum([96, 1, 5]) == 5
        assert small_field.sum([]) == 0

    def test_powers(self, small_field):
        assert list(small_field.powers(3, 5)) == [1, 3, 9, 27, 81]

    def test_geometric_column_is_vandermonde(self, small_field):
        matrix = small_field.geometric_column(small_field.array([2, 3]), 3)
        assert matrix.tolist() == [[1, 2, 4, 8], [1, 3, 9, 27]]

    def test_large_field_products_do_not_overflow(self, big_field):
        near_p = big_field.order - 2
        arr = big_field.array([near_p, near_p])
        result = big_field.mul(arr, arr)
        assert list(result) == [pow(near_p, 2, big_field.order)] * 2


class TestSamplingAndPoints:
    def test_random_element_in_range(self, small_field, rng):
        for _ in range(50):
            assert 0 <= small_field.random_element(rng) < 97

    def test_random_nonzero_never_zero(self, small_field, rng):
        assert all(small_field.random_nonzero(rng) != 0 for _ in range(100))

    def test_distinct_points(self, small_field):
        points = small_field.distinct_points(10, start=5)
        assert len(set(points)) == 10
        assert points[0] == 5

    def test_distinct_points_too_many_raises(self, small_field):
        with pytest.raises(FieldError):
            small_field.distinct_points(97)


class TestOperationCounting:
    def test_counter_records_scalar_ops(self, small_field):
        counter = OperationCounter()
        small_field.attach_counter(counter)
        small_field.add(1, 2)
        small_field.mul(3, 4)
        small_field.attach_counter(None)
        assert counter.additions == 1
        assert counter.multiplications == 1
        assert counter.total == 2

    def test_counter_records_vector_ops_by_size(self, small_field):
        counter = OperationCounter()
        small_field.attach_counter(counter)
        small_field.add(small_field.array([1, 2, 3]), small_field.array([4, 5, 6]))
        small_field.attach_counter(None)
        assert counter.additions == 3

    def test_counter_merge_and_reset(self):
        a = OperationCounter(additions=2, multiplications=3)
        b = OperationCounter(additions=1, multiplications=1, inversions=1)
        a.merge(b)
        assert a.additions == 3 and a.multiplications == 4 and a.inversions == 1
        a.reset()
        assert a.total == 0

    def test_detached_counter_not_updated(self, small_field):
        counter = OperationCounter()
        small_field.attach_counter(counter)
        small_field.attach_counter(None)
        small_field.mul(2, 3)
        assert counter.total == 0


class TestSplitLimbMatmul:
    """The blocked split-limb matmul must be a drop-in for the rank-1 loop."""

    def test_matches_rank1_reference_bit_identically(self, rng):
        field = PrimeField()
        for rows, inner, cols in [(1, 1, 1), (3, 7, 2), (19, 19, 4), (40, 33, 5)]:
            a = rng.integers(0, field.order, size=(rows, inner))
            b = rng.integers(0, field.order, size=(inner, cols))
            assert np.array_equal(field.matmul(a, b), field._matmul_rank1(a, b))

    def test_matches_small_prime_fields(self, small_field, rng):
        a = rng.integers(0, small_field.order, size=(12, 9))
        b = rng.integers(0, small_field.order, size=(9, 7))
        assert np.array_equal(
            small_field.matmul(a, b), small_field._matmul_rank1(a, b)
        )

    def test_operation_counts_identical_to_reference(self, rng):
        field = PrimeField()
        a = rng.integers(0, field.order, size=(11, 23))
        b = rng.integers(0, field.order, size=(23, 6))
        fast_counter = OperationCounter()
        field.attach_counter(fast_counter)
        field.matmul(a, b)
        field.attach_counter(None)
        slow_counter = OperationCounter()
        field.attach_counter(slow_counter)
        field._matmul_rank1(a, b)
        field.attach_counter(None)
        assert fast_counter.snapshot() == slow_counter.snapshot()

    def test_inner_dimension_wider_than_one_block(self, rng):
        # Crossing the 2**15 block boundary exercises the inter-block
        # accumulator reduction that keeps the int64 sums from overflowing.
        field = PrimeField()
        inner = (1 << 15) + 37
        a = rng.integers(0, field.order, size=(2, inner))
        b = rng.integers(0, field.order, size=(inner, 3))
        assert np.array_equal(field.matmul(a, b), field._matmul_rank1(a, b))

    def test_worst_case_values_do_not_overflow(self):
        field = PrimeField()
        a = np.full((4, 64), field.order - 1, dtype=np.int64)
        b = np.full((64, 4), field.order - 1, dtype=np.int64)
        expected = (64 * pow(field.order - 1, 2, field.order)) % field.order
        assert np.all(field.matmul(a, b) == expected)

    def test_shape_mismatch_raises(self):
        field = PrimeField()
        with pytest.raises(FieldError):
            field.matmul(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_micro_benchmark_beats_rank1_loop(self, rng):
        """The split-limb path must clearly outrun the rank-1-update loop.

        The rank-1 loop pays one Python iteration (three full-matrix numpy
        passes) per inner index; the split-limb path runs two native int64
        matrix multiplies per block.  At 192x192 the architectural gap is
        ~5x, so asserting 2x (best of three attempts) leaves a wide margin
        for noisy shared runners.
        """
        import time

        field = PrimeField()
        a = rng.integers(0, field.order, size=(192, 192))
        b = rng.integers(0, field.order, size=(192, 192))
        fast = slow = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fast_result = field.matmul(a, b)
            fast = min(fast, time.perf_counter() - start)
            start = time.perf_counter()
            slow_result = field._matmul_rank1(a, b)
            slow = min(slow, time.perf_counter() - start)
        assert np.array_equal(fast_result, slow_result)
        assert slow / fast >= 2.0, (
            f"split-limb matmul only {slow / fast:.2f}x the rank-1 loop "
            f"(fast {fast * 1e3:.2f} ms, slow {slow * 1e3:.2f} ms)"
        )
