"""Unit tests for sparse multivariate polynomials."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.gf.multivariate import Monomial, MultivariatePolynomial
from repro.gf.polynomial import Poly


class TestConstruction:
    def test_zero_coefficient_terms_dropped(self, small_field):
        poly = MultivariatePolynomial(small_field, 2, {(1, 0): 0, (0, 1): 3})
        assert poly.terms == {(0, 1): 3}

    def test_duplicate_exponents_merged(self, small_field):
        poly = MultivariatePolynomial(small_field, 1, [((1,), 3), ((1,), 5)])
        assert poly.coefficient([1]) == 8

    def test_wrong_arity_exponent_rejected(self, small_field):
        with pytest.raises(FieldError):
            MultivariatePolynomial(small_field, 2, {(1,): 1})

    def test_variable_and_constant(self, small_field):
        x1 = MultivariatePolynomial.variable(small_field, 3, 1)
        assert x1.evaluate([10, 20, 30]) == 20
        c = MultivariatePolynomial.constant(small_field, 3, 7)
        assert c.evaluate([1, 2, 3]) == 7

    def test_variable_out_of_range(self, small_field):
        with pytest.raises(FieldError):
            MultivariatePolynomial.variable(small_field, 2, 5)

    def test_monomials_roundtrip(self, small_field):
        poly = MultivariatePolynomial(small_field, 2, {(1, 1): 2, (2, 0): 3})
        rebuilt = MultivariatePolynomial.from_monomials(small_field, 2, poly.monomials())
        assert rebuilt == poly

    def test_random_has_requested_total_degree(self, small_field, rng):
        for degree in (1, 2, 4):
            poly = MultivariatePolynomial.random(small_field, 3, degree, rng)
            assert poly.total_degree == degree


class TestArithmeticAndEvaluation:
    def test_degree(self, small_field):
        poly = MultivariatePolynomial(small_field, 2, {(2, 1): 1, (0, 1): 4})
        assert poly.total_degree == 3
        assert poly.partial_degree(0) == 2
        assert poly.partial_degree(1) == 1

    def test_addition_and_subtraction(self, small_field):
        a = MultivariatePolynomial(small_field, 2, {(1, 0): 2})
        b = MultivariatePolynomial(small_field, 2, {(1, 0): 95, (0, 1): 1})
        total = a + b
        assert total.coefficient([1, 0]) == 0
        assert total.coefficient([0, 1]) == 1
        assert (total - b) == a

    def test_multiplication(self, small_field):
        x = MultivariatePolynomial.variable(small_field, 2, 0)
        y = MultivariatePolynomial.variable(small_field, 2, 1)
        product = (x + y) * (x + y)
        assert product.coefficient([2, 0]) == 1
        assert product.coefficient([1, 1]) == 2
        assert product.coefficient([0, 2]) == 1

    def test_evaluate_matches_direct_computation(self, small_field):
        # f(x, y) = 3x^2 y + 5y + 7
        poly = MultivariatePolynomial(
            small_field, 2, {(2, 1): 3, (0, 1): 5, (0, 0): 7}
        )
        x, y = 4, 9
        expected = (3 * x * x * y + 5 * y + 7) % 97
        assert poly.evaluate([x, y]) == expected

    def test_evaluate_wrong_arity_raises(self, small_field):
        poly = MultivariatePolynomial.variable(small_field, 2, 0)
        with pytest.raises(FieldError):
            poly.evaluate([1])

    def test_evaluate_batch_matches_scalar(self, small_field, rng):
        poly = MultivariatePolynomial.random(small_field, 3, 2, rng)
        points = rng.integers(0, 97, size=(11, 3))
        batch = poly.evaluate_batch(points)
        assert list(batch) == [poly.evaluate(list(p)) for p in points]

    def test_scale(self, small_field):
        poly = MultivariatePolynomial(small_field, 1, {(1,): 2})
        assert poly.scale(3).coefficient([1]) == 6
        assert poly.scale(0).is_zero


class TestComposition:
    def test_compose_univariate_degree_bound(self, small_field, rng):
        # f of total degree d composed with inner polys of degree K-1 gives
        # a univariate polynomial of degree at most d*(K-1).
        d, inner_degree = 2, 4
        poly = MultivariatePolynomial.random(small_field, 2, d, rng)
        inner = [Poly.random(small_field, inner_degree, rng) for _ in range(2)]
        composed = poly.compose_univariate(inner)
        assert composed.degree <= d * inner_degree

    def test_compose_univariate_agrees_pointwise(self, small_field, rng):
        poly = MultivariatePolynomial.random(small_field, 3, 2, rng)
        inner = [Poly.random(small_field, 3, rng) for _ in range(3)]
        composed = poly.compose_univariate(inner)
        for point in range(10):
            assignment = [p.evaluate(point) for p in inner]
            assert composed.evaluate(point) == poly.evaluate(assignment)

    def test_compose_wrong_count_raises(self, small_field, rng):
        poly = MultivariatePolynomial.random(small_field, 2, 1, rng)
        with pytest.raises(FieldError):
            poly.compose_univariate([Poly.one(small_field)])

    def test_monomial_total_degree(self):
        assert Monomial((1, 2, 0), 5).total_degree == 3
