"""Unit tests for the consensus phase: command pool, authenticated broadcast,
and the simplified PBFT."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ConsensusError, LivenessError
from repro.consensus.broadcast import AuthenticatedBroadcastConsensus
from repro.consensus.command_pool import CommandPool
from repro.consensus.pbft import PBFTConsensus
from repro.net.byzantine import (
    EquivocatingBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)
from repro.net.latency import PartiallySynchronousDelay, SynchronousDelay
from repro.net.network import SimulatedNetwork


class TestCommandPool:
    def test_submit_and_peek_fifo(self):
        pool = CommandPool(num_machines=2)
        pool.submit(0, "alice", [1, 2])
        pool.submit(0, "bob", [3, 4])
        assert pool.peek_next(0).client_id == "alice"
        assert pool.pending(0) == 2
        assert pool.peek_next(1) is None

    def test_submit_batch(self):
        pool = CommandPool(num_machines=3)
        entries = pool.submit_batch(np.array([[1], [2], [3]]))
        assert [e.machine_index for e in entries] == [0, 1, 2]
        assert pool.total_pending() == 3

    def test_mark_executed_removes_by_sequence(self):
        pool = CommandPool(num_machines=1)
        first = pool.submit(0, "alice", [1])
        # A resubmission of the same payload by the same client gets its own
        # sequence; removal must take the decided entry, not "any match".
        duplicate = pool.submit(0, "alice", [1])
        pool.mark_executed(0, duplicate)
        assert pool.peek_next(0).sequence == first.sequence
        assert pool.pending(0) == 1

    def test_mark_executed_unknown_command_raises(self):
        pool = CommandPool(num_machines=1)
        first = pool.submit(0, "alice", [1])
        pool.mark_executed(0, first)
        with pytest.raises(ConsensusError):
            pool.mark_executed(0, first)  # already removed: unknown decision

    def test_mark_executed_tampered_entry_raises(self):
        from dataclasses import replace

        pool = CommandPool(num_machines=1)
        entry = pool.submit(0, "alice", [1])
        forged = replace(entry, client_id="mallory")
        with pytest.raises(ConsensusError):
            pool.mark_executed(0, forged)
        assert pool.pending(0) == 1  # the real entry is untouched

    def test_shared_sequence_allocator_spans_pools(self):
        from repro.consensus.command_pool import SequenceAllocator

        allocator = SequenceAllocator()
        pools = [
            CommandPool(num_machines=1, sequence_source=allocator)
            for _ in range(2)
        ]
        a = pools[0].submit(0, "alice", [1])
        b = pools[1].submit(0, "bob", [2])
        c = pools[0].submit(0, "alice", [3])
        assert [a.sequence, b.sequence, c.sequence] == [0, 1, 2]
        assert allocator.issued == 3

    def test_deep_backlog_dequeue_is_linear_not_quadratic(self):
        """The FIFO queues must pop from the left in O(1).

        ``list.pop(0)`` made a full drain of a deep per-machine backlog
        quadratic: draining 100k entries cost ~5e9 element moves (tens of
        seconds).  With :class:`collections.deque` the same drain is linear
        — the generous wall-clock bound below fails by a wide margin if the
        queue representation ever regresses to a list.
        """
        import time

        pool = CommandPool(num_machines=1)
        depth = 100_000
        for i in range(depth):
            pool.submit(0, "alice", [i])
        start = time.perf_counter()
        for i in range(depth):
            entry = pool.dequeue_next(0)
            assert entry.sequence == i  # FIFO order preserved
        elapsed = time.perf_counter() - start
        assert pool.total_pending() == 0
        assert elapsed < 2.0, (
            f"draining a {depth}-deep backlog took {elapsed:.1f}s — "
            "dequeue_next is no longer O(1)"
        )

    def test_dequeue_next_pops_fifo(self):
        pool = CommandPool(num_machines=2)
        first = pool.submit(0, "alice", [1])
        pool.submit(0, "bob", [2])
        popped = pool.dequeue_next(0)
        assert popped.sequence == first.sequence
        assert pool.pending(0) == 1
        assert pool.dequeue_next(1) is None
        assert pool.pending_machines() == 1

    def test_validity_history(self):
        pool = CommandPool(num_machines=1)
        pool.submit(0, "alice", [7])
        assert pool.was_submitted(0, [7], "alice")
        assert not pool.was_submitted(0, [8], "alice")
        assert not pool.was_submitted(0, [7], "mallory")

    def test_matches_pending_binds_sequences(self):
        pool = CommandPool(num_machines=1)
        entry = pool.submit(0, "alice", [7])
        assert pool.matches_pending(0, [7], "alice", entry.sequence)
        assert not pool.matches_pending(0, [7], "alice", entry.sequence + 1)
        assert not pool.matches_pending(0, [8], "alice", entry.sequence)
        assert not pool.matches_pending(0, [7], "mallory", entry.sequence)
        pool.dequeue_next(0)
        # No longer pending: the binding (unlike was_submitted) expires.
        assert not pool.matches_pending(0, [7], "alice", entry.sequence)

    def test_machine_index_validation(self):
        pool = CommandPool(num_machines=1)
        with pytest.raises(ConfigurationError):
            pool.submit(3, "alice", [1])
        with pytest.raises(ConfigurationError):
            CommandPool(num_machines=0)


def _sync_setup(num_nodes, num_machines, behaviors=None, seed=0):
    rng = np.random.default_rng(seed)
    network = SimulatedNetwork(delay_model=SynchronousDelay(), rng=rng)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    pool = CommandPool(num_machines=num_machines)
    for k in range(num_machines):
        pool.submit(k, f"client:{k}", [10 * (k + 1)])
    protocol = AuthenticatedBroadcastConsensus(network, node_ids, pool, behaviors, rng)
    return protocol, pool


class TestAuthenticatedBroadcast:
    def test_honest_round_reaches_consistent_decision(self):
        protocol, pool = _sync_setup(5, 3)
        decisions = protocol.decide_round(0)
        assert len(decisions) == 5
        tuples = {d.command_tuple() for d in decisions.values()}
        assert len(tuples) == 1
        assert decisions["node-0"].commands.tolist() == [[10], [20], [30]]
        assert pool.total_pending() == 0  # decided commands consumed

    def test_forged_sequence_proposal_is_invalid(self):
        # A payload whose commands/clients are genuine but whose sequences
        # were forged (or stripped) must fail validity — the leader cannot
        # steer which pool entries get removed, and honest nodes view-change
        # instead of crashing in mark_executed after deciding it.
        protocol, pool = _sync_setup(4, 2)
        selected = pool.peek_round()
        genuine = protocol._payload_from_selection(selected)
        assert protocol._is_valid_proposal(genuine)
        forged = dict(genuine)
        forged["sequences"] = [s + 100 for s in genuine["sequences"]]
        assert not protocol._is_valid_proposal(forged)
        stripped = {k: v for k, v in genuine.items() if k != "sequences"}
        assert not protocol._is_valid_proposal(stripped)

    def test_validity_decided_commands_were_submitted(self):
        protocol, pool = _sync_setup(4, 2)
        decisions = protocol.decide_round(0)
        decision = decisions["node-0"]
        for k, entry in enumerate(decision.selected):
            assert pool.was_submitted(k, entry.command, entry.client_id)

    def test_silent_leader_triggers_view_change(self):
        behaviors = {"node-0": SilentBehavior()}
        protocol, _ = _sync_setup(5, 2, behaviors)
        decisions = protocol.decide_round(0)  # leader for round 0 is node-0
        assert all(d.view >= 1 for d in decisions.values())
        assert all(d.leader != "node-0" for d in decisions.values())
        tuples = {d.command_tuple() for d in decisions.values()}
        assert len(tuples) == 1

    def test_equivocating_leader_cannot_split_honest_nodes(self):
        behaviors = {"node-0": EquivocatingBehavior()}
        protocol, _ = _sync_setup(6, 2, behaviors)
        decisions = protocol.decide_round(0)
        # Whatever the equivocating leader does, all honest nodes decide the
        # same, valid (i.e. actually submitted) command vector.
        assert len({d.command_tuple() for d in decisions.values()}) == 1
        assert next(iter(decisions.values())).commands.tolist() == [[10], [20]]

    def test_leader_proposing_unsubmitted_command_rejected(self):
        behaviors = {"node-0": RandomGarbageBehavior()}
        protocol, pool = _sync_setup(5, 2, behaviors)
        decisions = protocol.decide_round(0)
        decision = next(iter(decisions.values()))
        assert decision.view >= 1
        for k, entry in enumerate(decision.selected):
            assert pool.was_submitted(k, entry.command, entry.client_id) or True
            # decided commands are the honest (originally submitted) ones
        assert decision.commands.tolist() == [[10], [20]]

    def test_requires_pending_commands(self):
        rng = np.random.default_rng(0)
        network = SimulatedNetwork(rng=rng)
        pool = CommandPool(num_machines=1)
        protocol = AuthenticatedBroadcastConsensus(network, ["a", "b"], pool, rng=rng)
        with pytest.raises(LivenessError):
            protocol.decide_round(0)

    def test_fault_tolerance_property(self):
        protocol, _ = _sync_setup(7, 1)
        assert protocol.fault_tolerance == 6

    def test_empty_node_list_rejected(self):
        with pytest.raises(ConsensusError):
            AuthenticatedBroadcastConsensus(
                SimulatedNetwork(), [], CommandPool(num_machines=1)
            )


def _pbft_setup(num_nodes, num_machines, behaviors=None, seed=0, gst=0.0):
    rng = np.random.default_rng(seed)
    network = SimulatedNetwork(
        delay_model=PartiallySynchronousDelay(gst=gst, max_delay=1.0, pre_gst_extra=5.0),
        rng=rng,
    )
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    pool = CommandPool(num_machines=num_machines)
    for k in range(num_machines):
        pool.submit(k, f"client:{k}", [5 * (k + 1)])
    protocol = PBFTConsensus(network, node_ids, pool, behaviors, rng, max_views=64)
    return protocol


class TestPBFT:
    def test_honest_round_after_gst(self):
        protocol = _pbft_setup(4, 2, gst=0.0)
        decisions = protocol.decide_round(0)
        assert set(decisions) == {f"node-{i}" for i in range(4)}
        assert len({d.command_tuple() for d in decisions.values()}) == 1
        assert decisions["node-0"].commands.tolist() == [[5], [10]]

    def test_tolerates_one_fault_with_four_nodes(self):
        behaviors = {"node-3": RandomGarbageBehavior()}
        protocol = _pbft_setup(4, 1, behaviors, gst=0.0)
        decisions = protocol.decide_round(0)
        honest = {f"node-{i}" for i in range(3)}
        assert honest <= set(decisions)
        assert len({d.command_tuple() for d in decisions.values()}) == 1

    def test_silent_primary_view_change(self):
        behaviors = {"node-0": SilentBehavior()}
        protocol = _pbft_setup(4, 1, behaviors, gst=0.0)
        decisions = protocol.decide_round(0)
        assert all(d.view >= 1 for d in decisions.values())

    def test_equivocating_primary_cannot_split_decision(self):
        behaviors = {"node-0": EquivocatingBehavior()}
        protocol = _pbft_setup(7, 1, behaviors, gst=0.0)
        decisions = protocol.decide_round(0)
        assert len({d.command_tuple() for d in decisions.values()}) == 1

    def test_liveness_after_gst(self):
        # With GST strictly positive some views may fail, but the protocol
        # keeps retrying views and eventually decides.
        protocol = _pbft_setup(4, 1, gst=3.0, seed=3)
        decisions = protocol.decide_round(0)
        assert len(decisions) == 4

    def test_fault_tolerance_formula(self):
        protocol = _pbft_setup(7, 1)
        assert protocol.fault_tolerance == 2
        assert protocol.quorum == 5

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConsensusError):
            _pbft_setup(3, 1)


def _submit_rounds(pool, num_machines, rounds):
    for r in range(1, rounds):  # round 0's commands come from the setup helper
        for k in range(num_machines):
            pool.submit(k, f"client:{k}", [100 * r + k])


class TestDecideRounds:
    """The batched ``decide_rounds`` path must match sequential decisions."""

    def test_broadcast_decide_rounds_matches_sequential(self):
        behaviors = {"node-0": SilentBehavior()}  # force a view change in round 0
        sequential, seq_pool = _sync_setup(5, 2, behaviors)
        batched, bat_pool = _sync_setup(5, 2, behaviors)
        _submit_rounds(seq_pool, 2, 3)
        _submit_rounds(bat_pool, 2, 3)
        seq_decisions = [sequential.decide_round(r) for r in range(3)]
        bat_decisions = batched.decide_rounds(0, 3)
        for seq_round, bat_round in zip(seq_decisions, bat_decisions):
            assert set(seq_round) == set(bat_round)
            for node_id in seq_round:
                assert (
                    seq_round[node_id].command_tuple()
                    == bat_round[node_id].command_tuple()
                )
                assert seq_round[node_id].view == bat_round[node_id].view
                assert seq_round[node_id].leader == bat_round[node_id].leader
        assert seq_pool.total_pending() == bat_pool.total_pending() == 0

    def test_pbft_decide_rounds_matches_sequential(self):
        sequential = _pbft_setup(4, 2, gst=0.0)
        batched = _pbft_setup(4, 2, gst=0.0)
        _submit_rounds(sequential.pool, 2, 2)
        _submit_rounds(batched.pool, 2, 2)
        seq_decisions = [sequential.decide_round(r) for r in range(2)]
        bat_decisions = batched.decide_rounds(0, 2)
        for seq_round, bat_round in zip(seq_decisions, bat_decisions):
            assert set(seq_round) == set(bat_round)
            for node_id in seq_round:
                assert (
                    seq_round[node_id].command_tuple()
                    == bat_round[node_id].command_tuple()
                )
                assert seq_round[node_id].view == bat_round[node_id].view

    def test_decide_rounds_uses_bulk_delivery(self):
        protocol, pool = _sync_setup(4, 1)
        _submit_rounds(pool, 1, 2)
        protocol.decide_rounds(0, 2)
        # Bulk delivery bypasses the scheduler entirely: no event was ever
        # processed, yet both rounds decided.
        assert protocol.network.scheduler.processed_events == 0
        assert not protocol.network._bulk_delivery  # flag restored on exit
