"""Unit tests for INTERMIX: committee election, worker strategies, auditor
bisection, commoner verification, the protocol, and the delegated coding."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, VerificationError
from repro.gf.linalg import gf_matvec
from repro.intermix.auditor import Auditor
from repro.intermix.commoner import Commoner
from repro.intermix.committee import Committee, CommitteeElection, required_committee_size
from repro.intermix.delegation import DelegatedCodingService
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import Worker, WorkerStrategy
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme


NODE_IDS = [f"node-{i}" for i in range(12)]


class TestCommittee:
    def test_required_size_formula(self):
        assert required_committee_size(0.25, 1e-6) == math.ceil(math.log(1e-6) / math.log(0.25))
        assert required_committee_size(0.0, 1e-6) == 1
        with pytest.raises(ConfigurationError):
            required_committee_size(1.0, 1e-6)
        with pytest.raises(ConfigurationError):
            required_committee_size(0.25, 1.5)

    def test_soundness_failure_probability(self):
        election = CommitteeElection(NODE_IDS, 0.25, 1e-3)
        assert election.soundness_failure_probability() <= 1e-3

    def test_elected_roles_are_disjoint_and_cover_all_nodes(self, rng):
        election = CommitteeElection(NODE_IDS, 0.25, 1e-3, rng=rng)
        committee = election.elect()
        members = [committee.worker] + committee.auditors + committee.commoners
        assert sorted(members) == sorted(NODE_IDS)
        assert committee.worker not in committee.auditors
        assert committee.role_of(committee.worker) == "worker"
        assert committee.role_of(committee.auditors[0]) == "auditor"

    def test_self_election_produces_at_least_one_auditor(self, rng):
        election = CommitteeElection(NODE_IDS, 0.25, 1e-3, rng=rng)
        for _ in range(10):
            committee = election.elect_by_self_election()
            assert len(committee.auditors) >= 1

    def test_committee_size_capped_by_network(self):
        election = CommitteeElection(["a", "b"], 0.4, 1e-9)
        assert election.committee_size == 1


class TestWorker:
    def _inputs(self, big_field, rng, rows=6, cols=8):
        matrix = rng.integers(0, big_field.order, size=(rows, cols))
        vector = rng.integers(0, big_field.order, size=cols)
        return matrix, vector

    def test_honest_worker_computes_correct_product(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.HONEST)
        result = worker.compute(matrix, vector)
        assert result.tolist() == gf_matvec(big_field, matrix, vector).tolist()
        assert worker.operations > 0

    def test_corrupt_worker_changes_exactly_one_row(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.CORRUPT_RESULT, rng=rng)
        claimed = worker.compute(matrix, vector)
        truth = gf_matvec(big_field, matrix, vector)
        assert int(np.sum(claimed != truth)) == 1

    def test_silent_worker_returns_none(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.SILENT)
        assert worker.compute(matrix, vector) is None
        assert worker.answer_query(0, 0, 4) is None

    def test_consistent_liar_halves_sum_to_parent(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng, rows=4, cols=8)
        worker = Worker("w", big_field, WorkerStrategy.CONSISTENT_LIAR, rng=rng)
        claimed = worker.compute(matrix, vector)
        truth = gf_matvec(big_field, matrix, vector)
        bad_row = int(np.nonzero(claimed != truth)[0][0])
        left = worker.answer_query(bad_row, 0, 4)
        right = worker.answer_query(bad_row, 4, 8)
        assert big_field.add(left, right) == int(claimed[bad_row])

    def test_query_before_compute_rejected(self, big_field):
        with pytest.raises(ConfigurationError):
            Worker("w", big_field).answer_query(0, 0, 1)


class TestAuditorAndCommoner:
    def _inputs(self, big_field, rng, rows=5, cols=16):
        matrix = rng.integers(0, big_field.order, size=(rows, cols))
        vector = rng.integers(0, big_field.order, size=cols)
        return matrix, vector

    def test_honest_worker_is_acknowledged(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.HONEST)
        claimed = worker.compute(matrix, vector)
        transcript = Auditor("a", big_field).audit(matrix, vector, claimed, worker)
        assert transcript.accepted

    def test_corrupt_worker_caught_in_one_level(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.CORRUPT_RESULT, rng=rng)
        claimed = worker.compute(matrix, vector)
        transcript = Auditor("a", big_field).audit(matrix, vector, claimed, worker)
        assert not transcript.accepted
        assert transcript.failure_kind == "sum-mismatch"
        assert transcript.queries_issued == 2

    def test_consistent_liar_caught_within_log_rounds(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng, cols=64)
        worker = Worker("w", big_field, WorkerStrategy.CONSISTENT_LIAR, rng=rng)
        claimed = worker.compute(matrix, vector)
        transcript = Auditor("a", big_field).audit(matrix, vector, claimed, worker)
        assert not transcript.accepted
        assert transcript.failure_kind == "leaf-mismatch"
        assert transcript.queries_issued <= 2 * math.ceil(math.log2(64))
        assert len(transcript.path) <= math.ceil(math.log2(64))

    def test_silent_worker_convicted_without_queries(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.SILENT)
        claimed = worker.compute(matrix, vector)
        transcript = Auditor("a", big_field).audit(matrix, vector, claimed, worker)
        assert transcript.failure_kind == "no-response"

    def test_commoner_confirms_sum_mismatch_in_constant_ops(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.CORRUPT_RESULT, rng=rng)
        claimed = worker.compute(matrix, vector)
        transcript = Auditor("a", big_field).audit(matrix, vector, claimed, worker)
        commoner = Commoner("c", big_field)
        verdict = commoner.verify_transcript(transcript, matrix, vector, claimed)
        assert verdict.fraud_confirmed
        assert verdict.operations <= 3

    def test_commoner_dismisses_baseless_accusation(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        worker = Worker("w", big_field, WorkerStrategy.HONEST)
        claimed = worker.compute(matrix, vector)
        dishonest = Auditor("a", big_field, dishonest=True)
        transcript = dishonest.audit(matrix, vector, claimed, worker)
        assert not transcript.accepted  # the baseless alert
        protocol = IntermixProtocol(big_field, NODE_IDS, 0.25)
        public = protocol._with_overheard_claims(transcript, worker, claimed)
        verdict = Commoner("c", big_field).verify_transcript(public, matrix, vector, claimed)
        assert not verdict.fraud_confirmed


class TestIntermixProtocol:
    def _inputs(self, big_field, rng, rows=12, cols=16):
        matrix = rng.integers(0, big_field.order, size=(rows, cols))
        vector = rng.integers(0, big_field.order, size=cols)
        return matrix, vector

    def test_honest_run_accepted_with_correct_result(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        protocol = IntermixProtocol(big_field, NODE_IDS, 0.25, rng=rng)
        outcome = protocol.run(matrix, vector)
        assert outcome.accepted
        assert outcome.result.tolist() == gf_matvec(big_field, matrix, vector).tolist()
        assert not outcome.fraud_detected

    @pytest.mark.parametrize(
        "strategy",
        [WorkerStrategy.CORRUPT_RESULT, WorkerStrategy.CONSISTENT_LIAR, WorkerStrategy.SILENT],
    )
    def test_every_cheating_strategy_rejected(self, big_field, rng, strategy):
        matrix, vector = self._inputs(big_field, rng)
        protocol = IntermixProtocol(
            big_field, NODE_IDS, 0.25, rng=rng,
            worker_strategies={n: strategy for n in NODE_IDS},
        )
        outcome = protocol.run(matrix, vector)
        assert not outcome.accepted
        with pytest.raises(VerificationError):
            protocol.run_or_raise(matrix, vector)

    def test_commoner_cost_constant_while_auditor_cost_grows(self, big_field, rng):
        protocol = IntermixProtocol(big_field, NODE_IDS, 0.25, rng=np.random.default_rng(1))
        small = protocol.run(*self._inputs(big_field, rng, rows=12, cols=8))
        large = protocol.run(*self._inputs(big_field, rng, rows=12, cols=128))
        max_commoner_small = max(small.commoner_operations.values() or [0])
        max_commoner_large = max(large.commoner_operations.values() or [0])
        assert max_commoner_large <= max_commoner_small + 2  # O(1) verification
        assert sum(large.auditor_operations.values()) > sum(small.auditor_operations.values())

    def test_operations_for_lookup(self, big_field, rng):
        matrix, vector = self._inputs(big_field, rng)
        protocol = IntermixProtocol(big_field, NODE_IDS, 0.25, rng=rng)
        outcome = protocol.run(matrix, vector)
        assert outcome.operations_for(outcome.committee.worker) == outcome.worker_operations
        total = sum(outcome.operations_for(n) for n in NODE_IDS)
        assert total == outcome.total_operations


class TestDelegatedCoding:
    @pytest.fixture
    def scheme(self, big_field):
        return LagrangeScheme(big_field, num_machines=3, num_nodes=14)

    @pytest.fixture
    def service(self, scheme):
        return DelegatedCodingService(
            scheme, transition_degree=2,
            node_ids=[f"node-{i}" for i in range(14)],
            fault_fraction=0.2, rng=np.random.default_rng(0),
        )

    def test_verified_encoding_matches_local_encoding(self, scheme, service, rng):
        commands = rng.integers(0, 1000, size=(3, 2))
        coded, report = service.encode_vectors_verified(commands)
        assert report.accepted
        assert coded.tolist() == CodedStateEncoder(scheme).encode(commands).tolist()

    def test_verified_state_update(self, scheme, service, rng):
        states = rng.integers(0, 1000, size=(3, 2))
        coded, report = service.update_coded_states_verified(states)
        assert report.accepted
        assert report.operation == "update-states"
        assert coded.tolist() == CodedStateEncoder(scheme).encode(states).tolist()

    def test_verified_decoding_recovers_outputs(self, scheme, service, big_field, rng):
        from repro.gf.multivariate import MultivariatePolynomial

        poly = MultivariatePolynomial(big_field, 4, {(1, 0, 1, 0): 1, (0, 1, 0, 1): 1})
        states = rng.integers(0, 1000, size=(3, 2))
        commands = rng.integers(0, 1000, size=(3, 2))
        encoder = CodedStateEncoder(scheme)
        coded_states = encoder.encode(states)
        coded_commands = encoder.encode(commands)
        results = np.zeros((14, 1), dtype=np.int64)
        for i in range(14):
            results[i, 0] = poly.evaluate(
                [int(coded_states[i, 0]), int(coded_states[i, 1]),
                 int(coded_commands[i, 0]), int(coded_commands[i, 1])]
            )
        results[1, 0] = 999  # one Byzantine result
        decoded, report = service.decode_results_verified(results)
        expected = [
            [poly.evaluate([int(s[0]), int(s[1]), int(x[0]), int(x[1])])]
            for s, x in zip(states, commands)
        ]
        assert report.accepted
        assert decoded.tolist() == expected

    def test_cheating_decode_worker_rejected(self, scheme, big_field, rng):
        service = DelegatedCodingService(
            scheme, transition_degree=2,
            node_ids=[f"node-{i}" for i in range(14)],
            fault_fraction=0.2, rng=np.random.default_rng(1),
            corrupt_decoder_workers={f"node-{i}" for i in range(14)},
        )
        encoder = CodedStateEncoder(scheme)
        values = rng.integers(0, 100, size=(3, 1))
        coded = encoder.encode(values)
        with pytest.raises(VerificationError):
            service.decode_results_verified(coded)

    def test_cheating_encode_worker_detected(self, scheme, rng):
        service = DelegatedCodingService(
            scheme, transition_degree=2,
            node_ids=[f"node-{i}" for i in range(14)],
            fault_fraction=0.2, rng=np.random.default_rng(2),
            worker_strategies={
                f"node-{i}": WorkerStrategy.CORRUPT_RESULT for i in range(14)
            },
        )
        commands = rng.integers(0, 100, size=(3, 2))
        _, report = service.encode_vectors_verified(commands)
        assert not report.accepted

    def test_commoner_cost_stays_constant_as_k_grows(self, big_field, rng):
        costs = []
        for k, n in ((2, 10), (4, 20), (8, 40)):
            scheme = LagrangeScheme(big_field, num_machines=k, num_nodes=n)
            service = DelegatedCodingService(
                scheme, transition_degree=1,
                node_ids=[f"node-{i}" for i in range(n)],
                fault_fraction=0.2, rng=np.random.default_rng(3),
            )
            commands = rng.integers(0, 100, size=(k, 1))
            _, report = service.encode_vectors_verified(commands)
            costs.append(report.max_commoner_operations)
        assert max(costs) <= 2
