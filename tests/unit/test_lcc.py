"""Unit tests for the Lagrange coded computing layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DecodingError, FieldError
from repro.gf.multivariate import MultivariatePolynomial
from repro.gf.prime_field import PrimeField
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme


@pytest.fixture
def scheme(big_field):
    return LagrangeScheme(big_field, num_machines=4, num_nodes=16)


class TestScheme:
    def test_points_are_distinct(self, scheme):
        assert len(set(scheme.omegas)) == 4
        assert len(set(scheme.alphas)) == 16
        assert not set(scheme.omegas) & set(scheme.alphas)

    def test_coefficient_matrix_shape(self, scheme):
        assert scheme.coefficient_matrix.shape == (16, 4)

    def test_coefficient_rows_sum_to_one(self, scheme, big_field):
        # Lagrange basis functions sum to 1 at every evaluation point.
        matrix = scheme.coefficient_matrix
        for i in range(scheme.num_nodes):
            assert big_field.sum(matrix[i, :]) == 1

    def test_encode_scalars_matches_matrix(self, scheme, big_field, rng):
        values = rng.integers(0, 1000, size=4)
        encoded = scheme.encode_scalars(values)
        expected = [(int(np.dot(scheme.coefficient_matrix[i].astype(object), values)) % big_field.order)
                    for i in range(16)]
        assert list(encoded) == expected

    def test_encode_vectors_componentwise(self, scheme, rng):
        values = rng.integers(0, 1000, size=(4, 3))
        encoded = scheme.encode_vectors(values)
        assert encoded.shape == (16, 3)
        for component in range(3):
            assert list(encoded[:, component]) == list(
                scheme.encode_scalars(values[:, component])
            )

    def test_encode_for_node(self, scheme, rng):
        values = rng.integers(0, 1000, size=(4, 2))
        full = scheme.encode_vectors(values)
        for node in (0, 7, 15):
            assert list(scheme.encode_for_node(node, values)) == list(full[node])

    def test_invalid_configurations_rejected(self, big_field):
        with pytest.raises(ConfigurationError):
            LagrangeScheme(big_field, num_machines=0, num_nodes=4)
        with pytest.raises(ConfigurationError):
            LagrangeScheme(big_field, num_machines=5, num_nodes=4)
        small = PrimeField(7)
        with pytest.raises(ConfigurationError):
            LagrangeScheme(small, num_machines=3, num_nodes=5)

    def test_custom_points_must_be_distinct(self, big_field):
        with pytest.raises(ConfigurationError):
            LagrangeScheme(big_field, 2, 4, omegas=[1, 1])

    def test_degree_bookkeeping(self, scheme):
        assert scheme.composite_degree(2) == 6
        assert scheme.decoding_dimension(2) == 7
        assert scheme.max_correctable_errors(2) == (16 - 7) // 2

    def test_encode_wrong_row_count_rejected(self, scheme):
        with pytest.raises(FieldError):
            scheme.encode_vectors(np.zeros((3, 2), dtype=np.int64))


class TestEncoder:
    def test_matrix_and_interpolation_paths_agree(self, scheme, rng):
        encoder = CodedStateEncoder(scheme)
        values = rng.integers(0, 10_000, size=(4, 5))
        assert np.array_equal(
            encoder.encode(values), encoder.encode_via_interpolation(values)
        )

    def test_coded_value_at_omega_recovers_original(self, scheme, rng):
        # Evaluating the interpolant at omega_k gives back machine k's value.
        encoder = CodedStateEncoder(scheme)
        values = rng.integers(0, 10_000, size=(4, 2))
        polys = encoder.interpolation_polynomials(values)
        for k, omega in enumerate(scheme.omegas):
            assert polys[0].evaluate(omega) == int(values[k, 0])
            assert polys[1].evaluate(omega) == int(values[k, 1])

    def test_one_dimensional_input_promoted(self, scheme, rng):
        encoder = CodedStateEncoder(scheme)
        values = rng.integers(0, 100, size=4)
        assert encoder.encode(values).shape == (16, 1)


class TestDecoder:
    def _coded_results(self, scheme, states, commands, polys):
        encoder = CodedStateEncoder(scheme)
        coded_states = encoder.encode(states)
        coded_commands = encoder.encode(commands)
        results = np.zeros((scheme.num_nodes, len(polys)), dtype=np.int64)
        for i in range(scheme.num_nodes):
            assignment = [int(v) for v in coded_states[i]] + [
                int(v) for v in coded_commands[i]
            ]
            for j, poly in enumerate(polys):
                results[i, j] = poly.evaluate(assignment)
        return results

    def _expected(self, states, commands, polys):
        out = np.zeros((states.shape[0], len(polys)), dtype=np.int64)
        for k in range(states.shape[0]):
            assignment = [int(v) for v in states[k]] + [int(v) for v in commands[k]]
            for j, poly in enumerate(polys):
                out[k, j] = poly.evaluate(assignment)
        return out

    @pytest.fixture
    def workload(self, scheme, big_field, rng):
        states = rng.integers(0, 1000, size=(4, 2))
        commands = rng.integers(0, 1000, size=(4, 2))
        polys = [
            MultivariatePolynomial(big_field, 4, {(1, 0, 1, 0): 1, (0, 1, 0, 0): 2}),
            MultivariatePolynomial(big_field, 4, {(0, 0, 1, 1): 3, (1, 0, 0, 0): 1}),
        ]
        return states, commands, polys

    def test_decode_without_errors(self, scheme, workload):
        states, commands, polys = workload
        decoder = CodedResultDecoder(scheme, transition_degree=2)
        results = self._coded_results(scheme, states, commands, polys)
        decoded = decoder.decode(results)
        assert np.array_equal(decoded.outputs, self._expected(states, commands, polys))
        assert decoded.error_nodes == ()

    def test_decode_corrects_up_to_max_errors(self, scheme, workload, rng):
        states, commands, polys = workload
        decoder = CodedResultDecoder(scheme, transition_degree=2)
        results = self._coded_results(scheme, states, commands, polys)
        bad = list(rng.choice(scheme.num_nodes, size=decoder.max_errors, replace=False))
        for i in bad:
            results[i] = rng.integers(0, 10_000, size=results.shape[1])
        decoded = decoder.decode(results)
        assert np.array_equal(decoded.outputs, self._expected(states, commands, polys))
        assert set(decoded.error_nodes) <= set(int(b) for b in bad)

    def test_decode_fails_beyond_max_errors(self, scheme, workload):
        states, commands, polys = workload
        decoder = CodedResultDecoder(scheme, transition_degree=2)
        results = self._coded_results(scheme, states, commands, polys)
        for i in range(decoder.max_errors + 1):
            results[i] = (results[i] + 1 + i)
        with pytest.raises(DecodingError):
            decoder.decode(results)

    def test_decode_partial_with_silent_and_wrong_nodes(self, scheme, workload, rng):
        states, commands, polys = workload
        decoder = CodedResultDecoder(scheme, transition_degree=2)
        results = self._coded_results(scheme, states, commands, polys)
        entries: list = [row.copy() for row in results]
        # Partially synchronous worst case: b silent, b wrong, 3b+1 <= N - d(K-1)
        # With N=16, d(K-1)=6 -> b <= 3.
        entries[0] = None
        entries[1] = None
        entries[2] = None
        entries[5] = rng.integers(0, 100, size=results.shape[1])
        entries[6] = rng.integers(0, 100, size=results.shape[1])
        entries[7] = rng.integers(0, 100, size=results.shape[1])
        decoded = decoder.decode_partial(entries)
        assert np.array_equal(decoded.outputs, self._expected(states, commands, polys))
        assert set(decoded.error_nodes) == {5, 6, 7}

    def test_gao_backend_matches(self, scheme, workload):
        states, commands, polys = workload
        results = self._coded_results(scheme, states, commands, polys)
        bw = CodedResultDecoder(scheme, transition_degree=2, decoder="berlekamp-welch")
        gao = CodedResultDecoder(scheme, transition_degree=2, decoder="gao")
        assert np.array_equal(bw.decode(results).outputs, gao.decode(results).outputs)

    def test_unknown_decoder_rejected(self, scheme):
        with pytest.raises(FieldError):
            CodedResultDecoder(scheme, transition_degree=1, decoder="viterbi")

    def test_wrong_result_count_rejected(self, scheme):
        decoder = CodedResultDecoder(scheme, transition_degree=1)
        with pytest.raises(DecodingError):
            decoder.decode(np.zeros((3, 1), dtype=np.int64))
