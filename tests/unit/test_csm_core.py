"""Unit tests for the CSM core: configuration, coded storage, node, and the
coded execution engine."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DecodingError
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.core.node import CSMNode
from repro.core.storage import CodedStateStore
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import (
    CorruptResultBehavior,
    EquivocatingBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
)


class TestCSMConfig:
    def test_valid_configuration_summary(self, big_field):
        config = CSMConfig(big_field, num_nodes=16, num_machines=4, degree=2, num_faults=1)
        assert config.composite_degree == 6
        assert config.decoding_dimension == 7
        assert config.storage_efficiency == 4
        assert config.security == (16 - 6 - 1) // 2
        summary = config.summary()
        assert summary["N"] == 16 and summary["setting"] == "sync"

    def test_rejects_k_beyond_decoding_bound(self, big_field):
        # N=10, b=3, d=1: K <= (10 - 7)/1 + 1 = 4
        CSMConfig(big_field, num_nodes=10, num_machines=4, degree=1, num_faults=3)
        with pytest.raises(ConfigurationError):
            CSMConfig(big_field, num_nodes=10, num_machines=5, degree=1, num_faults=3)

    def test_partially_synchronous_bound_is_stricter(self, big_field):
        # N=16, d=2, b=4: sync supports K <= (16-8-1)/2+1 = 4, but the
        # partially synchronous penalty 3b drops that to K <= 2.
        sync = CSMConfig(big_field, 16, 4, degree=2, num_faults=4)
        assert sync.max_supported_machines == 4
        with pytest.raises(ConfigurationError):
            CSMConfig(big_field, 16, 4, degree=2, num_faults=4, partially_synchronous=True)

    def test_theorem_formula_matches_bound_for_exact_fraction(self, big_field):
        # For mu*N integral, floor((1-2mu)N/d + 1 - 1/d) equals the K bound.
        for num_nodes in (12, 20, 40):
            for degree in (1, 2):
                faults = num_nodes // 4
                config = CSMConfig(big_field, num_nodes, 1, degree, faults)
                formula = CSMConfig.theorem_max_machines(num_nodes, 0.25, degree)
                assert config.max_supported_machines == formula

    def test_basic_validation(self, big_field):
        with pytest.raises(ConfigurationError):
            CSMConfig(big_field, num_nodes=4, num_machines=5, degree=1)
        with pytest.raises(ConfigurationError):
            CSMConfig(big_field, num_nodes=4, num_machines=1, degree=0)
        with pytest.raises(ConfigurationError):
            CSMConfig(big_field, num_nodes=4, num_machines=1, degree=1, num_faults=-1)


class TestCodedStateStore:
    def test_replace_and_round_tracking(self, big_field):
        store = CodedStateStore(big_field, 0, np.array([1, 2]))
        assert store.state_dim == 2 and store.round_index == 0
        store.replace(np.array([3, 4]))
        assert store.coded_state.tolist() == [3, 4]
        assert store.round_index == 1
        with pytest.raises(ConfigurationError):
            store.replace(np.array([1, 2, 3]))

    def test_update_from_decoded_matches_fresh_encoding(self, big_field, rng):
        scheme = LagrangeScheme(big_field, num_machines=3, num_nodes=8)
        encoder = CodedStateEncoder(scheme)
        states = rng.integers(0, 1000, size=(3, 2))
        coded = encoder.encode(states)
        node_index = 5
        store = CodedStateStore(big_field, node_index, coded[node_index])
        new_states = rng.integers(0, 1000, size=(3, 2))
        store.update_from_decoded(scheme.coefficient_row(node_index), new_states)
        assert store.coded_state.tolist() == encoder.encode(new_states)[node_index].tolist()

    def test_update_validation(self, big_field):
        store = CodedStateStore(big_field, 0, np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            store.update_from_decoded(np.array([1, 2, 3]), np.ones((2, 2), dtype=int))
        with pytest.raises(ConfigurationError):
            store.update_from_decoded(np.array([1, 2]), np.ones((2, 3), dtype=int))


class TestCSMNode:
    def _node(self, big_field, behavior=None):
        machine = quadratic_market_machine(big_field)
        scheme = LagrangeScheme(big_field, num_machines=3, num_nodes=8)
        states = np.arange(6).reshape(3, 2) + 1
        coded = CodedStateEncoder(scheme).encode(states)
        node = CSMNode(
            node_id="node-2",
            node_index=2,
            field=big_field,
            transition=machine.transition,
            coefficient_row=scheme.coefficient_row(2),
            initial_coded_state=coded[2],
            behavior=behavior,
        )
        return node, scheme, machine, states

    def test_encode_command_matches_scheme(self, big_field, rng):
        node, scheme, machine, _ = self._node(big_field)
        commands = rng.integers(0, 100, size=(3, 2))
        assert node.encode_command(commands).tolist() == (
            scheme.encode_for_node(2, commands).tolist()
        )

    def test_execute_coded_is_composite_evaluation(self, big_field, rng):
        node, scheme, machine, states = self._node(big_field)
        commands = rng.integers(0, 100, size=(3, 2))
        encoder = CodedStateEncoder(scheme)
        state_polys = encoder.interpolation_polynomials(states)
        command_polys = encoder.interpolation_polynomials(commands)
        composites = machine.transition.compose(state_polys, command_polys)
        coded_command = node.encode_command(commands)
        result = node.execute_coded(coded_command)
        alpha = scheme.alphas[2]
        assert result.tolist() == [h.evaluate(alpha) for h in composites]

    def test_report_result_honest_vs_corrupt(self, big_field, rng):
        node, *_ = self._node(big_field)
        value = np.array([1, 2, 3, 4])
        assert node.report_result(value, rng).tolist() == value.tolist()
        faulty, *_ = self._node(big_field, behavior=CorruptResultBehavior())
        assert faulty.report_result(value, rng).tolist() != value.tolist()
        assert faulty.is_faulty

    def test_counter_accumulates_and_resets(self, big_field, rng):
        node, scheme, *_ = self._node(big_field)
        commands = rng.integers(0, 100, size=(3, 2))
        node.encode_command(commands)
        assert node.counter.total > 0
        node.reset_counter()
        assert node.counter.total == 0

    def test_dimension_mismatch_rejected(self, big_field):
        machine = quadratic_market_machine(big_field)
        with pytest.raises(ConfigurationError):
            CSMNode(
                "n", 0, big_field, machine.transition,
                np.array([1, 2, 3]), np.array([1, 2, 3]),  # state dim should be 2
            )


class TestCodedExecutionEngine:
    def _engine(self, big_field, num_nodes=16, num_machines=4, behaviors=None, **kwargs):
        machine = quadratic_market_machine(big_field)
        config = CSMConfig(
            big_field, num_nodes=num_nodes, num_machines=num_machines,
            degree=2, num_faults=kwargs.pop("num_faults", 2),
        )
        return CodedExecutionEngine(
            config, machine, behaviors=behaviors, rng=np.random.default_rng(7), **kwargs
        ), machine

    def test_round_matches_reference_execution(self, big_field, rng):
        engine, machine = self._engine(big_field)
        commands = rng.integers(1, 50, size=(4, 2))
        # reference by hand
        expected_outputs = []
        state = np.tile(machine.initial_state, (4, 1))
        for k in range(4):
            _, out = machine.step(state[k], commands[k])
            expected_outputs.append(out.tolist())
        result = engine.execute_round(commands)
        assert result.correct
        assert result.outputs.tolist() == expected_outputs

    def test_multi_round_state_continuity(self, big_field, rng):
        engine, machine = self._engine(big_field)
        commands = rng.integers(1, 50, size=(4, 2))
        first = engine.execute_round(commands)
        second = engine.execute_round(commands)
        assert first.correct and second.correct
        # the coded execution tracked the same trajectory as direct execution
        state = machine.initial_state.copy()
        for _ in range(2):
            state, _ = machine.step(state, commands[0])
        assert second.states[0].tolist() == state.tolist()

    def test_tolerates_faults_up_to_decoding_bound(self, big_field, rng):
        # N=16, K=4, d=2 -> d(K-1)=6, radius=(16-7)//2=4
        behaviors = {f"node-{i}": RandomGarbageBehavior() for i in range(4)}
        engine, _ = self._engine(big_field, behaviors=behaviors, num_faults=4)
        result = engine.execute_round(rng.integers(1, 50, size=(4, 2)))
        assert result.correct
        assert set(result.diagnostics["error_nodes"]) <= {0, 1, 2, 3}

    def test_fails_beyond_decoding_bound(self, big_field, rng):
        behaviors = {f"node-{i}": CorruptResultBehavior(offset=i + 1) for i in range(5)}
        engine, _ = self._engine(big_field, behaviors=behaviors, num_faults=4)
        result = engine.execute_round(rng.integers(1, 50, size=(4, 2)))
        assert not result.correct
        assert result.diagnostics["decoding_failed"]

    def test_silent_nodes_treated_as_erasures(self, big_field, rng):
        behaviors = {"node-0": SilentBehavior(), "node-5": SilentBehavior()}
        engine, _ = self._engine(big_field, behaviors=behaviors)
        result = engine.execute_round(rng.integers(1, 50, size=(4, 2)))
        assert result.correct

    def test_equivocation_does_not_split_honest_nodes(self, big_field, rng):
        behaviors = {"node-3": EquivocatingBehavior(), "node-9": EquivocatingBehavior()}
        engine, _ = self._engine(
            big_field, behaviors=behaviors, decode_at_every_node=True
        )
        result = engine.execute_round(rng.integers(1, 50, size=(4, 2)))
        assert result.correct
        assert result.diagnostics.get("per_node_decode")
        assert set(result.diagnostics["error_nodes"]) == {3, 9}

    def test_honest_coded_states_stay_consistent(self, big_field, rng):
        engine, _ = self._engine(big_field)
        commands = rng.integers(1, 50, size=(4, 2))
        engine.execute_round(commands)
        # every honest node's coded state equals re-encoding the true states
        expected = engine.encoder.encode(engine.states)
        for node in engine.honest_nodes():
            assert node.coded_state.tolist() == expected[node.node_index].tolist()

    def test_storage_efficiency_is_k(self, big_field):
        engine, _ = self._engine(big_field)
        assert engine.storage_efficiency == 4.0
        for node in engine.nodes:
            assert node.storage.storage_elements == engine.machine.state_dim

    def test_ops_accounting_nonzero_for_all_nodes(self, big_field, rng):
        engine, _ = self._engine(big_field)
        result = engine.execute_round(rng.integers(1, 50, size=(4, 2)))
        assert set(result.ops_per_node) == set(engine.node_ids)
        assert all(ops > 0 for ops in result.ops_per_node.values())

    def test_command_shape_validation(self, big_field):
        engine, _ = self._engine(big_field)
        with pytest.raises(ConfigurationError):
            engine.execute_round(np.ones((3, 2), dtype=int))

    def test_degree_mismatch_rejected(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)  # degree 1
        config = CSMConfig(big_field, 8, 2, degree=2, num_faults=1)
        with pytest.raises(ConfigurationError):
            CodedExecutionEngine(config, machine)
