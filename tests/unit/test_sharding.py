"""Unit tests for the sharded service façade.

Covers the partition/routing surface (global machine indices to per-shard
local slots, balanced contiguous partitions), the global-uniqueness of
ticket sequences across shard pools, per-shard failure isolation (a failed
round on one shard must not touch another shard's tickets), the merged
reporting view (global round indices, per-shard throughput widths), and the
tick policies (all shards per tick vs round robin).
"""

import numpy as np
import pytest

from repro.consensus.command_pool import SequenceAllocator
from repro.core.config import CSMConfig
from repro.core.protocol import CSMProtocol
from repro.exceptions import ConfigurationError
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior
from repro.replication import FullReplicationSMR, ReplicationProtocol
from repro.service import (
    CSMService,
    FailureReason,
    ShardedCSMService,
    TicketState,
)
from repro.service.sharding import partition_machines


def _replication_backend(field, num_machines=2, num_nodes=4, behaviors=None, seed=0):
    machine = bank_account_machine(field, num_accounts=2)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    engine = FullReplicationSMR(
        machine, num_machines, node_ids, behaviors, np.random.default_rng(seed)
    )
    return ReplicationProtocol(engine)


def _csm_backend(field, num_machines=2, num_nodes=8, seed=3):
    machine = bank_account_machine(field, num_accounts=2)
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=num_machines,
        degree=machine.degree,
        num_faults=1,
    )
    return CSMProtocol(config, machine, rng=np.random.default_rng(seed))


def _sharded(field, shard_sizes=(2, 2), **kwargs):
    backends = [
        _replication_backend(field, num_machines=size, seed=i)
        for i, size in enumerate(shard_sizes)
    ]
    return ShardedCSMService(backends, **kwargs)


class TestPartition:
    def test_balanced_contiguous_sizes(self):
        assert partition_machines(6, 2) == [3, 3]
        assert partition_machines(7, 3) == [3, 2, 2]
        assert partition_machines(3, 3) == [1, 1, 1]

    def test_invalid_partitions_raise(self):
        with pytest.raises(ConfigurationError):
            partition_machines(4, 0)
        with pytest.raises(ConfigurationError):
            partition_machines(2, 3)  # a shard would be empty

    def test_from_partition_checks_backend_width(self, big_field):
        with pytest.raises(ConfigurationError, match="partition requires"):
            ShardedCSMService.from_partition(
                4, 2, lambda s, size: _replication_backend(big_field, size + 1)
            )
        service = ShardedCSMService.from_partition(
            5, 2, lambda s, size: _replication_backend(big_field, size, seed=s)
        )
        assert service.num_machines == 5
        assert [shard.num_machines for shard in service.shards] == [3, 2]

    def test_configuration_validation(self, big_field):
        with pytest.raises(ConfigurationError):
            ShardedCSMService([])
        with pytest.raises(ConfigurationError):
            ShardedCSMService([object()])
        with pytest.raises(ConfigurationError):
            _sharded(big_field, tick_mode="zigzag")


class TestRouting:
    def test_global_indices_route_to_owning_shard(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 3))
        assert service.num_machines == 5
        assert service.shard_of(0) == (0, 0)
        assert service.shard_of(1) == (0, 1)
        assert service.shard_of(2) == (1, 0)
        assert service.shard_of(4) == (1, 2)
        with pytest.raises(ConfigurationError):
            service.shard_of(5)
        with pytest.raises(ConfigurationError):
            service.shard_of(-1)

    def test_ticket_reports_global_machine_index(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        ticket = service.connect("alice").submit(3, [7, 7])
        assert ticket.machine_index == 3  # not the shard-local slot 1
        service.drain()
        assert ticket.state is TicketState.EXECUTED
        np.testing.assert_array_equal(ticket.result(), [7, 7])

    def test_submission_lands_in_one_shard_only(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        service.connect("alice").submit(2, [1, 1])
        assert service.shards[0].pending_commands() == 0
        assert service.shards[1].pending_commands() == 1
        assert service.pending_commands() == 1


class TestSequenceUniqueness:
    def test_sequences_unique_and_submission_ordered_across_shards(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        session = service.connect("alice")
        # Interleave submissions across both shards.
        tickets = [session.submit(m, [m, m]) for m in (0, 2, 1, 3, 2, 0)]
        sequences = [t.sequence for t in tickets]
        assert sequences == list(range(6))  # globally unique AND ordered
        assert [t.sequence for t in service.tickets()] == sequences

    def test_shared_allocator_spans_every_shard_pool(self, big_field):
        service = _sharded(big_field, shard_sizes=(1, 1, 1))
        for shard in service.shards:
            assert shard.pool.sequence_source is service.sequence_source
        service.connect("a").submit(0, [1, 1])
        service.connect("b").submit(2, [2, 2])
        assert service.sequence_source.issued == 2


class TestFailureIsolation:
    def test_failed_shard_round_spares_other_shards(self, big_field):
        # Shard 1's replicas are mostly Byzantine: its round cannot verify.
        # Shard 0 is healthy — its ticket must execute untouched.
        node_ids = [f"node-{i}" for i in range(4)]
        bad = {n: RandomGarbageBehavior() for n in node_ids[:3]}
        backends = [
            _replication_backend(big_field, num_machines=2, seed=0),
            _replication_backend(big_field, num_machines=2, behaviors=bad, seed=1),
        ]
        service = ShardedCSMService(backends)
        healthy = service.connect("alice").submit(0, [5, 5])
        doomed = service.connect("bob").submit(2, [9, 9])
        service.drain()
        assert healthy.state is TicketState.EXECUTED
        np.testing.assert_array_equal(healthy.result(), [5, 5])
        assert doomed.state is TicketState.FAILED
        assert doomed.failure_reason is FailureReason.VERIFICATION_FAILED
        assert service.failed_rounds == 1
        assert not service.all_rounds_correct
        # The merged failure ledger names the global round index of the
        # failed shard round, and only bob's round is in it.
        assert "bob" in service.failed_deliveries
        assert "alice" not in service.failed_deliveries

    def test_exploding_shard_fails_only_its_tickets(self, big_field):
        class ExplodingBackend(ReplicationProtocol):
            def run_rounds_batched(self, command_batches, client_rounds=None):
                raise RuntimeError("shard 1 down")

        machine = bank_account_machine(big_field, num_accounts=2)
        node_ids = [f"node-{i}" for i in range(4)]
        backends = [
            _replication_backend(big_field, num_machines=2, seed=0),
            ExplodingBackend(
                FullReplicationSMR(
                    machine, 2, node_ids, rng=np.random.default_rng(1)
                )
            ),
        ]
        service = ShardedCSMService(backends)
        healthy = service.connect("alice").submit(1, [3, 3])
        doomed = service.connect("bob").submit(2, [4, 4])
        with pytest.raises(RuntimeError, match="shard 1 down"):
            service.drive(flush=True)
        # Shard 0 was driven before shard 1 raised; its ticket executed.
        assert healthy.state is TicketState.EXECUTED
        assert doomed.state is TicketState.FAILED
        assert doomed.failure_reason is FailureReason.BACKEND_ERROR


class TestMergedReporting:
    def test_global_round_indices_are_deterministic(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        session = service.connect("alice")
        # Shard 1 gets a deeper queue than shard 0: global history must
        # interleave per tick in shard order, shard-local order within.
        session.submit(0, [1, 1])
        session.submit(2, [2, 2])
        session.submit(2, [3, 3])
        records = service.drain()
        assert [r.round_index for r in records] == [0, 1, 2]
        assert [r.round_index for r in service.history] == [0, 1, 2]
        assert [(r.shard_index, r.shard_round_index) for r in records] == [
            (0, 0),
            (1, 0),
            (1, 1),
        ]

    def test_merged_delivery_and_throughput_views(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        service.connect("alice").submit(0, [1, 1])
        service.connect("bob").submit(3, [2, 2])
        service.drain()
        delivered = service.delivered_outputs
        np.testing.assert_array_equal(delivered["alice"][0], [1, 1])
        np.testing.assert_array_equal(delivered["bob"][0], [2, 2])
        assert service.failed_rounds == 0
        assert service.all_rounds_correct
        assert service.measured_throughput() > 0

    def test_throughput_charges_each_round_at_shard_width(self, big_field):
        # Unequal shard widths: the merged mean must use each round's own
        # K_s, reproducing the mean of the per-shard reports.
        service = _sharded(big_field, shard_sizes=(1, 3))
        for m in range(4):
            service.connect("c").submit(m, [1, 1])
        service.drain()
        per_round = []
        for record in service.history:
            per_round.append(record.result.throughput(record.shard_num_machines))
        assert service.measured_throughput() == pytest.approx(
            float(np.mean(per_round))
        )


class TestTickModes:
    def test_all_mode_advances_every_shard_per_tick(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2))
        service.connect("a").submit(0, [1, 1])
        service.connect("b").submit(2, [2, 2])
        records = service.drive(flush=True)
        assert len(records) == 2
        assert {r.shard_index for r in records} == {0, 1}

    def test_round_robin_advances_one_shard_per_tick(self, big_field):
        service = _sharded(big_field, shard_sizes=(2, 2), tick_mode="round_robin")
        service.connect("a").submit(0, [1, 1])
        service.connect("b").submit(2, [2, 2])
        first = service.drive(flush=True)
        assert [r.shard_index for r in first] == [0]
        second = service.drive(flush=True)
        assert [r.shard_index for r in second] == [1]
        assert service.pending_commands() == 0
        # drain() keeps cycling the cursor until every shard is dry.
        service.connect("a").submit(1, [3, 3])
        service.connect("b").submit(3, [4, 4])
        assert len(service.drain()) == 2

    def test_round_robin_drain_skips_idle_shards(self, big_field):
        # Regression: drain() used to raise "made no progress" when the
        # cursor landed on an idle shard while another shard held traffic;
        # an idle tick only counts as a stall after a full fruitless cycle.
        service = _sharded(
            big_field, shard_sizes=(2, 2, 2), tick_mode="round_robin"
        )
        ticket = service.connect("alice").submit(4, [6, 6])  # last shard only
        records = service.drain()
        assert ticket.state is TicketState.EXECUTED
        assert [r.shard_index for r in records] == [2]
        assert service.pending_commands() == 0

    def test_single_shard_is_a_pass_through(self, big_field):
        backend = _csm_backend(big_field)
        sharded = ShardedCSMService([backend])
        ticket = sharded.connect("alice").submit(1, [8, 8])
        records = sharded.drain()
        assert ticket.state is TicketState.EXECUTED
        assert len(records) == 1 and records[0].shard_index == 0
        assert sharded.measured_throughput() == backend.measured_throughput()
        # And an identically-built unsharded service agrees bit for bit.
        unsharded = CSMService(_csm_backend(big_field))
        unsharded.connect("alice").submit(1, [8, 8])
        (plain,) = unsharded.drain()
        np.testing.assert_array_equal(records[0].commands, plain.commands)
        assert records[0].clients == plain.clients
        np.testing.assert_array_equal(
            records[0].result.outputs, plain.result.outputs
        )


class TestShardedPipeline:
    def test_pipeline_flag_forwarded_to_every_shard(self, big_field):
        sharded = _sharded(big_field, pipeline=True)
        assert sharded.pipeline
        assert all(shard.pipeline for shard in sharded.shards)
        assert not _sharded(big_field).pipeline

    def test_pipelined_sharded_drive_matches_batched(self, big_field):
        rng = np.random.default_rng(6)
        commands = [rng.integers(1, 1000, size=(4, 2)) for _ in range(3)]

        def run(pipeline):
            backends = [_csm_backend(big_field, seed=3), _csm_backend(big_field, seed=4)]
            service = ShardedCSMService(backends, max_batch_rounds=3, pipeline=pipeline)
            sessions = [service.connect(f"client:{i}") for i in range(4)]
            for round_commands in commands:
                for i in range(4):
                    sessions[i].submit(i, round_commands[i])
                service.drive()
            service.drain()
            return service

        batched = run(False)
        pipelined = run(True)
        assert len(batched.history) == len(pipelined.history)
        for bat, pip in zip(batched.history, pipelined.history):
            assert bat.shard_index == pip.shard_index
            np.testing.assert_array_equal(bat.commands, pip.commands)
            np.testing.assert_array_equal(bat.result.outputs, pip.result.outputs)
            assert bat.result.correct == pip.result.correct
        for bat, pip in zip(batched.tickets(), pipelined.tickets()):
            assert bat.sequence == pip.sequence and bat.state is pip.state


class TestShardHealth:
    """Per-shard health tracking: degradation, shedding, probe recovery."""

    def _burst(self, at, until, nodes=4):
        # Four corrupt rows exceed the N=8, K=2 decode radius (3).
        from repro.faults import FaultSchedule

        schedule = FaultSchedule()
        for i in range(nodes):
            schedule.behavior(f"node-{i}", "corrupt", at=at, until=until)
        return schedule

    def test_degraded_shard_sheds_then_probes_back_to_health(self, big_field):
        from repro.service import RetryPolicy, ShardHealth

        service = ShardedCSMService(
            [_csm_backend(big_field, seed=0), _csm_backend(big_field, seed=1)],
            retry=RetryPolicy(max_attempts=5, backoff_ticks=1),
            faults={1: self._burst(at=0, until=3)},
            degraded_after=2,
        )
        session = service.connect("alice")
        doomed = [session.submit(2, [10 + r, 0]) for r in range(3)]
        service.drive(flush=True)  # shard 1 fails rounds 0..2 consecutively
        assert service.shard_health(0) is ShardHealth.HEALTHY
        assert service.shard_health(1) is ShardHealth.DEGRADED
        # while the retry backlog probes, new admissions to shard 1 are shed
        shed = session.submit(2, [99, 0])
        assert shed.state is TicketState.THROTTLED
        # ...but shard 0 still admits
        fine = session.submit(0, [7, 7])
        assert fine.state is TicketState.PENDING
        service.drain()
        assert all(t.state is TicketState.EXECUTED for t in doomed)
        assert fine.state is TicketState.EXECUTED
        assert service.shard_health(1) is ShardHealth.HEALTHY
        timeline = service.qos_report()["health_timeline"]
        assert [entry["state"] for entry in timeline if entry["shard"] == 1] == [
            "degraded",
            "healthy",
        ]

    def test_degraded_shard_without_backlog_admits_probes(self, big_field):
        from repro.service import ShardHealth

        node_ids = [f"node-{i}" for i in range(4)]
        bad = {n: RandomGarbageBehavior() for n in node_ids[:3]}
        service = ShardedCSMService(
            [
                _replication_backend(big_field, seed=0),
                _replication_backend(big_field, behaviors=bad, seed=1),
            ],
            degraded_after=1,
        )
        doomed = service.connect("bob").submit(2, [9, 9])
        service.drain()
        assert doomed.state is TicketState.FAILED
        assert service.shard_health(1) is ShardHealth.DEGRADED
        # no backlog is left, so the next submission is admitted as a probe
        probe = service.connect("bob").submit(2, [4, 4])
        assert probe.state is TicketState.PENDING

    def test_facade_merges_shard_fault_reports(self, big_field):
        from repro.service import RetryPolicy

        schedule = self._burst(at=0, until=1)
        service = ShardedCSMService(
            [_csm_backend(big_field, seed=0), _csm_backend(big_field, seed=1)],
            retry=RetryPolicy(max_attempts=3, backoff_ticks=1),
            faults={1: schedule},
        )
        session = service.connect("alice")
        tickets = [session.submit(k, [5, k]) for k in range(4)]
        service.drain()
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        report = service.fault_report()
        assert report.injected_events == len(schedule.events)
        assert report.applied_events == len(schedule.events)
        assert report.recovered_tickets >= 1
        merged = service.qos_report()
        assert merged["faults"]["injected_events"] == report.injected_events
        assert merged["shard_health"] == ["healthy", "healthy"]
