"""Unit tests for the network substrate: messages, signatures, delay models,
the event scheduler, the simulated network, and the Byzantine behaviours."""

import numpy as np
import pytest

from repro.net.byzantine import (
    CorruptResultBehavior,
    DelayingBehavior,
    EquivocatingBehavior,
    FaultOnsetBehavior,
    HonestBehavior,
    RandomGarbageBehavior,
    SilentBehavior,
    behavior_from_name,
)
from repro.net.latency import PartiallySynchronousDelay, SynchronousDelay
from repro.net.message import Message, MessageKind
from repro.net.network import SimulatedNetwork
from repro.net.signatures import KeyRegistry
from repro.net.simulator import EventScheduler


class TestMessagesAndSignatures:
    def _message(self, payload=None):
        return Message(
            sender="node-1",
            recipient="node-2",
            kind=MessageKind.CODED_RESULT,
            round_index=3,
            payload=payload if payload is not None else {"value": 7},
        )

    def test_sign_and_verify(self):
        keys = KeyRegistry()
        message = keys.sign(self._message())
        assert keys.verify(message)

    def test_unsigned_message_fails_verification(self):
        keys = KeyRegistry()
        keys.register("node-1")
        assert not keys.verify(self._message())

    def test_tampered_payload_fails_verification(self):
        keys = KeyRegistry()
        message = keys.sign(self._message({"value": 7}))
        message.payload = {"value": 8}
        assert not keys.verify(message)

    def test_forgery_is_detected(self):
        keys = KeyRegistry()
        keys.register("node-1")
        keys.register("victim")
        forged = keys.sign_as(self._message(), "victim")
        assert forged.sender == "victim"
        assert not keys.verify(forged)

    def test_signature_covers_numpy_payloads(self):
        keys = KeyRegistry()
        message = self._message(np.array([1, 2, 3]))
        keys.sign(message)
        assert keys.verify(message)
        message.payload = np.array([1, 2, 4])
        assert not keys.verify(message)

    def test_broadcast_copy_keeps_signature_valid(self):
        keys = KeyRegistry()
        message = keys.sign(self._message())
        copy = message.with_recipient("node-9")
        assert keys.verify(copy)

    def test_require_valid_raises(self):
        keys = KeyRegistry()
        with pytest.raises(Exception):
            keys.require_valid(self._message())


class TestDelayModels:
    def test_synchronous_delay_within_bounds(self, rng):
        model = SynchronousDelay(max_delay=2.0, min_delay=0.5)
        for _ in range(100):
            delay = model.sample_delay(0.0, rng)
            assert 0.5 <= delay <= 2.0
        assert model.synchronous_bound == 2.0
        assert model.is_synchronous_at(0.0)

    def test_synchronous_delay_validation(self):
        with pytest.raises(ValueError):
            SynchronousDelay(max_delay=1.0, min_delay=2.0)

    def test_partially_synchronous_before_and_after_gst(self, rng):
        model = PartiallySynchronousDelay(gst=10.0, max_delay=1.0, pre_gst_extra=100.0)
        post = [model.sample_delay(11.0, rng) for _ in range(100)]
        assert all(d <= 1.0 for d in post)
        pre = [model.sample_delay(0.0, rng) for _ in range(100)]
        assert max(pre) > 1.0  # some messages heavily delayed before GST
        assert not model.is_synchronous_at(5.0)
        assert model.is_synchronous_at(10.0)


class TestEventScheduler:
    def test_events_processed_in_time_order(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.0, lambda: seen.append("late"))
        scheduler.schedule(1.0, lambda: seen.append("early"))
        scheduler.run_until_idle()
        assert seen == ["early", "late"]
        assert scheduler.now == 2.0

    def test_run_until_only_processes_due_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, lambda: seen.append(1))
        scheduler.schedule(5.0, lambda: seen.append(5))
        scheduler.run_until(2.0)
        assert seen == [1]
        assert scheduler.pending == 1

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.advance_to(5.0)
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_run_until_idle_event_cap(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule(1.0, reschedule)

        scheduler.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            scheduler.run_until_idle(max_events=50)


class TestSimulatedNetwork:
    def _network(self):
        network = SimulatedNetwork(
            delay_model=SynchronousDelay(max_delay=1.0, min_delay=0.1),
            rng=np.random.default_rng(0),
        )
        for node in ("a", "b", "c"):
            network.register(node)
        return network

    def test_send_and_collect(self):
        network = self._network()
        network.send(
            Message("a", "b", MessageKind.CODED_RESULT, 0, {"x": 1})
        )
        received = network.collect("b", kind=MessageKind.CODED_RESULT, round_index=0)
        assert len(received) == 1
        assert received[0].payload == {"x": 1}

    def test_collect_filters_round_and_kind(self):
        network = self._network()
        network.send(Message("a", "b", MessageKind.CODED_RESULT, 0, 1))
        network.send(Message("a", "b", MessageKind.CODED_RESULT, 1, 2))
        network.send(Message("a", "b", MessageKind.CLIENT_COMMAND, 0, 3))
        received = network.collect("b", kind=MessageKind.CODED_RESULT, round_index=0)
        assert [m.payload for m in received] == [1]

    def test_broadcast_reaches_everyone(self):
        network = self._network()
        network.broadcast(Message("a", "*", MessageKind.CONSENSUS_PROPOSAL, 0, "p"))
        received = network.collect_all(["a", "b", "c"], kind=MessageKind.CONSENSUS_PROPOSAL)
        assert all(len(msgs) == 1 for msgs in received.values())

    def test_unknown_recipient_rejected(self):
        network = self._network()
        with pytest.raises(KeyError):
            network.send(Message("a", "zzz", MessageKind.CODED_RESULT, 0, 1))

    def test_forged_messages_dropped(self):
        network = self._network()
        forged = network.keys.sign_as(
            Message("a", "b", MessageKind.CODED_RESULT, 0, 1), "c"
        )
        network.send(forged, sign=False)
        received = network.collect("b", kind=MessageKind.CODED_RESULT)
        assert received == []
        assert network.rejected_signatures == 1

    def test_stats(self):
        network = self._network()
        network.send(Message("a", "b", MessageKind.CODED_RESULT, 0, 1))
        network.flush()
        stats = network.stats()
        assert stats["messages_sent"] == 1
        assert stats["rejected_signatures"] == 0

    def test_deliver_all_matches_broadcast(self):
        """Bulk delivery: same recipients, payloads and delivery times as
        broadcast (it samples delays from the same rng in the same order),
        without creating scheduler events."""
        scheduled = self._network()
        bulk = self._network()
        message = Message("a", "*", MessageKind.CONSENSUS_PROPOSAL, 0, {"v": 1})
        scheduled.broadcast(
            Message("a", "*", MessageKind.CONSENSUS_PROPOSAL, 0, {"v": 1})
        )
        records = bulk.deliver_all(message)
        assert bulk.scheduler.pending == 0
        assert scheduled.scheduler.pending > 0
        received_scheduled = scheduled.collect_all(["a", "b", "c"])
        received_bulk = bulk.collect_all(["a", "b", "c"])
        for node in ("a", "b", "c"):
            assert [m.payload for m in received_scheduled[node]] == [
                m.payload for m in received_bulk[node]
            ]
        # identical delay draws -> identical delivery times
        assert [r.delivery_time for r in scheduled.delivery_log] == [
            r.delivery_time for r in bulk.delivery_log
        ]
        assert scheduled.messages_sent == bulk.messages_sent == len(records) - 1

    def test_deliver_all_respects_collection_deadline(self):
        network = SimulatedNetwork(
            delay_model=SynchronousDelay(max_delay=5.0, min_delay=4.0),
            rng=np.random.default_rng(0),
        )
        for node in ("a", "b"):
            network.register(node)
        network.deliver_all(Message("a", "*", MessageKind.CODED_RESULT, 0, 1), ["b"])
        # Delay is at least 4.0: a 1.0-window collect must not see the copy...
        assert network.collect("b", timeout=1.0) == []
        # ...but a later collect past the delivery time must.
        assert len(network.collect("b", timeout=5.0)) == 1

    def test_deliver_all_drops_forged_messages(self):
        network = self._network()
        forged = network.keys.sign_as(
            Message("a", "*", MessageKind.CODED_RESULT, 0, 1), "c"
        )
        network.deliver_all(forged, ["a", "b"], sign=False)
        assert network.collect("a") == [] and network.collect("b") == []
        assert network.rejected_signatures == 2

    def test_bulk_delivery_context_reroutes_broadcast(self):
        network = self._network()
        with network.bulk_delivery():
            network.broadcast(Message("a", "*", MessageKind.CONSENSUS_VOTE, 0, "e"))
            assert network.scheduler.pending == 0
        # Outside the context, broadcast schedules events again.
        network.broadcast(Message("a", "*", MessageKind.CONSENSUS_VOTE, 0, "e"))
        assert network.scheduler.pending > 0
        received = network.collect_all(["a", "b", "c"], kind=MessageKind.CONSENSUS_VOTE)
        assert all(len(msgs) == 2 for msgs in received.values())


class TestByzantineBehaviors:
    def test_honest_behavior_returns_value_unchanged(self, big_field, rng):
        value = np.array([1, 2, 3])
        result = HonestBehavior().transform_result(big_field, "n", value, rng)
        assert result.tolist() == [1, 2, 3]
        assert not HonestBehavior().is_faulty

    def test_corrupt_behavior_changes_every_component(self, big_field, rng):
        value = np.array([1, 2, 3])
        result = CorruptResultBehavior(offset=5).transform_result(big_field, "n", value, rng)
        assert result.tolist() == [6, 7, 8]
        with pytest.raises(ValueError):
            CorruptResultBehavior(offset=0)

    def test_silent_behavior_returns_none(self, big_field, rng):
        assert SilentBehavior().transform_result(big_field, "n", np.array([1]), rng) is None

    def test_garbage_behavior_changes_value(self, big_field, rng):
        value = np.array([1, 2, 3, 4, 5, 6, 7, 8])
        result = RandomGarbageBehavior().transform_result(big_field, "n", value, rng)
        assert result.tolist() != value.tolist()

    def test_equivocating_behavior_differs_per_recipient(self, big_field, rng):
        value = np.array([10, 20])
        behavior = EquivocatingBehavior()
        to_a = behavior.transform_result(big_field, "n", value, rng, recipient="a")
        to_b = behavior.transform_result(big_field, "n", value, rng, recipient="b")
        assert to_a.tolist() != value.tolist()
        assert to_a.tolist() != to_b.tolist()

    def test_delaying_behavior_keeps_value_but_flags_delay(self, big_field, rng):
        behavior = DelayingBehavior()
        assert behavior.delays_message()
        assert behavior.transform_result(big_field, "n", np.array([5]), rng).tolist() == [5]

    def test_behavior_from_name(self):
        assert isinstance(behavior_from_name("honest"), HonestBehavior)
        assert isinstance(behavior_from_name("silent"), SilentBehavior)
        with pytest.raises(ValueError):
            behavior_from_name("teleport")

    def test_fault_onset_behavior_honest_then_inner(self, big_field, rng):
        behavior = FaultOnsetBehavior(CorruptResultBehavior(offset=7), onset_round=2)
        assert behavior.is_faulty  # counted in the fault budget from round 0
        value = np.array([1, 2])
        # Rounds 0 and 1: honest copies of the true value.
        assert behavior.transform_result(big_field, "n", value, rng).tolist() == [1, 2]
        assert behavior.transform_result(big_field, "n", value, rng).tolist() == [1, 2]
        # Round 2 onwards: the inner deviation takes over.
        assert behavior.transform_result(big_field, "n", value, rng).tolist() == [8, 9]
        assert behavior.transform_result(big_field, "n", value, rng).tolist() == [8, 9]

    def test_fault_onset_behavior_defers_inner_delay(self, big_field, rng):
        behavior = FaultOnsetBehavior(DelayingBehavior(), onset_round=1)
        behavior.transform_result(big_field, "n", np.array([5]), rng)
        assert not behavior.delays_message()  # round 0 was honest
        behavior.transform_result(big_field, "n", np.array([5]), rng)
        assert behavior.delays_message()  # onset reached

    def test_fault_onset_behavior_rejects_negative_onset(self):
        with pytest.raises(ValueError):
            FaultOnsetBehavior(RandomGarbageBehavior(), onset_round=-1)
