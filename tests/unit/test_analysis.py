"""Unit tests for the analysis layer (Table 1 formulas, Table 2 bounds,
complexity models, measurement harnesses) and the experiment modules."""

import math

import numpy as np
import pytest

from repro.analysis.bounds import binding_bound, phase_bounds, table2_rows
from repro.analysis.complexity import (
    csm_total_execution_cost,
    intermix_worst_case_overhead,
    naive_coding_cost,
    per_node_delegated_coding_cost,
    quasilinear_coding_cost,
    transition_operation_count,
)
from repro.analysis.measurement import (
    find_breaking_faults,
    measure_csm,
    measure_full_replication,
    measure_partial_replication,
)
from repro.analysis.metrics import (
    csm_metrics,
    csm_supported_machines,
    full_replication_metrics,
    information_theoretic_limit,
    partial_replication_metrics,
    table1_rows,
)
from repro.experiments import intermix_report, scaling, table1, table2
from repro.experiments.report import format_table
from repro.machine.library import bank_account_machine, quadratic_market_machine


class TestTable1Formulas:
    def test_full_replication_row(self):
        row = full_replication_metrics(num_nodes=20, transition_cost=4)
        assert row.security == 9
        assert row.storage_efficiency == 1.0
        assert row.throughput == 0.25

    def test_partial_replication_row(self):
        row = partial_replication_metrics(20, 5, transition_cost=4)
        assert row.security == 1  # groups of 4 -> (4-1)//2
        assert row.storage_efficiency == 5.0
        assert row.throughput == 1.25

    def test_limit_row_dominates_everything(self):
        limit = information_theoretic_limit(20, 4)
        for row in table1_rows(20, 5, 0.25, 1, 4, 2):
            assert row.security <= limit.security + 1e-9
            assert row.storage_efficiency <= limit.storage_efficiency
            assert row.throughput <= limit.throughput + 1e-9

    def test_csm_supported_machines_formula(self):
        # (1 - 2*1/4) * 24 / 1 + 1 - 1 = 12
        assert csm_supported_machines(24, 0.25, 1) == 12
        # degree 2 halves it (up to rounding)
        assert csm_supported_machines(24, 0.25, 2) == 6
        # partially synchronous penalty
        assert csm_supported_machines(24, 0.25, 1, partially_synchronous=True) == 6

    def test_csm_row_scales_linearly_with_n(self):
        small = csm_metrics(20, 0.25, 1, 4, 2)
        large = csm_metrics(200, 0.25, 1, 4, 2)
        assert large.security == pytest.approx(10 * small.security)
        assert large.storage_efficiency >= 9 * small.storage_efficiency

    def test_simultaneous_scaling_only_for_csm(self):
        # The qualitative Table 1 claim: CSM is the only scheme whose security
        # AND storage both grow when N doubles (K fixed for the baselines).
        rows_small = {r.scheme: r for r in table1_rows(24, 6, 0.25, 1, 4, 2)}
        rows_large = {r.scheme: r for r in table1_rows(48, 6, 0.25, 1, 4, 2)}
        assert rows_large["full-replication"].storage_efficiency == rows_small[
            "full-replication"
        ].storage_efficiency  # stuck at 1
        assert rows_large["partial-replication"].security >= rows_small[
            "partial-replication"].security
        csm_small, csm_large = rows_small["coded-state-machine"], rows_large["coded-state-machine"]
        assert csm_large.security > csm_small.security
        assert csm_large.storage_efficiency > csm_small.storage_efficiency


class TestTable2Bounds:
    def test_phase_bounds_match_paper_inequalities(self):
        bounds = phase_bounds(num_nodes=16, num_machines=4, degree=1)
        assert bounds["synchronous"]["input-consensus"] == 15
        assert bounds["synchronous"]["decoding"] == 6
        assert bounds["synchronous"]["output-delivery"] == 7
        assert bounds["partially-synchronous"]["input-consensus"] == 5
        assert bounds["partially-synchronous"]["decoding"] == 4
        assert bounds["partially-synchronous"]["output-delivery"] == 7

    def test_decoding_is_the_binding_bound(self):
        assert binding_bound(16, 4, 1, partially_synchronous=False) == 6
        assert binding_bound(16, 4, 1, partially_synchronous=True) == 4

    def test_rows_cover_all_six_cells(self):
        rows = table2_rows(16, 4, 2)
        assert len(rows) == 6
        assert {(r.setting, r.phase) for r in rows} == {
            (s, p)
            for s in ("synchronous", "partially-synchronous")
            for p in ("input-consensus", "decoding", "output-delivery")
        }


class TestComplexityModels:
    def test_transition_operation_count_positive_and_monotone(self, big_field):
        linear = bank_account_machine(big_field, num_accounts=2)
        quadratic = quadratic_market_machine(big_field)
        assert transition_operation_count(linear.transition) > 0
        assert transition_operation_count(quadratic.transition) > transition_operation_count(
            counter.transition
        ) if (counter := bank_account_machine(big_field, 1)) else True

    def test_quasilinear_cost_between_linear_and_quadratic(self):
        # Above the (small-N) crossover the fast-arithmetic model sits strictly
        # between linear and quadratic cost, which is the asymptotic claim.
        for n in (256, 1024, 4096):
            assert n < quasilinear_coding_cost(n) < naive_coding_cost(n, n // 2)

    def test_per_node_delegated_cost_polylog(self):
        # grows much slower than linearly
        assert per_node_delegated_coding_cost(1024) < per_node_delegated_coding_cost(64) * 4

    def test_intermix_overhead_formula(self):
        value = intermix_worst_case_overhead(16, 64, 10, product_cost=2048)
        expected = 11 * 2048 + 8 * 10 * 64 + 3 * 10 * math.log2(64) + 16 - 10 - 1
        assert value == pytest.approx(expected)

    def test_csm_total_cost_delegated_beats_distributed(self):
        for n in (32, 128):
            assert csm_total_execution_cost(n, 10, delegated=True) < csm_total_execution_cost(
                n, 10, delegated=False
            )


class TestMeasurementHarness:
    def test_measure_full_replication_correct_below_bound(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        outcome = measure_full_replication(machine, 7, 2, num_faults=3, rounds=1)
        assert outcome.all_correct
        assert outcome.storage_efficiency == 1.0

    def test_measure_partial_replication_breaks_with_concentrated_faults(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        outcome = measure_partial_replication(machine, 8, 4, num_faults=1, rounds=1)
        assert not outcome.all_correct  # one fault kills a group of 2

    def test_measure_csm_correct_at_bound(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        # N=12, K=4, d=1 -> radius (12-4)//2 = 4
        outcome = measure_csm(machine, 12, 4, num_faults=4, rounds=1)
        assert outcome.all_correct
        assert outcome.storage_efficiency == 4.0

    def test_measure_csm_fails_beyond_bound(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        outcome = measure_csm(machine, 12, 4, num_faults=5, rounds=1)
        assert not outcome.all_correct

    def test_find_breaking_faults_matches_formula(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        measured = find_breaking_faults(measure_csm, machine, 12, 4, max_faults=6, rounds=1)
        assert measured == 4


class TestExperimentModules:
    def test_table1_rows_structure(self):
        rows = table1.run(num_nodes=12, fault_fraction=0.25, rounds=1, measured=True)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"formula", "measured"}
        measured = [r for r in rows if r["kind"] == "measured"]
        schemes = {r["scheme"] for r in measured}
        assert schemes == {"full-replication", "partial-replication", "coded-state-machine"}
        csm_row = next(r for r in measured if r["scheme"] == "coded-state-machine")
        assert csm_row["correct"]

    def test_table2_sweep_flips_exactly_at_bound(self):
        result = table2.run(num_nodes=12, num_machines=3, degree=1, rounds=1)
        sync_rows = [r for r in result["sweep"] if r["setting"] == "synchronous"]
        for row in sync_rows:
            assert row["correct"] == row["within_bound"]

    def test_scaling_law_measured_matches_formula(self):
        rows = scaling.scaling_law_rows(network_sizes=(8, 16), fault_fraction=0.25, degree=1)
        for row in rows:
            assert row["K_measured"] == row["K_formula"]
            assert row["csm_storage"] >= row["full_replication_storage"]

    def test_intermix_report_soundness(self):
        rows = intermix_report.soundness_rows(vector_lengths=(8,), num_nodes=8, trials=2)
        for row in rows:
            if row["worker"] == "honest":
                assert row["accepted_fraction"] == 1.0
            else:
                assert row["fraud_caught_fraction"] == 1.0
                assert row["max_queries"] <= row["2*log2K"]

    def test_committee_rows_meet_target(self):
        for row in intermix_report.committee_rows():
            assert row["actual_failure_probability"] <= row["eps_target"]

    def test_format_table_renders_all_rows(self):
        text = format_table([{"a": 1, "b": True}, {"a": 2.5, "b": False}])
        assert "yes" in text and "no" in text and "2.5" in text
        assert format_table([]) == "(no rows)"
