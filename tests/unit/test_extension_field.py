"""Unit tests for GF(2**m) and the Appendix A bit embedding."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.gf.extension_field import BinaryExtensionField


class TestConstruction:
    def test_order(self):
        assert BinaryExtensionField(8).order == 256

    def test_characteristic_is_two(self):
        assert BinaryExtensionField(4).characteristic == 2

    def test_unsupported_degree_raises(self):
        with pytest.raises(FieldError):
            BinaryExtensionField(40)

    def test_for_network_size_picks_smallest_sufficient_degree(self):
        assert BinaryExtensionField.for_network_size(5).degree == 3
        assert BinaryExtensionField.for_network_size(200).degree == 8


class TestArithmetic:
    def test_addition_is_xor(self, gf256):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_subtraction_equals_addition(self, gf256):
        assert gf256.sub(0b1010, 0b0110) == gf256.add(0b1010, 0b0110)

    def test_negation_is_identity(self, gf256):
        assert gf256.neg(123) == 123

    def test_aes_multiplication_known_value(self, gf256):
        # 0x57 * 0x83 = 0xC1 in the AES field (standard worked example).
        assert gf256.mul(0x57, 0x83) == 0xC1

    def test_multiplicative_identity(self, gf256):
        for value in (1, 7, 200, 255):
            assert gf256.mul(value, 1) == value

    def test_every_nonzero_element_has_inverse_gf16(self):
        field = BinaryExtensionField(4)
        for value in range(1, 16):
            assert field.mul(value, field.inv(value)) == 1

    def test_inverse_of_zero_raises(self, gf256):
        with pytest.raises(FieldError):
            gf256.inv(0)

    def test_pow_matches_repeated_multiplication(self, gf256):
        value = 0x53
        expected = 1
        for exponent in range(6):
            assert gf256.pow(value, exponent) == expected
            expected = gf256.mul(expected, value)

    def test_fermat_exponent_is_identity(self, gf256):
        # a**(2**m - 1) == 1 for every non-zero a.
        for value in (1, 2, 77, 255):
            assert gf256.pow(value, gf256.order - 1) == 1

    def test_vector_operations(self, gf256):
        a = gf256.array([1, 2, 3])
        b = gf256.array([3, 2, 1])
        assert list(gf256.add(a, b)) == [2, 0, 2]
        products = gf256.mul(a, b)
        assert list(products) == [gf256.mul(1, 3), gf256.mul(2, 2), gf256.mul(3, 1)]
        inverses = gf256.inv(gf256.array([5, 9]))
        assert gf256.mul(int(inverses[0]), 5) == 1
        assert gf256.mul(int(inverses[1]), 9) == 1

    def test_distributivity_spot_checks(self, gf256, rng):
        for _ in range(25):
            a, b, c = (int(rng.integers(0, 256)) for _ in range(3))
            left = gf256.mul(a, gf256.add(b, c))
            right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
            assert left == right


class TestEmbedding:
    def test_embed_bit_values(self, gf256):
        assert gf256.embed_bit(0) == 0
        assert gf256.embed_bit(1) == 1

    def test_embed_bit_rejects_non_bits(self, gf256):
        with pytest.raises(FieldError):
            gf256.embed_bit(2)

    def test_project_bit_roundtrip(self, gf256):
        assert gf256.project_bit(gf256.embed_bit(1)) == 1
        assert gf256.project_bit(gf256.embed_bit(0)) == 0

    def test_project_bit_rejects_non_embeddings(self, gf256):
        with pytest.raises(FieldError):
            gf256.project_bit(5)

    def test_polynomial_value_invariant_under_embedding(self, gf256):
        # x*y + z over GF(2) agrees with the same expression over GF(2**m)
        # when the inputs are embedded bits (Appendix A invariance).
        for x in (0, 1):
            for y in (0, 1):
                for z in (0, 1):
                    gf2_value = (x * y + z) % 2
                    embedded = gf256.add(gf256.mul(x, y), z)
                    assert embedded == gf2_value
