"""Unit tests for the state machine abstraction, the machine library, and the
Appendix A Boolean-function compiler."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gf.extension_field import BinaryExtensionField
from repro.gf.multivariate import MultivariatePolynomial
from repro.gf.polynomial import Poly
from repro.machine.boolean import (
    BooleanTransitionCompiler,
    boolean_function_to_polynomial,
    embed_bits,
    project_bits,
)
from repro.machine.interface import StateMachine
from repro.machine.library import (
    affine_kv_machine,
    bank_account_machine,
    counter_machine,
    dot_product_machine,
    quadratic_market_machine,
    random_polynomial_machine,
)
from repro.machine.polynomial_machine import PolynomialTransition


class TestPolynomialTransition:
    def test_degree_is_max_over_components(self, big_field):
        linear = MultivariatePolynomial(big_field, 2, {(1, 0): 1})
        quadratic = MultivariatePolynomial(big_field, 2, {(1, 1): 1})
        transition = PolynomialTransition(big_field, 1, 1, [linear], [quadratic])
        assert transition.degree == 2
        assert transition.result_dim == 2

    def test_step_and_result_vector_agree(self, big_field):
        machine = quadratic_market_machine(big_field)
        state = np.array([5, 3])
        command = np.array([2, 4])
        next_state, output = machine.transition.step(state, command)
        combined = machine.transition.evaluate_result_vector(state, command)
        assert list(combined[:2]) == list(next_state)
        assert list(combined[2:]) == list(output)

    def test_split_result_roundtrip(self, big_field):
        machine = quadratic_market_machine(big_field)
        vector = np.array([1, 2, 3, 4])
        state, output = machine.transition.split_result(vector)
        assert list(state) == [1, 2] and list(output) == [3, 4]

    def test_step_batch_matches_per_row_steps(self, big_field, rng):
        machine = quadratic_market_machine(big_field)
        states = rng.integers(0, 1000, size=(7, 2))
        commands = rng.integers(0, 1000, size=(7, 2))
        batch_states, batch_outputs = machine.transition.step_batch(states, commands)
        for i in range(7):
            next_state, output = machine.transition.step(states[i], commands[i])
            assert batch_states[i].tolist() == next_state.tolist()
            assert batch_outputs[i].tolist() == output.tolist()
        stacked = machine.transition.evaluate_result_vectors(states, commands)
        assert stacked.shape == (7, machine.transition.result_dim)
        for i in range(7):
            assert stacked[i].tolist() == machine.transition.evaluate_result_vector(
                states[i], commands[i]
            ).tolist()

    def test_step_batch_validates_shapes(self, big_field):
        machine = quadratic_market_machine(big_field)
        with pytest.raises(ConfigurationError):
            machine.transition.step_batch(np.ones((3, 1), dtype=int), np.ones((3, 2), dtype=int))
        with pytest.raises(ConfigurationError):
            machine.transition.step_batch(np.ones((3, 2), dtype=int), np.ones((2, 2), dtype=int))

    def test_step_batch_counts_match_scalar_per_row(self, big_field):
        """Vectorised evaluation charges exactly n x the scalar per-row cost —
        the property the execution engine's per-node accounting relies on."""
        from repro.gf.field import OperationCounter

        machine = quadratic_market_machine(big_field)
        states = np.arange(10).reshape(5, 2) + 1
        commands = np.arange(10).reshape(5, 2) + 3
        scalar_counter = OperationCounter()
        big_field.attach_counter(scalar_counter)
        try:
            machine.transition.step(states[0], commands[0])
        finally:
            big_field.attach_counter(None)
        batch_counter = OperationCounter()
        big_field.attach_counter(batch_counter)
        try:
            machine.transition.step_batch(states, commands)
        finally:
            big_field.attach_counter(None)
        assert batch_counter.additions == 5 * scalar_counter.additions
        assert batch_counter.multiplications == 5 * scalar_counter.multiplications

    def test_compose_matches_coded_evaluation(self, big_field, rng):
        # The composite polynomial h(z) = f(u(z), v(z)) evaluated at a point
        # equals f applied to the coded (evaluated) state and command.
        machine = quadratic_market_machine(big_field)
        state_polys = [Poly.random(big_field, 3, rng) for _ in range(2)]
        command_polys = [Poly.random(big_field, 3, rng) for _ in range(2)]
        composites = machine.transition.compose(state_polys, command_polys)
        for z in range(5, 12):
            coded_state = np.array([p.evaluate(z) for p in state_polys])
            coded_command = np.array([p.evaluate(z) for p in command_polys])
            direct = machine.transition.evaluate_result_vector(coded_state, coded_command)
            via_composite = [h.evaluate(z) for h in composites]
            assert list(direct) == via_composite

    def test_dimension_validation(self, big_field):
        linear = MultivariatePolynomial(big_field, 2, {(1, 0): 1})
        with pytest.raises(ConfigurationError):
            PolynomialTransition(big_field, 2, 1, [linear], [linear])  # arity mismatch
        with pytest.raises(ConfigurationError):
            PolynomialTransition(big_field, 1, 1, [linear], [])  # no outputs


class TestStateMachine:
    def test_initial_state_dimension_checked(self, big_field):
        machine = counter_machine(big_field)
        with pytest.raises(ConfigurationError):
            StateMachine(
                field=big_field,
                transition=machine.transition,
                initial_state=np.array([1, 2]),
            )

    def test_step_validates_dimensions(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=2)
        with pytest.raises(ConfigurationError):
            machine.step(np.array([1]), np.array([1, 2]))
        with pytest.raises(ConfigurationError):
            machine.step(np.array([1, 2]), np.array([1]))

    def test_machine_step_batch_delegates_and_validates(self, big_field, rng):
        machine = bank_account_machine(big_field, num_accounts=2)
        states = rng.integers(0, 100, size=(4, 2))
        commands = rng.integers(0, 100, size=(4, 2))
        next_states, outputs = machine.step_batch(states, commands)
        for i in range(4):
            expected_state, expected_output = machine.step(states[i], commands[i])
            assert next_states[i].tolist() == expected_state.tolist()
            assert outputs[i].tolist() == expected_output.tolist()
        with pytest.raises(ConfigurationError):
            machine.step_batch(states[:, :1], commands)

    def test_run_sequence(self, big_field):
        machine = counter_machine(big_field)
        final_state, outputs = machine.run(np.array([[1], [2], [3]]))
        assert final_state.tolist() == [6]
        assert outputs.reshape(-1).tolist() == [1, 3, 6]

    def test_replicate_creates_independent_machines(self, big_field):
        machines = counter_machine(big_field).replicate(3)
        assert len(machines) == 3
        assert all(m.transition is machines[0].transition for m in machines)
        machines[0].initial_state[0] = 99
        assert machines[1].initial_state[0] == 0


class TestLibraryMachines:
    def test_bank_account_is_linear(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=3)
        assert machine.degree == 1
        state, output = machine.step(np.array([10, 20, 30]), np.array([1, 2, 3]))
        assert state.tolist() == [11, 22, 33]
        assert output.tolist() == [11, 22, 33]

    def test_bank_account_withdrawal_uses_additive_inverse(self, big_field):
        machine = bank_account_machine(big_field, num_accounts=1)
        withdrawal = big_field.neg(5)
        state, _ = machine.step(np.array([20]), np.array([withdrawal]))
        assert state.tolist() == [15]

    def test_affine_kv(self, big_field):
        machine = affine_kv_machine(big_field, num_keys=2, scale=3)
        assert machine.degree == 1
        state, output = machine.step(np.array([4, 5]), np.array([1, 2]))
        assert state.tolist() == [13, 17]
        assert output.tolist() == [4, 5]  # outputs report the old values

    def test_quadratic_market_degree_and_semantics(self, big_field):
        machine = quadratic_market_machine(big_field)
        assert machine.degree == 2
        state, output = machine.step(np.array([100, 7]), np.array([3, 2]))
        assert state.tolist() == [103, 13]          # inventory+q, price+q*a
        assert output.tolist() == [21, 13]          # trade value = price*q

    def test_dot_product_machine(self, big_field):
        machine = dot_product_machine(big_field, vector_dim=3)
        assert machine.degree == 2
        state = np.array([0, 2, 3, 4])              # acc=0, weights (2,3,4)
        command = np.array([1, 1, 1])
        next_state, output = machine.step(state, command)
        assert output.tolist() == [9]
        assert next_state.tolist() == [9, 2, 3, 4]

    def test_random_machine_degree(self, big_field, rng):
        machine = random_polynomial_machine(big_field, 2, 2, degree=3, rng=rng)
        assert machine.degree == 3

    def test_invalid_library_arguments(self, big_field, rng):
        with pytest.raises(ConfigurationError):
            bank_account_machine(big_field, num_accounts=0)
        with pytest.raises(ConfigurationError):
            random_polynomial_machine(big_field, 1, 1, degree=0, rng=rng)


class TestBooleanCompiler:
    def test_and_function_polynomial(self):
        field = BinaryExtensionField(4)
        poly = boolean_function_to_polynomial(field, 2, lambda bits: bits[0] & bits[1])
        for a in (0, 1):
            for b in (0, 1):
                assert poly.evaluate([a, b]) == (a & b)

    def test_xor_and_majority_functions(self):
        field = BinaryExtensionField(4)
        xor = boolean_function_to_polynomial(field, 2, lambda bits: bits[0] ^ bits[1])
        majority = boolean_function_to_polynomial(
            field, 3, lambda bits: 1 if sum(bits) >= 2 else 0
        )
        for a in (0, 1):
            for b in (0, 1):
                assert xor.evaluate([a, b]) == (a ^ b)
                for c in (0, 1):
                    assert majority.evaluate([a, b, c]) == (1 if a + b + c >= 2 else 0)

    def test_degree_at_most_num_inputs(self, rng):
        field = BinaryExtensionField(8)
        for n in (2, 3, 4):
            table = {tuple(map(int, np.binary_repr(i, n))): int(rng.integers(0, 2))
                     for i in range(2**n)}
            poly = boolean_function_to_polynomial(field, n, lambda bits: table[tuple(bits)])
            assert poly.total_degree <= n

    def test_embed_project_roundtrip(self):
        field = BinaryExtensionField(8)
        bits = [1, 0, 1, 1]
        assert project_bits(field, embed_bits(field, bits)).tolist() == bits

    def test_compiled_machine_matches_reference(self, rng):
        # A 2-bit counter with a carry output, compiled via Appendix A.
        field = BinaryExtensionField(8)

        def next_low(bits):
            low, high, inc = bits
            return low ^ inc

        def next_high(bits):
            low, high, inc = bits
            return high ^ (low & inc)

        def carry_out(bits):
            low, high, inc = bits
            return high & low & inc

        compiler = BooleanTransitionCompiler(
            field,
            state_bits=2,
            command_bits=1,
            next_state_functions=[next_low, next_high],
            output_functions=[carry_out],
        )
        machine = compiler.compile_machine([0, 0])
        assert machine.degree <= 3
        state_bits = [0, 0]
        state = embed_bits(field, state_bits)
        for _ in range(6):
            command_bits = [1]
            expected_state, expected_output = compiler.reference_step(
                state_bits, command_bits
            )
            state, output = machine.step(state, embed_bits(field, command_bits))
            assert project_bits(field, state).tolist() == expected_state
            assert project_bits(field, output).tolist() == expected_output
            state_bits = expected_state

    def test_compiler_validation(self):
        field = BinaryExtensionField(4)
        with pytest.raises(ConfigurationError):
            BooleanTransitionCompiler(field, 2, 1, [lambda b: 0], [lambda b: 0])
        compiler = BooleanTransitionCompiler(
            field, 1, 1, [lambda b: b[0]], [lambda b: b[0]]
        )
        with pytest.raises(ConfigurationError):
            compiler.compile_machine([0, 1])
