"""Unit tests for :class:`DelegationRoundProtocol` and its service plumbing.

The delegated-verification backend must serve rounds exactly like any other
:class:`~repro.rounds.RoundProtocol`: honest committees deliver the
reference outputs, a convicted worker voids the round (no output, no state
advance), and through :class:`~repro.service.service.CSMService` a voided
round resolves its tickets ``FAILED`` with
:attr:`~repro.service.tickets.FailureReason.DELEGATION_FRAUD`.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gf.prime_field import PrimeField
from repro.intermix import DelegationRoundProtocol
from repro.intermix.worker import WorkerStrategy
from repro.machine.library import bank_account_machine
from repro.rng import default_stream
from repro.service.service import CSMService
from repro.service.tickets import FailureReason, TicketState

NUM_NODES = 16
NUM_MACHINES = 4


@pytest.fixture
def machine():
    return bank_account_machine(PrimeField(), num_accounts=2)


def _node_ids(count=NUM_NODES):
    return [f"node-{i}" for i in range(count)]


def _protocol(machine, seed=3, **kwargs):
    return DelegationRoundProtocol(
        machine,
        NUM_MACHINES,
        _node_ids(),
        rng=default_stream(seed),
        **kwargs,
    )


def _commands(machine, rounds, seed=11):
    stream = default_stream(seed)
    return [
        stream.integers(1, 1000, size=(NUM_MACHINES, machine.command_dim))
        for _ in range(rounds)
    ]


def _reference_trace(machine, commands):
    states = np.tile(machine.initial_state, (NUM_MACHINES, 1))
    trace = []
    for batch in commands:
        states, outputs = machine.step_batch(states, np.asarray(batch))
        trace.append((states.copy(), outputs))
    return trace


class TestHonestRounds:
    def test_outputs_match_reference_machine(self, machine):
        commands = _commands(machine, 3)
        protocol = _protocol(machine)
        records = protocol.run_rounds_batched(commands)
        assert len(records) == 3
        for record, (ref_states, ref_outputs) in zip(
            records, _reference_trace(machine, commands)
        ):
            assert record.result.correct
            assert not record.result.diagnostics["confirmed_fraud"]
            assert record.result.diagnostics["scheme"] == "delegated"
            assert np.array_equal(record.result.outputs, ref_outputs)
            assert np.array_equal(record.result.states, ref_states)
        assert protocol.all_rounds_correct
        assert protocol.measured_throughput() > 0

    def test_ops_cover_exactly_the_node_set(self, machine):
        protocol = _protocol(machine)
        (record,) = protocol.run_rounds_batched(_commands(machine, 1))
        assert set(record.result.ops_per_node) == set(_node_ids())
        worker = record.result.diagnostics["worker"]
        assert record.result.ops_per_node[worker] > 0
        # Non-workers only verify: strictly cheaper than the worker.
        non_worker_max = max(
            count
            for node, count in record.result.ops_per_node.items()
            if node != worker
        )
        assert non_worker_max < record.result.ops_per_node[worker]
        assert (
            record.result.diagnostics["max_non_worker_operations"]
            == non_worker_max
        )

    def test_outputs_delivered_to_clients(self, machine):
        protocol = _protocol(machine)
        protocol.run_rounds_batched(
            _commands(machine, 1), client_rounds=[["a", "b", "c", "d"]]
        )
        assert set(protocol.delivered_outputs) == {"a", "b", "c", "d"}
        assert protocol.failed_deliveries == {}

    def test_batched_and_scalar_histories_bit_identical(self, machine):
        commands = _commands(machine, 3)
        histories = {}
        for batched in (True, False):
            protocol = _protocol(machine, batched=batched)
            protocol.run_rounds_batched(commands)
            histories[batched] = protocol
        for a, b in zip(histories[True].history, histories[False].history):
            assert np.array_equal(a.result.outputs, b.result.outputs)
            assert np.array_equal(a.result.states, b.result.states)
            assert a.result.correct == b.result.correct
            assert a.result.ops_per_node == b.result.ops_per_node
        assert (
            histories[True].rng.bit_generator.state
            == histories[False].rng.bit_generator.state
        )

    def test_dishonest_auditor_alone_cannot_void_a_round(self, machine):
        protocol = _protocol(machine, dishonest_auditors=set(_node_ids()))
        (record,) = protocol.run_rounds_batched(_commands(machine, 1))
        assert record.result.correct
        assert not record.result.diagnostics["confirmed_fraud"]


class TestFraudulentRounds:
    @pytest.mark.parametrize(
        "adversary",
        [
            {"worker_strategies": {
                n: WorkerStrategy.CORRUPT_RESULT for n in _node_ids()
            }},
            {"worker_strategies": {
                n: WorkerStrategy.SILENT for n in _node_ids()
            }},
            {"corrupt_decoder_workers": set(_node_ids())},
        ],
        ids=["corrupt-worker", "silent-worker", "corrupt-decoder"],
    )
    def test_fraud_voids_round_and_freezes_state(self, machine, adversary):
        commands = _commands(machine, 2)
        protocol = _protocol(machine, **adversary)
        genesis = protocol._coded_states.copy()
        records = protocol.run_rounds_batched(commands)
        for record in records:
            assert not record.result.correct
            assert record.result.diagnostics["confirmed_fraud"]
            assert not record.result.outputs.any()
            assert not record.result.states.any()
        assert protocol.failed_rounds == 2
        assert protocol.delivered_outputs == {}
        # The coded states never advanced: resubmission is safe.
        assert np.array_equal(protocol._coded_states, genesis)

    def test_fraud_diagnostics_count_rejected_operations(self, machine):
        protocol = _protocol(
            machine,
            worker_strategies={
                n: WorkerStrategy.CORRUPT_RESULT for n in _node_ids()
            },
        )
        (record,) = protocol.run_rounds_batched(_commands(machine, 1))
        assert record.result.diagnostics["rejected_operations"] >= 1


class TestValidation:
    def test_rejects_zero_machines(self, machine):
        with pytest.raises(ConfigurationError):
            DelegationRoundProtocol(machine, 0, _node_ids())

    def test_rejects_misshapen_round(self, machine):
        protocol = _protocol(machine)
        with pytest.raises(ConfigurationError):
            protocol.run_rounds_batched([np.ones((NUM_MACHINES + 1, 2))])

    def test_rejects_client_rounds_length_mismatch(self, machine):
        protocol = _protocol(machine)
        with pytest.raises(ConfigurationError):
            protocol.run_rounds_batched(
                _commands(machine, 2), client_rounds=[["a"] * NUM_MACHINES]
            )


class TestServiceIntegration:
    def _drive(self, machine, rounds=2, **kwargs):
        protocol = _protocol(machine, **kwargs)
        service = CSMService(protocol)
        session = service.connect("alice")
        tickets = []
        for r in range(rounds):
            for k in range(NUM_MACHINES):
                tickets.append(session.submit(k, [10 * r + k + 1, 1]))
            service.drive(flush=True)
        service.drain()
        return protocol, tickets

    def test_honest_rounds_execute_tickets_with_reference_outputs(self, machine):
        protocol, tickets = self._drive(machine)
        assert all(t.state is TicketState.EXECUTED for t in tickets)
        assert all(t.failure_reason is None for t in tickets)
        for ticket in tickets:
            record = protocol.history[ticket.round_index]
            assert np.array_equal(
                ticket.result(), record.result.outputs[ticket.machine_index]
            )

    def test_confirmed_fraud_fails_tickets_with_delegation_reason(self, machine):
        protocol, tickets = self._drive(
            machine,
            worker_strategies={
                n: WorkerStrategy.CORRUPT_RESULT for n in _node_ids()
            },
        )
        assert protocol.failed_rounds == len(protocol.history) > 0
        for ticket in tickets:
            assert ticket.state is TicketState.FAILED
            assert ticket.failure_reason is FailureReason.DELEGATION_FRAUD
            assert "fraud" in ticket.error
            assert ticket.output is None
            with pytest.raises(Exception):
                ticket.result()
        # Nothing was ever delivered from a voided round.
        assert protocol.delivered_outputs == {}
        assert set(protocol.failed_deliveries) == {"alice"}

    def test_fraud_round_retries_onto_a_fresh_worker(self, machine):
        from repro.service import RetryPolicy

        # Learn which worker the seed elects first, then make only that
        # node a cheater: its one fraudulent round must not be terminal.
        probe = _protocol(machine)
        probe.run_rounds_batched(_commands(machine, 1))
        cheater = probe.history[0].result.diagnostics["worker"]

        protocol = _protocol(
            machine,
            worker_strategies={cheater: WorkerStrategy.CORRUPT_RESULT},
        )
        service = CSMService(
            protocol, retry=RetryPolicy(max_attempts=3, backoff_ticks=1)
        )
        session = service.connect("alice")
        tickets = [session.submit(k, [20 + k, 1]) for k in range(NUM_MACHINES)]
        service.drain()
        # The cheater's round was convicted, the batch was auto-resubmitted,
        # and the re-election banned the convicted worker.
        assert protocol.failed_rounds == 1
        assert cheater in protocol.convicted_workers
        workers = [r.result.diagnostics["worker"] for r in protocol.history]
        assert workers[0] == cheater
        assert all(w != cheater for w in workers[1:])
        for ticket in tickets:
            assert ticket.state is TicketState.EXECUTED
            assert ticket.attempts == 2
            assert TicketState.RETRYING in ticket.state_history
        report = service.qos_report()
        assert report["retried_commands"] == NUM_MACHINES
        assert report["recovered_tickets"] == NUM_MACHINES
        assert report["exhausted_tickets"] == 0
