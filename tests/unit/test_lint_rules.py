"""Fixture-snippet tests for the csm-lint rules, suppression, and baseline.

Each rule gets at least one true-positive, one negative, and one
suppression-comment case; the baseline tests cover the round-trip
(write -> load -> filter) and the "new finding with identical text still
trips" counting semantics.
"""

import json
import textwrap

import pytest

from repro.lint.baseline import (
    fingerprint,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Finding, LintEngine, suppressed_rules
from repro.lint.rules import RULE_REGISTRY


def run_lint(source, path="src/repro/sample.py", config=None, rules=None):
    engine = LintEngine(config=config or LintConfig(), rule_ids=rules)
    return engine.check_source(textwrap.dedent(source), path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert {
            "DET001",
            "DET002",
            "DET003",
            "CNT001",
            "RNG001",
            "EXC001",
        } <= set(RULE_REGISTRY)

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(rule_ids=["NOPE99"])


class TestDET001RngConstruction:
    def test_flags_default_rng_fallback_idiom(self):
        findings = run_lint(
            """
            import numpy as np

            class Network:
                def __init__(self, rng=None):
                    self.rng = rng or np.random.default_rng(0)
            """,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]
        assert "default_rng" in findings[0].message

    def test_flags_from_import_and_random_random(self):
        findings = run_lint(
            """
            from numpy.random import default_rng
            import random

            a = default_rng(7)
            b = random.Random(3)
            """,
            rules=["DET001"],
        )
        assert rule_ids(findings) == ["DET001", "DET001"]

    def test_allowlisted_module_is_exempt(self):
        findings = run_lint(
            """
            import numpy as np

            def default_stream(seed=0):
                return np.random.default_rng(seed)
            """,
            path="src/repro/rng.py",
            rules=["DET001"],
        )
        assert findings == []

    def test_accepting_a_generator_is_clean(self):
        findings = run_lint(
            """
            from repro.rng import default_stream

            class Network:
                def __init__(self, rng=None):
                    self.rng = rng if rng is not None else default_stream()
            """,
            rules=["DET001"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            import numpy as np

            rng = np.random.default_rng(0)  # csm-lint: disable=DET001
            """,
            rules=["DET001"],
        )
        assert findings == []


class TestDET002WallClock:
    def test_flags_perf_counter_and_time(self):
        findings = run_lint(
            """
            import time

            start = time.perf_counter()
            stamp = time.time()
            """,
            rules=["DET002"],
        )
        assert rule_ids(findings) == ["DET002", "DET002"]

    def test_flags_argless_datetime_now(self):
        findings = run_lint(
            """
            from datetime import datetime

            when = datetime.now()
            """,
            rules=["DET002"],
        )
        assert rule_ids(findings) == ["DET002"]

    def test_measurement_and_benchmarks_are_exempt(self):
        source = """
        import time

        def wall_clock():
            return time.perf_counter()
        """
        assert (
            run_lint(source, path="src/repro/analysis/measurement.py", rules=["DET002"])
            == []
        )
        assert (
            run_lint(source, path="benchmarks/bench_thing.py", rules=["DET002"]) == []
        )

    def test_simulated_clock_is_clean(self):
        findings = run_lint(
            """
            def deliver(self, message):
                return self.network.now + self.delay
            """,
            rules=["DET002"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            import time

            start = time.perf_counter()  # csm-lint: disable=DET002
            """,
            rules=["DET002"],
        )
        assert findings == []


class TestDET003UnorderedIteration:
    def test_flags_for_loop_over_set_call(self):
        findings = run_lint(
            """
            def collect(refs):
                out = {}
                for ref in set(refs.values()):
                    out[ref] = ref * 2
                return out
            """,
            rules=["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]

    def test_flags_comprehension_over_set_literal(self):
        findings = run_lint(
            """
            ordered = [x for x in {3, 1, 2}]
            """,
            rules=["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]

    def test_flags_keys_feeding_accumulation(self):
        findings = run_lint(
            """
            def names(table):
                out = []
                for key in table.keys():
                    out.append(key)
                return out
            """,
            rules=["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]

    def test_sorted_wrapping_is_clean(self):
        findings = run_lint(
            """
            def collect(refs):
                out = []
                for ref in sorted(set(refs.values())):
                    out.append(ref)
                return out
            """,
            rules=["DET003"],
        )
        assert findings == []

    def test_keys_without_accumulation_is_clean(self):
        findings = run_lint(
            """
            def touch(table):
                for key in table.keys():
                    table[key] = 0
            """,
            rules=["DET003"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            def collect(refs):
                out = []
                for ref in set(refs):  # csm-lint: disable=DET003
                    out.append(ref)
                return out
            """,
            rules=["DET003"],
        )
        assert findings == []


GF_PATH = "src/repro/gf/sample_field.py"


class TestCNT001UnchargedFieldOp:
    def test_flags_uncharged_arithmetic(self):
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):
                    return (a * b) % self.modulus
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert rule_ids(findings) == ["CNT001"]
        assert "SampleField.mul" in findings[0].message

    def test_charging_via_count_hook_is_clean(self):
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):
                    self._count_mul(1)
                    return (a * b) % self.modulus
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert findings == []

    def test_delegation_to_charging_method_is_clean(self):
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):
                    self._count_mul(1)
                    return (a * b) % self.modulus

                def div(self, a, b):
                    return self.mul(a, self.inv(b))
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert findings == []

    def test_numpy_receiver_is_not_delegation(self):
        findings = run_lint(
            """
            import numpy as np

            class SampleField:
                def add(self, a, b):
                    return np.add(a, b) % self.modulus
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert rule_ids(findings) == ["CNT001"]

    def test_within_class_helper_fixpoint(self):
        findings = run_lint(
            """
            class SamplePoly:
                def evaluate_batch(self, points):
                    return self._evaluate_canonical(points)

                def _evaluate_canonical(self, points):
                    self.field._count_mul(len(points))
                    return points
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert findings == []

    def test_abstract_method_is_skipped(self):
        findings = run_lint(
            """
            from abc import abstractmethod

            class SampleField:
                @abstractmethod
                def mul(self, a, b):
                    \"\"\"Element-wise multiplication.\"\"\"
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert findings == []

    def test_parity_allowlist(self):
        config = LintConfig(count_parity_allowlist=("SampleField.mul",))
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):
                    return (a * b) % self.modulus
            """,
            path=GF_PATH,
            config=config,
            rules=["CNT001"],
        )
        assert findings == []

    def test_outside_gf_is_out_of_scope(self):
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):
                    return a * b
            """,
            path="src/repro/service/sample.py",
            rules=["CNT001"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            class SampleField:
                def mul(self, a, b):  # csm-lint: disable=CNT001
                    return (a * b) % self.modulus
            """,
            path=GF_PATH,
            rules=["CNT001"],
        )
        assert findings == []


class TestRNG001ShadowedRngParam:
    def test_flags_function_with_rng_param_constructing(self):
        findings = run_lint(
            """
            import numpy as np

            def run(seed, rng=None):
                rng = rng or np.random.default_rng(0)
                return rng.integers(0, 10)
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001"]
        assert "`run`" in findings[0].message

    def test_flags_suffixed_rng_param(self):
        findings = run_lint(
            """
            import numpy as np

            def run(command_rng):
                other = np.random.default_rng(1)
                return command_rng, other
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001"]

    def test_sanctioned_helper_is_clean(self):
        findings = run_lint(
            """
            from repro.rng import default_stream

            def run(seed, rng=None):
                rng = rng if rng is not None else default_stream(seed)
                return rng.integers(0, 10)
            """,
            rules=["RNG001"],
        )
        assert findings == []

    def test_function_without_rng_param_out_of_scope(self):
        findings = run_lint(
            """
            import numpy as np

            def seed_everything(seed):
                return np.random.default_rng(seed)
            """,
            rules=["RNG001"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            import numpy as np

            def run(rng=None):
                return rng or np.random.default_rng(0)  # csm-lint: disable=RNG001
            """,
            rules=["RNG001"],
        )
        assert findings == []


class TestEXC001SwallowedException:
    def test_flags_bare_except(self):
        findings = run_lint(
            """
            def risky():
                try:
                    return 1
                except:
                    return None
            """,
            rules=["EXC001"],
        )
        assert rule_ids(findings) == ["EXC001"]
        assert "bare" in findings[0].message

    def test_flags_swallowed_consensus_error(self):
        findings = run_lint(
            """
            from repro.exceptions import ConsensusError

            def decide():
                try:
                    vote()
                except ConsensusError:
                    pass
            """,
            rules=["EXC001"],
        )
        assert rule_ids(findings) == ["EXC001"]
        assert "ConsensusError" in findings[0].message

    def test_flags_swallowed_security_violation_in_tuple(self):
        findings = run_lint(
            """
            def verify():
                try:
                    check()
                except (ValueError, SecurityViolation):
                    ...
            """,
            rules=["EXC001"],
        )
        assert rule_ids(findings) == ["EXC001"]

    def test_flags_pass_only_broad_except(self):
        findings = run_lint(
            """
            def risky():
                try:
                    return 1
                except Exception:
                    pass
            """,
            rules=["EXC001"],
        )
        assert rule_ids(findings) == ["EXC001"]

    def test_handled_protocol_exception_is_clean(self):
        findings = run_lint(
            """
            def verify():
                try:
                    ok = check()
                except SecurityViolation:
                    ok = False
                return ok
            """,
            rules=["EXC001"],
        )
        assert findings == []

    def test_narrow_pass_is_clean(self):
        findings = run_lint(
            """
            def probe():
                try:
                    return int("x")
                except ValueError:
                    pass
            """,
            rules=["EXC001"],
        )
        assert findings == []

    def test_suppression_comment(self):
        findings = run_lint(
            """
            def decide():
                try:
                    vote()
                except ConsensusError:  # csm-lint: disable=EXC001
                    pass
            """,
            rules=["EXC001"],
        )
        assert findings == []


class TestSuppressionParsing:
    def test_multiple_rules_and_all(self):
        assert suppressed_rules("x = 1  # csm-lint: disable=DET001,RNG001") == {
            "DET001",
            "RNG001",
        }
        assert suppressed_rules("x = 1  # csm-lint: disable=all") == {"ALL"}
        assert suppressed_rules("x = 1  # a normal comment") == set()

    def test_disable_all_suppresses_every_rule(self):
        findings = run_lint(
            """
            import numpy as np

            def run(rng=None):
                return rng or np.random.default_rng(0)  # csm-lint: disable=all
            """,
        )
        assert findings == []


class TestEngineAndOutput:
    def test_syntax_error_reported_as_parse_finding(self):
        findings = run_lint("def broken(:\n")
        assert rule_ids(findings) == ["PARSE"]

    def test_findings_sorted_and_carry_line_text(self):
        findings = run_lint(
            """
            import numpy as np
            import time

            t = time.time()
            r = np.random.default_rng(0)
            """,
        )
        assert rule_ids(findings) == ["DET002", "DET001"]
        assert findings[0].line < findings[1].line
        assert findings[1].line_text == "r = np.random.default_rng(0)"

    def test_finding_dict_shape(self):
        finding = run_lint("import time\nt = time.time()\n")[0]
        data = finding.as_dict()
        assert set(data) == {"rule", "path", "line", "col", "message", "line_text"}
        assert json.dumps(data)  # JSON-serialisable


class TestBaseline:
    def _findings(self, n=2):
        source = "import time\n" + "t = time.time()\n" * n
        return run_lint(source, path="src/repro/clocky.py", rules=["DET002"])

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        loaded = load_baseline(baseline_file)
        assert sum(loaded.values()) == len(findings)
        assert new_findings(findings, loaded) == []

    def test_identical_text_beyond_count_trips(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, self._findings(n=2))
        loaded = load_baseline(baseline_file)
        fresh = new_findings(self._findings(n=3), loaded)
        assert len(fresh) == 1
        assert fresh[0].rule_id == "DET002"

    def test_line_number_churn_does_not_trip(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, self._findings(n=1))
        loaded = load_baseline(baseline_file)
        moved = run_lint(
            "import time\n\n\n# padding\nt = time.time()\n",
            path="src/repro/clocky.py",
            rules=["DET002"],
        )
        assert new_findings(moved, loaded) == []

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_fingerprint_includes_path_rule_and_text(self):
        finding = Finding("DET002", "a.py", 3, 0, "msg", "t = time.time()")
        assert fingerprint(finding) == "a.py::DET002::t = time.time()"


class TestConfig:
    def test_load_config_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.csm-lint]\nrng-allowed-paths = ["repro/custom.py"]\n'
            'disable = ["DET003"]\n'
        )
        config = load_config(pyproject)
        assert config.rng_allowed_paths == ("repro/custom.py",)
        assert config.disable == ("DET003",)
        engine = LintEngine(config=config)
        assert "DET003" not in {rule.rule_id for rule in engine.rules}

    def test_missing_pyproject_gives_defaults(self, tmp_path):
        config = load_config(tmp_path / "nope.toml")
        assert config.rng_allowed_paths == ("repro/rng.py",)
        assert "repro/analysis/measurement.py" in config.clock_allowed_paths
        assert config.default_paths == ("src",)

    def test_default_paths_from_pyproject(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.csm-lint]\ndefault-paths = ["src", "examples"]\n'
        )
        config = load_config(pyproject)
        assert config.default_paths == ("src", "examples")

    def test_path_matching_directory_pattern(self):
        config = LintConfig()
        assert config.path_matches("src/repro/gf/field.py", ("repro/gf/",))
        assert not config.path_matches("src/repro/net/network.py", ("repro/gf/",))
        assert config.path_matches("benchmarks/bench_x.py", ("benchmarks/",))


class TestRepositoryIsClean:
    def test_default_paths_have_zero_non_baselined_findings(self):
        """The acceptance criterion: `python -m repro.lint` runs clean over
        the configured default paths (src AND examples)."""
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        config = load_config(repo_root / "pyproject.toml")
        assert "examples" in config.default_paths
        engine = LintEngine(config=config)
        findings = engine.check_paths(
            [repo_root / path for path in config.default_paths]
        )
        baseline = load_baseline(repo_root / "lint-baseline.json")
        fresh = new_findings(findings, baseline)
        assert fresh == [], "\n".join(f.format_text() for f in fresh)
