"""Unit tests for Lagrange interpolation, finite-field linear algebra,
Vandermonde helpers and subproduct-tree fast evaluation."""

import numpy as np
import pytest

from repro.exceptions import FieldError
from repro.gf.fast_eval import SubproductTree, multi_point_evaluate
from repro.gf.lagrange import (
    barycentric_evaluate,
    barycentric_weights,
    lagrange_basis_row,
    lagrange_coefficient_matrix,
    lagrange_interpolate,
)
from repro.gf.linalg import (
    gf_inverse_matrix,
    gf_matmul,
    gf_matvec,
    gf_nullspace_vector,
    gf_rank,
    gf_solve,
)
from repro.gf.polynomial import Poly
from repro.gf.vandermonde import (
    vandermonde_apply,
    vandermonde_matrix,
    vandermonde_residual,
    vandermonde_solve,
)


class TestLagrange:
    def test_interpolation_recovers_polynomial(self, small_field, rng):
        poly = Poly.random(small_field, 5, rng)
        xs = small_field.distinct_points(6)
        ys = [poly.evaluate(x) for x in xs]
        assert lagrange_interpolate(small_field, xs, ys) == poly

    def test_interpolation_through_given_points(self, small_field):
        xs, ys = [1, 2, 3], [10, 20, 40]
        poly = lagrange_interpolate(small_field, xs, ys)
        assert [poly.evaluate(x) for x in xs] == ys

    def test_duplicate_points_rejected(self, small_field):
        with pytest.raises(FieldError):
            lagrange_interpolate(small_field, [1, 1], [2, 3])

    def test_basis_row_is_partition_of_unity_at_omega(self, small_field):
        omegas = [1, 2, 3, 4]
        row = lagrange_basis_row(small_field, omegas, 2)
        # Evaluating at an interpolation point gives the indicator row.
        assert list(row) == [0, 1, 0, 0]

    def test_coefficient_matrix_encodes_interpolant(self, small_field, rng):
        omegas = [1, 2, 3]
        alphas = [10, 11, 12, 13, 14]
        matrix = lagrange_coefficient_matrix(small_field, omegas, alphas)
        values = [5, 9, 21]
        poly = lagrange_interpolate(small_field, omegas, values)
        encoded = gf_matvec(small_field, matrix, np.array(values))
        assert list(encoded) == [poly.evaluate(a) for a in alphas]

    def test_barycentric_matches_lagrange(self, small_field, rng):
        xs = small_field.distinct_points(5)
        ys = [int(v) for v in rng.integers(0, 97, size=5)]
        weights = barycentric_weights(small_field, xs)
        poly = lagrange_interpolate(small_field, xs, ys)
        for point in range(20, 30):
            assert barycentric_evaluate(small_field, xs, ys, weights, point) == poly.evaluate(point)

    def test_barycentric_at_interpolation_point_returns_value(self, small_field):
        xs, ys = [1, 2, 3], [7, 8, 9]
        weights = barycentric_weights(small_field, xs)
        assert barycentric_evaluate(small_field, xs, ys, weights, 2) == 8


class TestLinalg:
    def test_matvec_matches_numpy_mod_p(self, small_field, rng):
        matrix = rng.integers(0, 97, size=(4, 6))
        vector = rng.integers(0, 97, size=6)
        expected = (matrix @ vector) % 97
        assert list(gf_matvec(small_field, matrix, vector)) == list(expected)

    def test_matmul_matches_numpy_mod_p(self, small_field, rng):
        a = rng.integers(0, 97, size=(3, 4))
        b = rng.integers(0, 97, size=(4, 5))
        expected = (a @ b) % 97
        assert gf_matmul(small_field, a, b).tolist() == expected.tolist()

    def test_solve_unique_system(self, small_field, rng):
        matrix = rng.integers(0, 97, size=(5, 5))
        while gf_rank(small_field, matrix) < 5:
            matrix = rng.integers(0, 97, size=(5, 5))
        x = rng.integers(0, 97, size=5)
        rhs = gf_matvec(small_field, matrix, x)
        solution = gf_solve(small_field, matrix, rhs)
        assert list(solution) == list(small_field.array(x))

    def test_solve_inconsistent_raises(self, small_field):
        matrix = np.array([[1, 0], [1, 0]])
        with pytest.raises(FieldError):
            gf_solve(small_field, matrix, np.array([1, 2]))

    def test_solve_underdetermined(self, small_field):
        matrix = np.array([[1, 1]])
        with pytest.raises(FieldError):
            gf_solve(small_field, matrix, np.array([5]))
        solution = gf_solve(small_field, matrix, np.array([5]), allow_underdetermined=True)
        assert (int(solution[0]) + int(solution[1])) % 97 == 5

    def test_rank(self, small_field):
        assert gf_rank(small_field, np.array([[1, 2], [2, 4]])) == 1
        assert gf_rank(small_field, np.eye(3, dtype=int)) == 3

    def test_inverse_matrix(self, small_field, rng):
        matrix = rng.integers(0, 97, size=(4, 4))
        while gf_rank(small_field, matrix) < 4:
            matrix = rng.integers(0, 97, size=(4, 4))
        inverse = gf_inverse_matrix(small_field, matrix)
        assert gf_matmul(small_field, matrix, inverse).tolist() == np.eye(4, dtype=int).tolist()

    def test_inverse_of_singular_raises(self, small_field):
        with pytest.raises(FieldError):
            gf_inverse_matrix(small_field, np.array([[1, 2], [2, 4]]))

    def test_nullspace_vector(self, small_field):
        matrix = np.array([[1, 2], [2, 4]])
        vector = gf_nullspace_vector(small_field, matrix)
        assert vector is not None
        assert list(gf_matvec(small_field, matrix, vector)) == [0, 0]
        assert gf_nullspace_vector(small_field, np.eye(2, dtype=int)) is None


class TestVandermonde:
    def test_matrix_entries(self, small_field):
        matrix = vandermonde_matrix(small_field, [2, 3], 3)
        assert matrix.tolist() == [[1, 2, 4], [1, 3, 9]]

    def test_apply_equals_matvec(self, small_field, rng):
        points = small_field.distinct_points(6)
        coeffs = rng.integers(0, 97, size=4)
        via_matrix = gf_matvec(
            small_field, vandermonde_matrix(small_field, points, 4), coeffs
        )
        via_horner = vandermonde_apply(small_field, points, coeffs)
        assert list(via_matrix) == list(via_horner)

    def test_solve_recovers_coefficients(self, small_field, rng):
        points = small_field.distinct_points(5)
        coeffs = rng.integers(0, 97, size=5)
        values = vandermonde_apply(small_field, points, coeffs)
        recovered = vandermonde_solve(small_field, points, values)
        assert list(recovered) == list(small_field.array(coeffs))

    def test_solve_duplicate_points_rejected(self, small_field):
        with pytest.raises(FieldError):
            vandermonde_solve(small_field, [1, 1], np.array([2, 3]))

    def test_residual_zero_iff_consistent(self, small_field, rng):
        points = small_field.distinct_points(4)
        coeffs = rng.integers(0, 97, size=4)
        values = vandermonde_apply(small_field, points, coeffs)
        residual = vandermonde_residual(small_field, points, coeffs, values)
        assert not residual.any()
        corrupted = values.copy()
        corrupted[2] = (corrupted[2] + 1) % 97
        residual = vandermonde_residual(small_field, points, coeffs, corrupted)
        assert residual[2] != 0 and residual[0] == 0


class TestSubproductTree:
    def test_root_vanishes_on_all_points(self, small_field):
        points = small_field.distinct_points(9)
        tree = SubproductTree(small_field, points)
        assert all(tree.root.evaluate(p) == 0 for p in points)

    def test_fast_evaluation_matches_horner(self, small_field, rng):
        poly = Poly.random(small_field, 12, rng)
        points = small_field.distinct_points(17)
        tree = SubproductTree(small_field, points)
        assert list(tree.evaluate(poly)) == [poly.evaluate(p) for p in points]

    def test_fast_interpolation_matches_lagrange(self, small_field, rng):
        points = small_field.distinct_points(11)
        values = [int(v) for v in rng.integers(0, 97, size=11)]
        tree = SubproductTree(small_field, points)
        assert tree.interpolate(values) == lagrange_interpolate(small_field, points, values)

    def test_non_power_of_two_sizes(self, small_field, rng):
        for size in (1, 2, 3, 5, 7, 13):
            points = small_field.distinct_points(size)
            values = [int(v) for v in rng.integers(0, 97, size=size)]
            tree = SubproductTree(small_field, points)
            poly = tree.interpolate(values)
            assert [poly.evaluate(p) for p in points] == values

    def test_duplicate_points_rejected(self, small_field):
        with pytest.raises(FieldError):
            SubproductTree(small_field, [1, 1, 2])

    def test_multi_point_evaluate_helper(self, small_field, rng):
        poly = Poly.random(small_field, 8, rng)
        points = small_field.distinct_points(20)
        assert list(multi_point_evaluate(small_field, poly, points)) == [
            poly.evaluate(p) for p in points
        ]
