"""Shared fixtures for the CSM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf.prime_field import PrimeField
from repro.gf.extension_field import BinaryExtensionField


@pytest.fixture
def small_field() -> PrimeField:
    """A small prime field (GF(97)) convenient for exhaustive checks."""
    return PrimeField(97)


@pytest.fixture
def big_field() -> PrimeField:
    """The default production field GF(2**31 - 1)."""
    return PrimeField()


@pytest.fixture
def gf256() -> BinaryExtensionField:
    """GF(2**8), the extension field used by most Appendix A tests."""
    return BinaryExtensionField(8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
