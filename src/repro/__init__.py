"""Coded State Machine (CSM) reproduction library.

This package reproduces *Coded State Machine — Scaling State Machine Execution
under Byzantine Faults* (Li et al., PODC 2019).  It provides:

``repro.gf``
    Finite-field substrate: prime fields, binary extension fields, univariate
    and multivariate polynomial arithmetic, Lagrange interpolation.
``repro.coding``
    Reed–Solomon codes in the evaluation view, with Berlekamp–Welch and Gao
    decoders for noisy polynomial interpolation.
``repro.lcc``
    Lagrange coded computing: the encoder/decoder pair CSM uses for coded
    states and coded commands.
``repro.machine``
    Polynomial state machines (the class of state-transition functions CSM
    supports) and a library of concrete machines, including the Boolean
    function compiler of Appendix A.
``repro.net``
    Discrete-event simulated network with synchronous and partially
    synchronous delay models, authenticated messages, and Byzantine
    behaviour injection.
``repro.consensus``
    Consensus-phase protocols (synchronous authenticated broadcast and a
    simplified PBFT) used identically by CSM and the replication baselines.
``repro.replication``
    Full- and partial-replication state machine replication baselines.
``repro.core``
    The Coded State Machine itself: coded state storage, coded execution,
    and the round protocol for synchronous and partially synchronous
    networks.
``repro.service``
    The client-facing serving layer: client sessions, command tickets with a
    ``PENDING -> COMMITTED -> EXECUTED | FAILED`` lifecycle, and the adaptive
    round scheduler that drains ragged command streams into batched rounds
    over any round-driving backend.
``repro.intermix``
    INTERMIX, the information-theoretically verifiable matrix-vector
    multiplication protocol, and the delegated (centralised) coding path it
    enables.
``repro.analysis``
    Closed-form performance formulas (Table 1, Table 2), information
    theoretic limits, and operation-count based measurement.
``repro.experiments``
    Executable regeneration of every table and figure in the paper.
``repro.rng``
    The single sanctioned construction site for random streams
    (``default_stream``/``derived_stream``) — the anchor of replay
    determinism.
``repro.lint``
    csm-lint, the AST-based determinism and protocol-invariant analyzer
    (``python -m repro.lint src``).
"""

from repro._version import __version__
from repro.exceptions import (
    CSMError,
    ConfigurationError,
    ConsensusError,
    DecodingError,
    FieldError,
    LivenessError,
    SecurityViolation,
    ServiceError,
    VerificationError,
)

__all__ = [
    "__version__",
    "CSMError",
    "ConfigurationError",
    "ConsensusError",
    "DecodingError",
    "FieldError",
    "LivenessError",
    "SecurityViolation",
    "ServiceError",
    "VerificationError",
]
