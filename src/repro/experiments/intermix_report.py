"""Experiment: INTERMIX behaviour (Figure 5 / Algorithm 1 / Section 6.1).

Three measurements:

* **soundness sweep** — over many random matrices and cheating-worker
  strategies, the fraction of runs in which the fraud was caught (should be
  1.0 whenever at least one auditor is honest) and the number of interaction
  rounds used (should be at most ``log2 K``).
* **overhead accounting** — measured worker / auditor / commoner operation
  counts against the worst-case formula
  ``(J + 1) c(AX) + 8JK + 3J log K + N - J - 1``.
* **committee sizing** — ``J = ceil(log eps / log mu)`` and the resulting
  soundness failure probability ``mu**J`` for a sweep of ``eps``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.complexity import intermix_worst_case_overhead
from repro.experiments.report import format_table
from repro.gf.prime_field import PrimeField
from repro.intermix.committee import CommitteeElection, required_committee_size
from repro.intermix.protocol import IntermixProtocol
from repro.intermix.worker import WorkerStrategy
from repro.rng import default_stream


def soundness_rows(
    vector_lengths: tuple[int, ...] = (8, 32, 128),
    num_nodes: int = 16,
    trials: int = 5,
    seed: int = 0,
) -> list[dict]:
    field = PrimeField()
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    rows = []
    for length in vector_lengths:
        for strategy in (
            WorkerStrategy.HONEST,
            WorkerStrategy.CORRUPT_RESULT,
            WorkerStrategy.CONSISTENT_LIAR,
        ):
            rng = default_stream(seed)
            caught = 0
            accepted = 0
            max_queries = 0
            for _ in range(trials):
                protocol = IntermixProtocol(
                    field,
                    node_ids,
                    fault_fraction=0.25,
                    rng=rng,
                    worker_strategies={n: strategy for n in node_ids},
                )
                matrix = rng.integers(0, field.order, size=(num_nodes, length))
                vector = rng.integers(0, field.order, size=length)
                outcome = protocol.run(matrix, vector)
                if outcome.accepted:
                    accepted += 1
                if outcome.fraud_detected:
                    caught += 1
                for transcript in outcome.transcripts:
                    max_queries = max(max_queries, transcript.queries_issued)
            rows.append(
                {
                    "K": length,
                    "worker": strategy.value,
                    "accepted_fraction": accepted / trials,
                    "fraud_caught_fraction": caught / trials,
                    "max_queries": max_queries,
                    "2*log2K": 2 * math.ceil(math.log2(length)),
                }
            )
    return rows


def overhead_rows(
    vector_lengths: tuple[int, ...] = (16, 64, 256),
    num_nodes: int = 16,
    seed: int = 0,
) -> list[dict]:
    field = PrimeField()
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    rng = default_stream(seed)
    rows = []
    for length in vector_lengths:
        protocol = IntermixProtocol(field, node_ids, fault_fraction=0.25, rng=rng)
        matrix = rng.integers(0, field.order, size=(num_nodes, length))
        vector = rng.integers(0, field.order, size=length)
        outcome = protocol.run(matrix, vector)
        j = len(outcome.committee.auditors)
        product_cost = 2 * num_nodes * length
        rows.append(
            {
                "K": length,
                "J": j,
                "worker_ops": outcome.worker_operations,
                "auditor_ops_total": sum(outcome.auditor_operations.values()),
                "commoner_ops_total": sum(outcome.commoner_operations.values()),
                "worst_case_formula": intermix_worst_case_overhead(
                    num_nodes, length, j, product_cost
                ),
            }
        )
    return rows


def committee_rows(
    fault_fraction: float = 0.25,
    failure_probabilities: tuple[float, ...] = (1e-3, 1e-6, 1e-9),
) -> list[dict]:
    rows = []
    for eps in failure_probabilities:
        j = required_committee_size(fault_fraction, eps)
        rows.append(
            {
                "mu": fault_fraction,
                "eps_target": eps,
                "J": j,
                "actual_failure_probability": fault_fraction**j,
            }
        )
    return rows


def run(**kwargs) -> dict:
    return {
        "soundness": soundness_rows(**{k: v for k, v in kwargs.items() if k in (
            "vector_lengths", "num_nodes", "trials", "seed")}),
        "overhead": overhead_rows(**{k: v for k, v in kwargs.items() if k in (
            "vector_lengths", "num_nodes", "seed")}),
        "committee": committee_rows(),
    }


def main() -> None:  # pragma: no cover - exercised via CLI
    result = run()
    print("INTERMIX soundness (fraction of cheating workers caught)")
    print(format_table(result["soundness"]))
    print()
    print("INTERMIX overhead accounting vs Section 6.1 worst case")
    print(format_table(result["overhead"]))
    print()
    print("Committee sizing J = ceil(log eps / log mu)")
    print(format_table(result["committee"]))


if __name__ == "__main__":  # pragma: no cover
    main()
