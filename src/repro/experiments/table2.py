"""Experiment: regenerate Table 2 (fault bounds per phase) with fault injection.

For a chosen ``(N, K, d)`` the experiment sweeps the number of injected
Byzantine nodes ``b`` around the decoding bound and records whether coded
execution still recovered every machine's correct output.  The expectation —
and the Table 2 claim — is that decoding succeeds for every ``b`` up to
``floor((N - d(K-1) - 1) / 2)`` in the synchronous model (``/3`` with silent
nodes counted in the partially synchronous model) and fails beyond it.
"""

from __future__ import annotations

from repro.analysis.bounds import phase_bounds, table2_rows
from repro.analysis.measurement import measure_csm
from repro.experiments.report import format_table
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine, quadratic_market_machine
from repro.net.byzantine import RandomGarbageBehavior, SilentBehavior


def run(
    num_nodes: int = 16,
    num_machines: int = 4,
    degree: int = 1,
    seed: int = 0,
    rounds: int = 1,
) -> dict:
    """Return the formula bounds plus the empirically observed tolerance."""
    field = PrimeField()
    machine = (
        bank_account_machine(field, num_accounts=2)
        if degree == 1
        else quadratic_market_machine(field)
    )
    bounds = phase_bounds(num_nodes, num_machines, degree)
    sync_bound = bounds["synchronous"]["decoding"]
    partial_bound = bounds["partially-synchronous"]["decoding"]

    sweep_rows = []
    max_b = min(sync_bound + 2, num_nodes // 2)
    for b in range(0, max_b + 1):
        outcome = measure_csm(
            machine, num_nodes, num_machines, b, rounds=rounds, seed=seed,
            behavior_factory=RandomGarbageBehavior,
        )
        sweep_rows.append(
            {
                "setting": "synchronous",
                "b": b,
                "within_bound": b <= sync_bound,
                "correct": outcome.all_correct,
            }
        )
    # Partially synchronous: each fault is "silent + one wrong result" in the
    # worst case; we model the erasure part with SilentBehavior on b nodes and
    # the error part with garbage on b further nodes.
    for b in range(0, min(partial_bound + 2, num_nodes // 3) + 1):
        outcome = measure_csm(
            machine, num_nodes, num_machines, 2 * b, rounds=rounds, seed=seed,
            partially_synchronous=True,
            behavior_factory=lambda: (
                SilentBehavior() if hash(object()) % 2 else RandomGarbageBehavior()
            ),
        )
        sweep_rows.append(
            {
                "setting": "partially-synchronous",
                "b": b,
                "within_bound": b <= partial_bound,
                "correct": outcome.all_correct,
            }
        )
    formula_rows = [
        {
            "setting": row.setting,
            "phase": row.phase,
            "constraint": row.constraint,
            "max_faults": row.max_faults,
        }
        for row in table2_rows(num_nodes, num_machines, degree)
    ]
    return {"formula": formula_rows, "sweep": sweep_rows,
            "sync_decoding_bound": sync_bound, "partial_decoding_bound": partial_bound}


def main() -> None:  # pragma: no cover - exercised via CLI
    result = run()
    print("Table 2 — formula bounds")
    print(format_table(result["formula"]))
    print()
    print("Fault-injection sweep around the decoding bound")
    print(format_table(result["sweep"]))


if __name__ == "__main__":  # pragma: no cover
    main()
