"""Experiment: the Theorem 1 / Theorem 2 scaling laws and the throughput figure.

Two sweeps are produced:

* ``scaling_law_rows`` — for increasing ``N`` (at fixed ``mu`` and ``d``),
  the largest ``K`` that actually decodes under injected faults, side by side
  with the closed-form ``floor((1 - 2mu) N / d + 1 - 1/d)``; the security
  ``beta = mu N``; and partial replication's collapsed security ``N / (2K)``.
  This is the executable content of Table 1's scaling claims and of Figure 2.
* ``throughput_rows`` — measured per-node field operations per round for CSM
  with and without delegated coding, against the ``N log^2 N log log N``
  model curve (the Section 6.3 claim behind
  ``lambda = Theta(N / log^2 N log log N)``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.complexity import quasilinear_coding_cost
from repro.analysis.measurement import measure_csm, wall_clock
from repro.analysis.metrics import csm_supported_machines
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.core.protocol import CSMProtocol
from repro.experiments.report import consensus_diagnostics, format_table
from repro.gf.prime_field import PrimeField
from repro.intermix.delegation import DelegatedCodingService
from repro.lcc.scheme import LagrangeScheme
from repro.machine.library import bank_account_machine
from repro.net.byzantine import RandomGarbageBehavior
from repro.rng import default_stream


def scaling_law_rows(
    network_sizes: tuple[int, ...] = (8, 16, 24, 32, 48),
    fault_fraction: float = 0.25,
    degree: int = 1,
    seed: int = 0,
) -> list[dict]:
    """Measured max K and security versus the Theorem 1 formulas."""
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rows = []
    for num_nodes in network_sizes:
        num_faults = int(fault_fraction * num_nodes)
        formula_k = csm_supported_machines(num_nodes, fault_fraction, degree)
        # Find the largest K that actually decodes with num_faults garbage nodes.
        measured_k = 0
        for k in range(1, num_nodes + 1):
            bound = (num_nodes - degree * (k - 1) - 1) // 2
            if bound < num_faults:
                break
            outcome = measure_csm(
                machine, num_nodes, k, num_faults, rounds=1, seed=seed
            )
            if outcome.all_correct:
                measured_k = k
        rows.append(
            {
                "N": num_nodes,
                "b=muN": num_faults,
                "K_formula": formula_k,
                "K_measured": measured_k,
                "csm_security": num_faults,
                "partial_replication_security": (num_nodes // max(formula_k, 1) - 1) // 2,
                "full_replication_storage": 1,
                "csm_storage": measured_k,
            }
        )
    return rows


def throughput_rows(
    network_sizes: tuple[int, ...] = (8, 16, 24, 32),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 1,
    batched: bool = True,
) -> list[dict]:
    """Per-node execution-phase cost: distributed coding vs delegated coding.

    ``batched`` selects the cached-matrix ``execute_rounds`` pipeline (the
    production path); ``batched=False`` measures the scalar round-by-round
    protocol for comparison.  Outputs are bit-identical either way — only the
    operation counts (encode/decode amortisation) differ.
    """
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rng = default_stream(seed)
    rows = []
    for num_nodes in network_sizes:
        num_faults = int(fault_fraction * num_nodes)
        k = max(csm_supported_machines(num_nodes, fault_fraction, machine.degree) // 2, 1)
        config = CSMConfig(
            field=field,
            num_nodes=num_nodes,
            num_machines=k,
            degree=machine.degree,
            num_faults=num_faults,
        )
        engine = CodedExecutionEngine(config, machine, rng=default_stream(seed))
        commands = rng.integers(1, 100, size=(rounds, k, machine.command_dim))
        if batched:
            results = engine.execute_rounds(commands)
        else:
            results = [engine.execute_round(commands[b]) for b in range(rounds)]
        distributed_ops = float(np.mean([r.mean_ops_per_node for r in results]))

        scheme = LagrangeScheme(field, k, num_nodes)
        service = DelegatedCodingService(
            scheme,
            machine.degree,
            [f"node-{i}" for i in range(num_nodes)],
            fault_fraction=fault_fraction,
            rng=default_stream(seed),
        )
        coded, encode_report = service.encode_vectors_verified(commands[0])
        non_worker_ops = encode_report.max_commoner_operations
        worker_ops = encode_report.worker_operations
        rows.append(
            {
                "N": num_nodes,
                "K": k,
                "distributed_ops_per_node": distributed_ops,
                "delegated_worker_ops": worker_ops,
                "delegated_commoner_ops": non_worker_ops,
                "model_quasilinear": quasilinear_coding_cost(num_nodes),
                "throughput_distributed": k / distributed_ops if distributed_ops else float("inf"),
                "throughput_delegated_model": num_nodes
                / quasilinear_coding_cost(num_nodes)
                * k
                / max(k, 1),
            }
        )
    return rows


def pipelined_rows(
    network_sizes: tuple[int, ...] = (8, 16, 24, 32),
    fault_fraction: float = 0.0,
    seed: int = 0,
    rounds: int = 32,
    verify_window: int = 16,
) -> list[dict]:
    """Execution-phase cost of the speculative pipeline versus the batched path.

    For each network size the *same* command stream runs twice through
    identically-built engines: mode ``"batched"`` decodes every round on the
    critical path (:meth:`CodedExecutionEngine.execute_rounds`), mode
    ``"pipelined"`` advances state speculatively and verifies per window
    (:meth:`~CodedExecutionEngine.execute_rounds_pipelined`).  Rows report
    executed commands per wall-clock second, the paper-metric throughput and
    the failure counts; ``identical`` records that the two modes produced
    bit-identical outputs/states/correctness for that size (the property the
    benchmark suite gates on).

    The default sweep is fault-free — the workload the ≥ 1.5× speedup target
    is defined on; ``fault_fraction > 0`` measures graceful degradation (the
    suspect set is learnt once, after which speculation confirms every
    window even though the faulty nodes keep erring).
    """
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rows = []
    for num_nodes in network_sizes:
        num_faults = int(fault_fraction * num_nodes)
        k = csm_supported_machines(num_nodes, max(fault_fraction, 0.2), machine.degree)
        config = CSMConfig(
            field=field,
            num_nodes=num_nodes,
            num_machines=k,
            degree=machine.degree,
            num_faults=num_faults,
        )
        node_ids = [f"node-{i}" for i in range(num_nodes)]
        behaviors = {
            node_ids[i]: RandomGarbageBehavior() for i in range(num_faults)
        }
        commands = default_stream(seed).integers(
            1, 1000, size=(rounds, k, machine.command_dim)
        )

        per_mode: dict[str, list] = {}
        timings: dict[str, float] = {}
        warmup = commands[: min(2, rounds)]
        for mode in ("batched", "pipelined"):
            # Warm the process-global matrix caches on a throwaway engine so
            # neither mode is billed the one-off construction cost.
            scratch = CodedExecutionEngine(
                config, machine, node_ids, dict(behaviors), default_stream(seed)
            )
            if mode == "pipelined":
                scratch.execute_rounds_pipelined(warmup, verify_window=verify_window)
            else:
                scratch.execute_rounds(warmup)
            engine = CodedExecutionEngine(
                config, machine, node_ids, dict(behaviors), default_stream(seed)
            )
            start = wall_clock()
            if mode == "pipelined":
                results = engine.execute_rounds_pipelined(
                    commands, verify_window=verify_window
                )
            else:
                results = engine.execute_rounds(commands)
            timings[mode] = wall_clock() - start
            per_mode[mode] = results
        identical = all(
            np.array_equal(a.outputs, b.outputs)
            and np.array_equal(a.states, b.states)
            and a.correct == b.correct
            for a, b in zip(per_mode["batched"], per_mode["pipelined"])
        )
        for mode in ("batched", "pipelined"):
            results = per_mode[mode]
            elapsed = timings[mode]
            failed = sum(1 for r in results if not r.correct)
            executed = k * (rounds - failed)
            rows.append(
                {
                    "N": num_nodes,
                    "K": k,
                    "rounds": rounds,
                    "mode": mode,
                    "commands_per_sec": executed / elapsed if elapsed else 0.0,
                    "throughput": float(
                        np.mean(
                            [
                                k / r.mean_ops_per_node
                                for r in results
                                if r.correct and r.mean_ops_per_node
                            ]
                        )
                    )
                    if any(r.correct for r in results)
                    else 0.0,
                    "failed_rounds": failed,
                    "identical": identical,
                    "wall_seconds": elapsed,
                }
            )
    return rows


def delegation_rows(
    network_sizes: tuple[int, ...] = (8, 16, 32),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 8,
    failure_probability: float = 1e-6,
) -> list[dict]:
    """Delegated-verification rounds: batched INTERMIX versus the scalar oracle.

    For each network size the *same* command stream runs twice through
    identically-seeded :class:`~repro.intermix.rounds.DelegationRoundProtocol`
    backends — mode ``"batched"`` verifies every delegated coding operation
    through :meth:`IntermixProtocol.run_batch` (one stacked matrix product
    shared by the worker and all auditors), mode ``"scalar"`` pins the
    column-at-a-time reference oracle.  Rows report delegated rounds and
    commands per wall-clock second, the paper-metric throughput, and
    ``identical`` — whether the two modes produced bit-identical
    outputs/states/operation counts (the property the benchmark suite gates
    on, alongside the batched-mode speedup).
    """
    from repro.intermix.committee import required_committee_size
    from repro.intermix.rounds import DelegationRoundProtocol

    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    committee_size = required_committee_size(fault_fraction, failure_probability)
    rows = []
    for num_nodes in network_sizes:
        k = max(num_nodes // 4, 2)
        commands = default_stream(seed).integers(
            1, 1000, size=(rounds, k, machine.command_dim)
        )
        per_mode: dict[str, DelegationRoundProtocol] = {}
        timings: dict[str, float] = {}
        for mode, batched in (("batched", True), ("scalar", False)):
            protocol = DelegationRoundProtocol(
                machine,
                k,
                [f"node-{i}" for i in range(num_nodes)],
                fault_fraction=fault_fraction,
                rng=default_stream(seed),
                failure_probability=failure_probability,
                batched=batched,
            )
            start = wall_clock()
            protocol.run_rounds_batched(list(commands))
            timings[mode] = wall_clock() - start
            per_mode[mode] = protocol
        identical = all(
            np.array_equal(a.result.outputs, b.result.outputs)
            and np.array_equal(a.result.states, b.result.states)
            and a.result.correct == b.result.correct
            and a.result.ops_per_node == b.result.ops_per_node
            for a, b in zip(per_mode["batched"].history, per_mode["scalar"].history)
        )
        for mode in ("batched", "scalar"):
            protocol = per_mode[mode]
            elapsed = timings[mode]
            failed = protocol.failed_rounds
            rows.append(
                {
                    "N": num_nodes,
                    "K": k,
                    "J": committee_size,
                    "rounds": rounds,
                    "mode": mode,
                    "rounds_per_sec": rounds / elapsed if elapsed else 0.0,
                    "commands_per_sec": k * (rounds - failed) / elapsed
                    if elapsed
                    else 0.0,
                    "throughput": protocol.measured_throughput(),
                    "failed_rounds": failed,
                    "identical": identical,
                    "wall_seconds": elapsed,
                }
            )
    return rows


def _build_protocol(
    field, machine, num_nodes, fault_fraction, seed, vectorised_consensus=True
):
    """One CSMProtocol sized for the sweep (faults on the highest node ids)."""
    num_faults = int(fault_fraction * num_nodes)
    k = max(csm_supported_machines(num_nodes, fault_fraction, machine.degree) // 2, 1)
    config = CSMConfig(
        field=field,
        num_nodes=num_nodes,
        num_machines=k,
        degree=machine.degree,
        num_faults=num_faults,
    )
    # Faults on the highest-indexed nodes keep round 0's leader honest.
    behaviors = {
        f"node-{num_nodes - 1 - i}": RandomGarbageBehavior()
        for i in range(num_faults)
    }
    return CSMProtocol(
        config,
        machine,
        behaviors,
        rng=default_stream(seed),
        vectorised_consensus=vectorised_consensus,
    )


def protocol_rows(
    network_sizes: tuple[int, ...] = (8, 12, 16),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 4,
    batched_protocol: bool = True,
    service: bool = False,
    pipelined: bool = False,
    vectorised_consensus: bool = True,
) -> list[dict]:
    """End-to-end CSMProtocol cost per network size: consensus + execution.

    Unlike :func:`throughput_rows` (which drives the execution engine
    directly), this sweep runs the *full* protocol — client submission,
    consensus, network simulation, coded execution, verified delivery.
    ``batched_protocol`` selects :meth:`CSMProtocol.run_rounds_batched`
    (consensus ``decide_rounds`` over the bulk delivery path + one
    ``execute_rounds`` batch); ``batched_protocol=False`` runs the sequential
    ``run_round`` loop.  ``service=True`` submits the same traffic through
    :class:`~repro.service.service.CSMService` sessions and lets the round
    scheduler drain it into batches (the production client path).
    ``pipelined=True`` executes through the speculative pipeline —
    :meth:`CSMProtocol.run_rounds_pipelined` directly, or
    ``CSMService(pipeline=True)`` when combined with ``service``.
    ``vectorised_consensus=False`` pins the event-driven consensus oracle
    instead of the message-plane fast path.  The recorded round histories
    are bit-identical across all modes.
    """
    from repro.service import CSMService

    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rng = default_stream(seed)
    rows = []
    for num_nodes in network_sizes:
        protocol = _build_protocol(
            field, machine, num_nodes, fault_fraction, seed, vectorised_consensus
        )
        k = protocol.num_machines
        batches = [
            rng.integers(1, 1000, size=(k, machine.command_dim))
            for _ in range(rounds)
        ]
        start = wall_clock()
        if service:
            mode = "service-pipelined" if pipelined else "service"
            svc = CSMService(
                protocol, max_batch_rounds=rounds, min_fill=k, pipeline=pipelined
            )
            sessions = [svc.connect(f"client:{i}") for i in range(k)]
            for batch in batches:
                for i in range(k):
                    sessions[i].submit(i, batch[i])
            svc.drain()
        elif pipelined:
            mode = "pipelined"
            protocol.run_rounds_pipelined(batches)
        elif batched_protocol:
            mode = "batched"
            protocol.run_rounds_batched(batches)
        else:
            mode = "sequential"
            protocol.run_rounds(batches)
        elapsed = wall_clock() - start
        rows.append(
            {
                "N": num_nodes,
                "K": k,
                "rounds": rounds,
                "mode": mode,
                "batched_protocol": batched_protocol,
                "throughput": protocol.measured_throughput(),
                "failed_rounds": protocol.failed_rounds,
                "messages_sent": protocol.network.messages_sent,
                "wall_seconds": elapsed,
                **consensus_diagnostics(protocol),
            }
        )
    return rows


def consensus_rows(
    network_sizes: tuple[int, ...] = (8, 16, 24, 32),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 8,
) -> list[dict]:
    """Consensus-phase micro-benchmark: decisions per second, plane vs oracle.

    Each network size runs the *same* command stream through two
    identically-seeded protocols — one with the vectorised message plane,
    one pinned to the event-driven oracle — and times **only** the
    consensus phase (:meth:`ConsensusProtocol.decide_rounds` with lazy
    per-round submission), then the execution phase alone for the decided
    command matrix.  Rows report decided rounds and agreed commands per
    wall-clock second, the plane/oracle speedup denominator
    (``wall_seconds``) and ``consensus_over_execution`` — how many times
    more wall-clock the consensus phase costs than coded execution for the
    same rounds, the gap the message plane exists to close.

    ``fast_path_disabled`` in each row confirms which path actually ran:
    ``0`` for the vectorised rows, ``rounds`` for the oracle rows.
    """
    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rows = []
    for num_nodes in network_sizes:
        for plane in (True, False):
            protocol = _build_protocol(
                field, machine, num_nodes, fault_fraction, seed, plane
            )
            k = protocol.num_machines
            command_rng = default_stream(seed)
            batches = [
                command_rng.integers(1, 1000, size=(k, machine.command_dim))
                for _ in range(rounds)
            ]
            client_rounds = [
                [f"client:{i}" for i in range(k)] for _ in range(rounds)
            ]
            start = wall_clock()
            decisions = protocol.consensus.decide_rounds(
                0,
                rounds,
                prepare_round=lambda offset: protocol._submit_round(
                    batches[offset], client_rounds[offset]
                ),
            )
            consensus_elapsed = wall_clock() - start
            sample = protocol._select_decision(decisions[0])
            commands_matrix = np.stack(
                [protocol._select_decision(d).commands for d in decisions]
            )
            start = wall_clock()
            protocol.engine.execute_rounds(commands_matrix)
            execution_elapsed = wall_clock() - start
            rows.append(
                {
                    "N": num_nodes,
                    "K": k,
                    "rounds": rounds,
                    "decisions_per_sec": rounds / consensus_elapsed
                    if consensus_elapsed
                    else 0.0,
                    "commands_per_sec": rounds * k / consensus_elapsed
                    if consensus_elapsed
                    else 0.0,
                    "consensus_over_execution": consensus_elapsed
                    / execution_elapsed
                    if execution_elapsed
                    else float("inf"),
                    "wall_seconds": consensus_elapsed,
                    "execution_seconds": execution_elapsed,
                    "first_round_view": sample.view,
                    **consensus_diagnostics(protocol),
                }
            )
    return rows


def service_rows(
    network_sizes: tuple[int, ...] = (8, 12, 16),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 4,
    fill_probability: float = 0.6,
    min_fill: int = 1,
) -> list[dict]:
    """Ragged client traffic served through the session/ticket API.

    Every scheduler tick, each machine independently has a pending command
    with probability ``fill_probability`` (one bursty client also queues a
    second command for machine 0), so rounds carry noop padding and queues
    of uneven depth — the workload shape the lockstep harnesses cannot
    express.  Reports how many scheduled slots were real commands versus
    padding, and the ticket outcome counts.
    """
    from repro.service import CSMService, TicketState

    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rng = default_stream(seed)
    rows = []
    for num_nodes in network_sizes:
        protocol = _build_protocol(field, machine, num_nodes, fault_fraction, seed)
        k = protocol.num_machines
        service = CSMService(
            protocol, max_batch_rounds=rounds, min_fill=min(min_fill, k)
        )
        sessions = [service.connect(f"client:{i}") for i in range(k)]
        burst = service.connect("client:burst")
        submitted = 0
        start = wall_clock()
        for _ in range(rounds):
            for i in range(k):
                if rng.random() < fill_probability:
                    sessions[i].submit(
                        i, rng.integers(1, 1000, size=machine.command_dim)
                    )
                    submitted += 1
            burst.submit(0, rng.integers(1, 1000, size=machine.command_dim))
            submitted += 1
            service.drive()
        service.drain()
        elapsed = wall_clock() - start
        tickets = service.tickets()
        executed = sum(1 for t in tickets if t.state is TicketState.EXECUTED)
        failed = sum(1 for t in tickets if t.state is TicketState.FAILED)
        scheduled_slots = len(protocol.history) * k
        rows.append(
            {
                "N": num_nodes,
                "K": k,
                "rounds_run": len(protocol.history),
                "tickets": submitted,
                "executed": executed,
                "failed": failed,
                "noop_slots": scheduled_slots - submitted,
                "throughput": protocol.measured_throughput(),
                "wall_seconds": elapsed,
            }
        )
    return rows


def _build_shard_backends(
    field, machine, num_nodes, fault_fraction, seed, shards, vectorised_consensus=True
):
    """One CSMProtocol per shard over a balanced partition of the nodes.

    Sharding the *consensus* means sharding the node set too: shard ``s``
    runs its own consensus instance over ``~N/S`` nodes (its own simulated
    network), hosting the machine count that node group supports.  Per-shard
    rounds then cost ``O((N/S)^2)`` consensus messages instead of
    ``O(N^2)`` — the axis the sharded service opens.
    """
    from repro.service.sharding import partition_machines

    sizes = partition_machines(num_nodes, shards)
    return [
        _build_protocol(
            field, machine, size, fault_fraction, seed + s, vectorised_consensus
        )
        for s, size in enumerate(sizes)
    ]


def sharded_rows(
    network_sizes: tuple[int, ...] = (8, 16, 24),
    fault_fraction: float = 0.2,
    seed: int = 0,
    rounds: int = 4,
    shards: int = 2,
    min_fill: int = 1,
    vectorised_consensus: bool = True,
) -> list[dict]:
    """Sharded versus unsharded serving at matched node budgets.

    For each network size ``N``, the same lockstep-dense traffic (every
    machine receives ``rounds`` commands) is served twice: once through an
    unsharded :class:`~repro.service.service.CSMService` over one
    ``N``-node consensus instance, and once through a
    :class:`~repro.service.sharding.ShardedCSMService` whose ``shards``
    consensus instances partition the same ``N`` nodes.  Each mode reports
    the executed-command rate (commands per wall-clock second), the
    paper-metric throughput (commands per unit per-node field operation)
    and the failure counts, one row per ``(N, mode)``.

    ``vectorised_consensus`` applies to both deployments; pinning the
    event-driven oracle (``False``) isolates the sharding axis from the
    message-plane speedup, which compresses the consensus share of the
    round enough to change which deployment wins at a given ``N``.
    """
    from repro.service import CSMService, ShardedCSMService, TicketState

    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rows = []
    for num_nodes in network_sizes:
        unsharded_backend = _build_protocol(
            field, machine, num_nodes, fault_fraction, seed, vectorised_consensus
        )
        unsharded = CSMService(
            unsharded_backend,
            max_batch_rounds=rounds,
            min_fill=min(min_fill, unsharded_backend.num_machines),
        )
        shard_backends = _build_shard_backends(
            field, machine, num_nodes, fault_fraction, seed, shards,
            vectorised_consensus,
        )
        sharded = ShardedCSMService(
            shard_backends,
            max_batch_rounds=rounds,
            min_fill=min_fill,
        )

        for mode, service in (
            ("unsharded", unsharded),
            (f"sharded:{shards}", sharded),
        ):
            # Fresh generator per mode: both modes draw the same command
            # stream, so the rows compare deployments, not workloads.
            command_rng = default_stream(seed)
            k_total = service.num_machines
            sessions = [service.connect(f"client:{i}") for i in range(k_total)]
            start = wall_clock()
            for _ in range(rounds):
                for i in range(k_total):
                    sessions[i].submit(
                        i, command_rng.integers(1, 1000, size=machine.command_dim)
                    )
                service.drive()
            service.drain()
            elapsed = wall_clock() - start
            tickets = service.tickets()
            executed = sum(1 for t in tickets if t.state is TicketState.EXECUTED)
            failed = sum(1 for t in tickets if t.state is TicketState.FAILED)
            reporting = service if mode.startswith("sharded") else unsharded_backend
            rows.append(
                {
                    "N": num_nodes,
                    "mode": mode,
                    "shards": shards if mode.startswith("sharded") else 1,
                    "K_total": k_total,
                    "rounds_run": len(reporting.history),
                    "tickets": len(tickets),
                    "executed": executed,
                    "failed": failed,
                    "commands_per_sec": executed / elapsed if elapsed else 0.0,
                    "throughput": reporting.measured_throughput(),
                    "failed_rounds": reporting.failed_rounds,
                    "wall_seconds": elapsed,
                    "fast_path_disabled": service.consensus_fast_path_disabled,
                }
            )
    return rows


def traffic_rows(
    network_sizes: tuple[int, ...] = (8, 12, 16),
    fault_fraction: float = 0.2,
    seed: int = 0,
    ticks: int = 24,
    num_sessions: int = 16,
    rate: float = 0.5,
    max_session_pending: int = 8,
    admission_watermark: int | None = None,
    weighted: bool = True,
) -> list[dict]:
    """Open-loop Poisson and bursty traffic under a live QoS policy.

    For each network size the same service configuration is driven by two
    open-loop arrival processes — i.i.d. Poisson and on/off bursty — over
    ``num_sessions`` sessions, with a per-session queue cap (and optionally
    an admission watermark) bounding the backlog and, when ``weighted``,
    session 0 carrying stride weight 2 so its slot share under saturation is
    measurable.  One row per ``(N, process)``: delivered/throttled counts,
    the peak ingress backlog, and p50/p90/p99 commit and execute latency in
    *logical scheduler ticks* — fully deterministic, unlike the wall-clock
    columns of the other sweeps.
    """
    from repro.rng import derived_stream
    from repro.service import (
        BurstyProcess,
        CSMService,
        OpenLoopDriver,
        PoissonProcess,
        QosPolicy,
    )

    field = PrimeField()
    machine = bank_account_machine(field, num_accounts=2)
    rows = []
    for num_nodes in network_sizes:
        for process_name in ("poisson", "bursty"):
            protocol = _build_protocol(
                field, machine, num_nodes, fault_fraction, seed
            )
            qos = QosPolicy(
                max_session_pending=max_session_pending,
                admission_watermark=admission_watermark,
                selection="weighted_fair" if weighted else "fifo",
                session_weights={"traffic:0": 2} if weighted else {},
            )
            service = CSMService(protocol, qos=qos)
            process = (
                PoissonProcess(rate=rate)
                if process_name == "poisson"
                else BurstyProcess(on_rate=2 * rate, p_on_off=0.25, p_off_on=0.25)
            )
            driver = OpenLoopDriver(
                service,
                process,
                num_sessions=num_sessions,
                rng=derived_stream(default_stream(seed)),
            )
            report = driver.run(ticks)
            rows.append(
                {
                    "N": num_nodes,
                    "K": protocol.num_machines,
                    "process": process_name,
                    "sessions": num_sessions,
                    "ticks": report.ticks,
                    "submitted": report.submitted,
                    "executed": report.executed,
                    "throttled": report.throttled,
                    "max_pending": report.max_pending,
                    "p50_commit": report.commit_latency["p50"],
                    "p90_commit": report.commit_latency["p90"],
                    "p99_commit": report.commit_latency["p99"],
                    "p50_execute": report.execute_latency["p50"],
                    "p90_execute": report.execute_latency["p90"],
                    "p99_execute": report.execute_latency["p99"],
                    "weighted_session_share": (
                        report.executed_by_session.get("traffic:0", 0)
                        / report.executed
                        if report.executed
                        else 0.0
                    ),
                }
            )
    return rows


def run(**kwargs) -> dict:
    return {
        "scaling_laws": scaling_law_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "degree", "seed")}),
        "throughput": throughput_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds", "batched")}),
        "protocol": protocol_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds", "batched_protocol",
            "service", "pipelined", "vectorised_consensus")}),
        "consensus": consensus_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds")}),
        "pipelined": pipelined_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds",
            "verify_window")}),
        "delegation": delegation_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds",
            "failure_probability")}),
        "service": service_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds",
            "fill_probability", "min_fill")}),
        "sharded": sharded_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "rounds", "shards",
            "min_fill", "vectorised_consensus")}),
        "traffic": traffic_rows(**{k: v for k, v in kwargs.items() if k in (
            "network_sizes", "fault_fraction", "seed", "ticks", "num_sessions",
            "rate", "max_session_pending", "admission_watermark", "weighted")}),
    }


def main() -> None:  # pragma: no cover - exercised via CLI
    result = run()
    print("Theorem 1 scaling laws (measured vs formula)")
    print(format_table(result["scaling_laws"]))
    print()
    print("Throughput scaling (Section 6.3): distributed vs delegated coding")
    print(format_table(result["throughput"]))
    print()
    print("End-to-end protocol (consensus + coded execution, batched path)")
    print(format_table(result["protocol"]))
    print()
    print("Consensus phase only: vectorised message plane vs event-driven oracle")
    print(format_table(result["consensus"]))
    print()
    print("Speculative pipeline vs batched decode (execution phase, fault-free)")
    print(format_table(result["pipelined"]))
    print()
    print("Delegated-verification rounds: batched INTERMIX vs scalar oracle")
    print(format_table(result["delegation"]))
    print()
    print("Ragged client traffic through the session/ticket service API")
    print(format_table(result["service"]))
    print()
    print("Sharded vs unsharded serving (partitioned pools + per-shard consensus)")
    print(format_table(result["sharded"]))
    print()
    print("Open-loop traffic under QoS (logical-tick latency percentiles)")
    print(format_table(result["traffic"]))


if __name__ == "__main__":  # pragma: no cover
    main()
