"""Experiment: regenerate Table 1 (security / storage / throughput comparison).

For each scheme we report two kinds of rows:

* ``formula`` rows — the closed-form Table 1 entries evaluated at the chosen
  ``(N, K, mu, d)``;
* ``measured`` rows — the same metrics measured by actually running the
  scheme's execution engine with Byzantine nodes injected: correctness at the
  scheme's claimed security level, storage efficiency from the data layout,
  and throughput from counted field operations.

The paper's claim to check is the *shape*: CSM's security and storage columns
scale with ``N`` simultaneously, whereas full replication pins storage at 1
and partial replication's security collapses by a factor ``K``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.complexity import (
    per_node_delegated_coding_cost,
    transition_operation_count,
)
from repro.analysis.measurement import (
    measure_csm,
    measure_full_replication,
    measure_partial_replication,
)
from repro.analysis.metrics import table1_rows
from repro.experiments.report import format_table
from repro.gf.prime_field import PrimeField
from repro.machine.library import bank_account_machine, quadratic_market_machine


def run(
    num_nodes: int = 24,
    fault_fraction: float = 0.25,
    degree: int = 1,
    rounds: int = 2,
    seed: int = 0,
    measured: bool = True,
    batched: bool = False,
) -> list[dict]:
    """Produce the Table 1 rows (formula and, optionally, measured).

    ``batched=True`` runs the measured rows through every engine's
    ``execute_rounds`` batch pipeline; the results are bit-identical to the
    scalar path, only the amortised operation counts (and wall-clock) change.
    """
    field = PrimeField()
    machine = (
        bank_account_machine(field, num_accounts=2)
        if degree == 1
        else quadratic_market_machine(field)
    )
    transition_cost = transition_operation_count(machine.transition)
    coding_cost = per_node_delegated_coding_cost(num_nodes)
    num_faults = int(fault_fraction * num_nodes)
    # K for the replication baselines: as many machines as CSM supports, so
    # the comparison is at equal load, capped to a divisor of N for sharding.
    from repro.analysis.metrics import csm_supported_machines

    csm_k = max(csm_supported_machines(num_nodes, fault_fraction, degree), 1)
    partial_k = csm_k
    while num_nodes % partial_k != 0 and partial_k > 1:
        partial_k -= 1

    rows: list[dict] = []
    for metrics in table1_rows(
        num_nodes, partial_k, fault_fraction, degree, transition_cost, coding_cost
    ):
        row = metrics.as_row()
        row["kind"] = "formula"
        row["N"] = num_nodes
        rows.append(row)

    if measured:
        full = measure_full_replication(
            machine, num_nodes, partial_k, num_faults, rounds=rounds, seed=seed,
            batched=batched,
        )
        partial = measure_partial_replication(
            machine, num_nodes, partial_k, min(num_faults, num_nodes // partial_k),
            rounds=rounds, seed=seed, batched=batched,
        )
        csm_b = min(num_faults, max((num_nodes - degree * (csm_k - 1) - 1) // 2, 0))
        csm = measure_csm(
            machine, num_nodes, csm_k, csm_b, rounds=rounds, seed=seed,
            batched=batched,
        )
        for measured_perf in (full, partial, csm):
            row = measured_perf.as_row()
            row["kind"] = "measured"
            rows.append(row)
    return rows


def main() -> None:  # pragma: no cover - exercised via CLI
    rows = run()
    formula = [r for r in rows if r["kind"] == "formula"]
    measured = [r for r in rows if r["kind"] == "measured"]
    print("Table 1 — closed-form entries")
    print(format_table(formula, ["scheme", "security", "storage_efficiency", "throughput"]))
    print()
    print("Table 1 — measured (op-counted) entries")
    print(
        format_table(
            measured,
            ["scheme", "N", "K", "b", "correct", "storage_efficiency", "ops_per_node", "throughput"],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
