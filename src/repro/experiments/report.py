"""Tiny text-report formatting helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Iterable


def consensus_diagnostics(backend) -> dict:
    """Consensus-plane health fields for an experiment row.

    ``backend`` is anything with the :class:`~repro.rounds.RoundProtocol`
    reporting surface (a protocol, a service, or the sharded façade).
    Returns two row fields:

    * ``consensus_plane`` — ``"vectorised"`` when the message-plane fast
      path is enabled, ``"oracle"`` when the event-driven reference path is
      pinned, ``"n/a"`` for backends without a consensus layer;
    * ``fast_path_disabled`` — how many rounds actually fell back to the
      sequential oracle.  A non-zero count under ``consensus_plane ==
      "vectorised"`` is the silent-fallback signal the rows exist to
      surface: the run *asked* for the fast path but did not get it.
    """
    consensus = getattr(backend, "consensus", None)
    if consensus is None:
        plane = "n/a"
    elif getattr(consensus, "use_vectorised_plane", False):
        plane = "vectorised"
    else:
        plane = "oracle"
    return {
        "consensus_plane": plane,
        "fast_path_disabled": int(
            getattr(backend, "consensus_fast_path_disabled", 0)
        ),
    }


def format_table(rows: Iterable[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    )
    return f"{header}\n{separator}\n{body}"


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
