"""Tiny text-report formatting helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Iterable


def format_table(rows: Iterable[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered
    )
    return f"{header}\n{separator}\n{body}"


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
