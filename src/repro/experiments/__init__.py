"""Executable regeneration of every table and figure in the paper.

Each module exposes a ``run(...)`` function returning plain dict rows (used
by the benchmark suite and the tests) and a ``main()`` that prints a
formatted report, so e.g. ``python -m repro.experiments.table1`` regenerates
Table 1 from both the closed-form formulas and live measurements.
"""

from repro.experiments import table1, table2, scaling, intermix_report

__all__ = ["table1", "table2", "scaling", "intermix_report"]
