"""Evaluation-view Reed–Solomon codes.

A codeword is the vector of evaluations ``(p(x_1), ..., p(x_n))`` of a message
polynomial ``p`` of degree less than ``k`` at ``n`` distinct points.  CSM
never encodes "messages" explicitly — the codewords arise naturally as the
broadcast coded computation results — but the code object is the convenient
place to keep the evaluation points, the dimension and the decoding radius
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

import numpy as np

from repro.exceptions import DecodingError, FieldError
from repro.gf.field import Field
from repro.gf.matrix_cache import cached_interpolation_matrix, cached_vandermonde
from repro.gf.polynomial import Poly


@dataclass
class DecodingResult:
    """Outcome of a noisy-interpolation decode.

    Attributes
    ----------
    polynomial:
        The recovered message polynomial (degree < dimension).
    codeword:
        Re-encoded evaluations of the recovered polynomial at the code's
        evaluation points.
    error_positions:
        Indices where the received word differed from the re-encoded
        codeword, i.e. the positions the decoder corrected.
    """

    polynomial: Poly
    codeword: np.ndarray
    error_positions: tuple[int, ...] = dataclass_field(default_factory=tuple)

    @property
    def num_errors(self) -> int:
        return len(self.error_positions)


class ReedSolomonCode:
    """An ``[n, k]`` Reed–Solomon code over ``field`` with explicit points.

    Parameters
    ----------
    field:
        The finite field.
    evaluation_points:
        ``n`` distinct field elements; position ``i`` of a codeword is the
        message polynomial evaluated at ``evaluation_points[i]``.
    dimension:
        ``k``, the number of message coefficients (polynomial degree < k).
    """

    def __init__(
        self, field: Field, evaluation_points: Sequence[int], dimension: int
    ) -> None:
        points = [field.element(int(p)) for p in evaluation_points]
        if len(set(points)) != len(points):
            raise FieldError("Reed-Solomon evaluation points must be distinct")
        if dimension < 1:
            raise FieldError(f"dimension must be positive, got {dimension}")
        if dimension > len(points):
            raise FieldError(
                f"dimension {dimension} exceeds code length {len(points)}"
            )
        if len(points) >= field.order:
            raise FieldError(
                f"code length {len(points)} requires field larger than {field.order}"
            )
        self.field = field
        self.evaluation_points = points
        self.dimension = int(dimension)

    # -- properties -----------------------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.evaluation_points)

    @property
    def minimum_distance(self) -> int:
        """Singleton-bound-achieving distance ``n - k + 1``."""
        return self.length - self.dimension + 1

    @property
    def correction_radius(self) -> int:
        """Maximum number of correctable errors ``floor((n - k) / 2)``."""
        return (self.length - self.dimension) // 2

    # -- encoding ---------------------------------------------------------------------
    def encode_polynomial(self, poly: Poly) -> np.ndarray:
        """Evaluate a message polynomial at all code points."""
        if poly.degree >= self.dimension:
            raise FieldError(
                f"message polynomial degree {poly.degree} too large for dimension "
                f"{self.dimension}"
            )
        return poly.evaluate_many(self.evaluation_points)

    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Encode a coefficient vector of length ``dimension``."""
        coeffs = list(message)
        if len(coeffs) != self.dimension:
            raise FieldError(
                f"message length {len(coeffs)} does not match dimension {self.dimension}"
            )
        return self.encode_polynomial(Poly(self.field, coeffs))

    # -- batched paths (cached-matrix pipeline) ----------------------------------------
    @property
    def points_key(self) -> tuple[int, ...]:
        """The evaluation points as a hashable tuple (matrix-cache key part)."""
        return tuple(int(p) for p in self.evaluation_points)

    @property
    def encoding_matrix(self) -> np.ndarray:
        """The cached ``n x k`` Vandermonde encoding matrix ``V[i, j] = x_i**j``."""
        return cached_vandermonde(self.field, self.points_key, self.dimension)

    def encode_batch(self, messages: np.ndarray) -> np.ndarray:
        """Encode ``B`` coefficient vectors at once: ``(B, k) -> (B, n)``.

        One ``GF(p)`` matrix–matrix product with the cached encoding matrix
        replaces ``B`` Horner evaluations; the output rows are bit-identical
        to ``encode(messages[b])``.
        """
        arr = self.field.array(messages)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise FieldError(
                f"expected a (batch, {self.dimension}) message array, got {arr.shape}"
            )
        return self.field.matmul(arr, self.encoding_matrix.T)

    def decode_batch(self, words: np.ndarray) -> list[DecodingResult]:
        """Decode ``B`` received words at once: ``(B, n) -> B`` results.

        Clean rows (exact codewords — the overwhelmingly common case of the
        batched round pipeline) are decoded with two cached matrix products:
        candidate coefficients from the first ``k`` positions, then a
        re-encode to verify all ``n``.  Rows that fail verification fall back
        to the scalar Berlekamp–Welch decoder, so the per-row results are
        always bit-identical to the scalar path.
        """
        arr = self.field.array(words)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.length:
            raise FieldError(
                f"expected a (batch, {self.length}) received array, got {arr.shape}"
            )
        pivot_points = self.points_key[: self.dimension]
        inverse = cached_interpolation_matrix(self.field, pivot_points)
        coeffs = self.field.matmul(arr[:, : self.dimension], inverse.T)
        reencoded = self.field.matmul(coeffs, self.encoding_matrix.T)
        clean = np.all(reencoded == arr, axis=1)
        fallback = None
        results: list[DecodingResult] = []
        for row in range(arr.shape[0]):
            if clean[row]:
                results.append(
                    DecodingResult(
                        polynomial=Poly(self.field, coeffs[row]),
                        codeword=reencoded[row].copy(),
                        error_positions=(),
                    )
                )
            else:
                if fallback is None:
                    from repro.coding.berlekamp_welch import BerlekampWelchDecoder

                    fallback = BerlekampWelchDecoder(self)
                results.append(fallback.decode(arr[row]))
        return results

    # -- helpers shared by decoders -------------------------------------------------------
    def check_received_length(self, received: Sequence[int]) -> np.ndarray:
        word = self.field.array(received).reshape(-1)
        if word.shape[0] != self.length:
            raise DecodingError(
                f"received word length {word.shape[0]} does not match code length "
                f"{self.length}"
            )
        return word

    def errors_against(self, polynomial: Poly, received: Sequence[int]) -> tuple[int, ...]:
        """Positions where ``received`` disagrees with ``polynomial``'s codeword."""
        word = self.check_received_length(received)
        codeword = self.encode_polynomial(polynomial)
        return tuple(int(i) for i in np.nonzero(word != codeword)[0])

    def is_codeword(self, word: Sequence[int]) -> bool:
        """True when ``word`` is a valid codeword (fits a degree < k polynomial)."""
        received = self.check_received_length(word)
        from repro.gf.lagrange import lagrange_interpolate

        poly = lagrange_interpolate(
            self.field, self.evaluation_points, [int(v) for v in received]
        )
        return poly.degree < self.dimension

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ReedSolomonCode(n={self.length}, k={self.dimension}, "
            f"field_order={self.field.order})"
        )
