"""Gao decoding of Reed–Solomon codes (extended-Euclidean algorithm).

Gao's decoder interpolates the received word into a polynomial ``g1``, then
runs the extended Euclidean algorithm on ``(g0, g1)`` — where
``g0 = prod (z - x_i)`` is the node polynomial — stopping as soon as the
remainder degree drops below ``(n + k) / 2``.  The message polynomial is the
quotient of that remainder by the Bezout coefficient; a non-zero remainder of
the final division signals more errors than the radius allows.

The decoder is used as an ablation against Berlekamp–Welch
(`benchmarks/bench_ablation_decoders.py`) and as an independent cross-check in
property tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import DecodingError
from repro.gf.field import Field
from repro.gf.lagrange import lagrange_interpolate
from repro.gf.polynomial import Poly
from repro.coding.reed_solomon import DecodingResult, ReedSolomonCode


class GaoDecoder:
    """Gao decoder bound to a specific Reed–Solomon code."""

    def __init__(self, code: ReedSolomonCode) -> None:
        self.code = code
        self.field: Field = code.field
        # Node polynomial g0(z) = prod (z - x_i); depends only on the code points.
        self._node_polynomial = Poly.from_roots(self.field, code.evaluation_points)

    def decode(self, received: Sequence[int]) -> DecodingResult:
        """Decode a received word or raise :class:`DecodingError`.

        Succeeds whenever the received word is within
        ``floor((n - k) / 2)`` errors of a codeword, like Berlekamp–Welch.
        """
        word = self.code.check_received_length(received)
        field = self.field
        n = self.code.length
        k = self.code.dimension
        g0 = self._node_polynomial
        g1 = lagrange_interpolate(
            field, self.code.evaluation_points, [int(v) for v in word]
        )
        # Degree bound for the Euclidean stopping condition: (n + k) / 2.
        stop_degree = (n + k + 1) // 2 if (n + k) % 2 else (n + k) // 2
        remainder, _, bezout_v = Poly.partial_extended_gcd(g0, g1, stop_degree)
        if bezout_v.is_zero:
            raise DecodingError("Gao decoding failed: zero Bezout coefficient")
        quotient, division_remainder = remainder.divmod(bezout_v)
        if not division_remainder.is_zero:
            raise DecodingError(
                "Gao decoding failed: received word is outside the correction radius"
            )
        if quotient.degree >= k:
            raise DecodingError(
                f"Gao decoding produced degree {quotient.degree} >= dimension {k}"
            )
        error_positions = self.code.errors_against(quotient, word)
        if len(error_positions) > self.code.correction_radius:
            raise DecodingError(
                f"Gao decoding corrected {len(error_positions)} positions, beyond the "
                f"radius {self.code.correction_radius}"
            )
        return DecodingResult(
            polynomial=quotient,
            codeword=self.code.encode_polynomial(quotient),
            error_positions=error_positions,
        )
