"""Reed–Solomon coding substrate (evaluation view).

CSM's execution phase is exactly noisy polynomial interpolation: honest nodes
contribute correct evaluations of the composite polynomial
``h(z) = f(u(z), v(z))`` at their points ``alpha_i``, malicious nodes
contribute garbage, and the decoder must recover ``h`` as long as the number
of errors ``b`` satisfies ``2b <= N - deg(h) - 1`` (Table 2).

Two decoders are provided:

* :class:`~repro.coding.berlekamp_welch.BerlekampWelchDecoder` — the classic
  linear-system decoder the paper cites.
* :class:`~repro.coding.gao.GaoDecoder` — an extended-Euclidean decoder, used
  as an ablation / cross-check.

Both share the :class:`~repro.coding.reed_solomon.ReedSolomonCode` container
which fixes the evaluation points and dimension.
"""

from repro.coding.reed_solomon import ReedSolomonCode, DecodingResult
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.erasure import ErasureDecoder
from repro.coding.radius import (
    max_errors_correctable,
    max_dimension_for_errors,
    required_length,
)

__all__ = [
    "ReedSolomonCode",
    "DecodingResult",
    "BerlekampWelchDecoder",
    "GaoDecoder",
    "ErasureDecoder",
    "max_errors_correctable",
    "max_dimension_for_errors",
    "required_length",
]
