"""Erasure decoding for Reed–Solomon codes.

In the partially synchronous setting (Section 5.2) honest nodes begin
decoding after receiving only ``N - b`` results: the ``b`` silent nodes are
*erasures* (known-missing positions) while up to ``b`` of the received values
may still be *errors*.  The execution phase therefore needs a decoder that
handles a mix of erasures and errors: we simply restrict the code to the
received positions (a shorter Reed–Solomon code with the same dimension) and
run an error decoder on it.  Successful decoding requires
``2 * errors <= received - dimension``, which reproduces the paper's bound
``3b + 1 <= N - d(K - 1)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DecodingError
from repro.gf.lagrange import lagrange_interpolate
from repro.gf.polynomial import Poly
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.reed_solomon import DecodingResult, ReedSolomonCode


class ErasureDecoder:
    """Decoder for received words with erased (missing) positions."""

    def __init__(self, code: ReedSolomonCode) -> None:
        self.code = code
        self.field = code.field

    def decode_with_erasures(
        self, received: Sequence[int | None]
    ) -> DecodingResult:
        """Decode a word where missing positions are marked ``None``.

        The surviving positions form a punctured Reed–Solomon code of the same
        dimension; errors among the survivors are corrected with
        Berlekamp–Welch as long as ``2*errors <= survivors - dimension``.
        """
        if len(received) != self.code.length:
            raise DecodingError(
                f"received word length {len(received)} does not match code length "
                f"{self.code.length}"
            )
        present_indices = [i for i, v in enumerate(received) if v is not None]
        if len(present_indices) < self.code.dimension:
            raise DecodingError(
                f"only {len(present_indices)} symbols present, need at least "
                f"{self.code.dimension} to decode"
            )
        sub_points = [self.code.evaluation_points[i] for i in present_indices]
        sub_values = [int(received[i]) for i in present_indices]
        sub_code = ReedSolomonCode(self.field, sub_points, self.code.dimension)
        sub_decoder = BerlekampWelchDecoder(sub_code)
        sub_result = sub_decoder.decode(sub_values)
        polynomial = sub_result.polynomial
        codeword = self.code.encode_polynomial(polynomial)
        error_positions = tuple(
            present_indices[j] for j in sub_result.error_positions
        )
        return DecodingResult(
            polynomial=polynomial,
            codeword=codeword,
            error_positions=error_positions,
        )

    def decode_erasures_only(self, received: Sequence[int | None]) -> DecodingResult:
        """Decode assuming every present symbol is correct (pure erasures).

        This needs only ``dimension`` surviving symbols and is the cheap path
        used when the fault model is crash-only.
        """
        present = [(i, int(v)) for i, v in enumerate(received) if v is not None]
        if len(present) < self.code.dimension:
            raise DecodingError(
                f"only {len(present)} symbols present, need {self.code.dimension}"
            )
        chosen = present[: self.code.dimension]
        xs = [self.code.evaluation_points[i] for i, _ in chosen]
        ys = [v for _, v in chosen]
        polynomial = lagrange_interpolate(self.field, xs, ys)
        if polynomial.degree >= self.code.dimension:
            raise DecodingError("erasure-only decoding produced an invalid degree")
        codeword = self.code.encode_polynomial(polynomial)
        mismatches = tuple(
            i
            for i, v in enumerate(received)
            if v is not None and int(v) != int(codeword[i])
        )
        if mismatches:
            raise DecodingError(
                "erasure-only decoding found inconsistent present symbols at "
                f"positions {mismatches}; use decode_with_erasures instead"
            )
        return DecodingResult(polynomial=polynomial, codeword=codeword)


def puncture(received: Sequence[int], missing: Sequence[int]) -> list[int | None]:
    """Utility: mark the given positions of a received word as erased."""
    word: list[int | None] = [int(v) for v in received]
    for index in missing:
        word[int(index)] = None
    return word
