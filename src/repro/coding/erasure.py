"""Erasure decoding for Reed–Solomon codes.

In the partially synchronous setting (Section 5.2) honest nodes begin
decoding after receiving only ``N - b`` results: the ``b`` silent nodes are
*erasures* (known-missing positions) while up to ``b`` of the received values
may still be *errors*.  The execution phase therefore needs a decoder that
handles a mix of erasures and errors: we simply restrict the code to the
received positions (a shorter Reed–Solomon code with the same dimension) and
run an error decoder on it.  Successful decoding requires
``2 * errors <= received - dimension``, which reproduces the paper's bound
``3b + 1 <= N - d(K - 1)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DecodingError
from repro.gf.lagrange import lagrange_interpolate
from repro.gf.matrix_cache import cached_interpolation_matrix, cached_vandermonde
from repro.gf.polynomial import Poly
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.reed_solomon import DecodingResult, ReedSolomonCode


class ErasureDecoder:
    """Decoder for received words with erased (missing) positions."""

    def __init__(self, code: ReedSolomonCode) -> None:
        self.code = code
        self.field = code.field

    def decode_with_erasures(
        self, received: Sequence[int | None]
    ) -> DecodingResult:
        """Decode a word where missing positions are marked ``None``.

        The surviving positions form a punctured Reed–Solomon code of the same
        dimension; errors among the survivors are corrected with
        Berlekamp–Welch as long as ``2*errors <= survivors - dimension``.
        """
        if len(received) != self.code.length:
            raise DecodingError(
                f"received word length {len(received)} does not match code length "
                f"{self.code.length}"
            )
        present_indices = [i for i, v in enumerate(received) if v is not None]
        if len(present_indices) < self.code.dimension:
            raise DecodingError(
                f"only {len(present_indices)} symbols present, need at least "
                f"{self.code.dimension} to decode"
            )
        sub_points = [self.code.evaluation_points[i] for i in present_indices]
        sub_values = [int(received[i]) for i in present_indices]
        sub_code = ReedSolomonCode(self.field, sub_points, self.code.dimension)
        sub_decoder = BerlekampWelchDecoder(sub_code)
        try:
            sub_result = sub_decoder.decode(sub_values)
        except DecodingError as exc:
            survivors = len(present_indices)
            budget = survivors - self.code.dimension
            raise DecodingError(
                f"erasure decoding failed: {survivors} survivors of "
                f"{self.code.length} positions at dimension K={self.code.dimension}; "
                f"correctable errors e must satisfy 2e <= survivors - K = {budget} "
                f"(e <= {max(budget, 0) // 2}); underlying failure: {exc}"
            ) from exc
        polynomial = sub_result.polynomial
        codeword = self.code.encode_polynomial(polynomial)
        error_positions = tuple(
            present_indices[j] for j in sub_result.error_positions
        )
        return DecodingResult(
            polynomial=polynomial,
            codeword=codeword,
            error_positions=error_positions,
        )

    def decode_batch(
        self, received_rows: Sequence[Sequence[int | None]]
    ) -> list[DecodingResult]:
        """Decode many erased words at once with cached decode matrices.

        Rows are grouped by erasure pattern; for each pattern the candidate
        polynomial of every row in the group comes from one cached
        interpolation-matrix product over the first ``K`` survivors and is
        verified against all survivors with one cached re-encode product.
        Rows whose survivors are not consistent (errors present) fall back to
        the scalar :meth:`decode_with_erasures`, so every returned result is
        bit-identical to the scalar path — including raising the same
        :class:`DecodingError` for undecodable rows.
        """
        patterns: dict[tuple[int, ...], list[int]] = {}
        rows: list[list[int | None]] = []
        for index, row in enumerate(received_rows):
            row = list(row)
            if len(row) != self.code.length:
                raise DecodingError(
                    f"received word length {len(row)} does not match code length "
                    f"{self.code.length}"
                )
            rows.append(row)
            pattern = tuple(i for i, v in enumerate(row) if v is None)
            patterns.setdefault(pattern, []).append(index)

        results: list[DecodingResult | None] = [None] * len(rows)
        dimension = self.code.dimension
        for pattern, indices in patterns.items():
            present = [i for i in range(self.code.length) if i not in pattern]
            if len(present) < dimension:
                # Reproduce the scalar error (row order does not matter: every
                # row in this group fails identically).
                self.decode_with_erasures(rows[indices[0]])
            pivot = present[:dimension]
            pivot_points = tuple(
                int(self.code.evaluation_points[i]) for i in pivot
            )
            inverse = cached_interpolation_matrix(self.field, pivot_points)
            encoding = cached_vandermonde(
                self.field, self.code.points_key, dimension
            )
            group = self.field.array(
                [[rows[r][i] for i in pivot] for r in indices]
            )
            coeffs = self.field.matmul(group, inverse.T)
            reencoded = self.field.matmul(coeffs, encoding.T)
            received = self.field.array(
                [[rows[r][i] for i in present] for r in indices]
            )
            consistent_rows = np.all(
                reencoded[:, present] == received, axis=1
            )
            for position, row_index in enumerate(indices):
                row = rows[row_index]
                if consistent_rows[position]:
                    results[row_index] = DecodingResult(
                        polynomial=Poly(self.field, coeffs[position]),
                        codeword=reencoded[position].copy(),
                        error_positions=(),
                    )
                else:
                    results[row_index] = self.decode_with_erasures(row)
        return [result for result in results if result is not None]

    def decode_erasures_only(self, received: Sequence[int | None]) -> DecodingResult:
        """Decode assuming every present symbol is correct (pure erasures).

        This needs only ``dimension`` surviving symbols and is the cheap path
        used when the fault model is crash-only.
        """
        present = [(i, int(v)) for i, v in enumerate(received) if v is not None]
        if len(present) < self.code.dimension:
            raise DecodingError(
                f"only {len(present)} symbols present, need {self.code.dimension}"
            )
        chosen = present[: self.code.dimension]
        xs = [self.code.evaluation_points[i] for i, _ in chosen]
        ys = [v for _, v in chosen]
        polynomial = lagrange_interpolate(self.field, xs, ys)
        if polynomial.degree >= self.code.dimension:
            raise DecodingError("erasure-only decoding produced an invalid degree")
        codeword = self.code.encode_polynomial(polynomial)
        mismatches = tuple(
            i
            for i, v in enumerate(received)
            if v is not None and int(v) != int(codeword[i])
        )
        if mismatches:
            raise DecodingError(
                "erasure-only decoding found inconsistent present symbols at "
                f"positions {mismatches}; use decode_with_erasures instead"
            )
        return DecodingResult(polynomial=polynomial, codeword=codeword)


def puncture(received: Sequence[int], missing: Sequence[int]) -> list[int | None]:
    """Utility: mark the given positions of a received word as erased."""
    word: list[int | None] = [int(v) for v in received]
    for index in missing:
        word[int(index)] = None
    return word
