"""Decoding-radius arithmetic shared by CSM configuration and Table 2.

The bounds below are exactly the rows of Table 2 in the paper:

==============================  ==========================================
Phase                           Bound on the number of malicious nodes b
==============================  ==========================================
Input consensus (sync)          ``b + 1 <= N``
Decoding (sync)                 ``2b + 1 <= N - d(K - 1)``
Output delivery (sync)          ``2b + 1 <= N``
Input consensus (partial sync)  ``3b + 1 <= N``
Decoding (partial sync)         ``3b + 1 <= N - d(K - 1)``
Output delivery (partial sync)  ``2b + 1 <= N``
==============================  ==========================================
"""

from __future__ import annotations


def max_errors_correctable(length: int, dimension: int) -> int:
    """Maximum errors a ``[length, dimension]`` RS code corrects: ``floor((n-k)/2)``."""
    if dimension > length:
        raise ValueError(f"dimension {dimension} exceeds length {length}")
    return (length - dimension) // 2


def max_dimension_for_errors(length: int, errors: int) -> int:
    """Largest dimension decodable with the given error count: ``n - 2e``."""
    if errors < 0:
        raise ValueError(f"error count must be non-negative, got {errors}")
    dimension = length - 2 * errors
    return max(dimension, 0)


def required_length(dimension: int, errors: int) -> int:
    """Smallest code length that corrects ``errors`` errors at this dimension."""
    if dimension < 1:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return dimension + 2 * max(errors, 0)


def composite_degree(num_machines: int, transition_degree: int) -> int:
    """Degree of the composite polynomial ``h = f(u(z), v(z))``: ``d * (K - 1)``."""
    if num_machines < 1:
        raise ValueError(f"need at least one state machine, got {num_machines}")
    if transition_degree < 1:
        raise ValueError(
            f"transition degree must be at least 1, got {transition_degree}"
        )
    return transition_degree * (num_machines - 1)


def max_machines_synchronous(num_nodes: int, num_faults: int, degree: int) -> int:
    """Largest ``K`` with successful decoding in a synchronous network.

    From ``2b + 1 <= N - d(K - 1)``:  ``K <= (N - 2b - 1) / d + 1``.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    budget = num_nodes - 2 * num_faults - 1
    if budget < 0:
        return 0
    return budget // degree + 1


def max_machines_partially_synchronous(
    num_nodes: int, num_faults: int, degree: int
) -> int:
    """Largest ``K`` with successful decoding in a partially synchronous network.

    From ``3b + 1 <= N - d(K - 1)``:  ``K <= (N - 3b - 1) / d + 1``.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    budget = num_nodes - 3 * num_faults - 1
    if budget < 0:
        return 0
    return budget // degree + 1


def max_faults_synchronous(num_nodes: int, num_machines: int, degree: int) -> int:
    """Largest ``b`` with successful decoding (sync): ``b <= (N - d(K-1) - 1) / 2``."""
    budget = num_nodes - composite_degree(num_machines, degree) - 1
    if budget < 0:
        return -1
    return budget // 2


def max_faults_partially_synchronous(
    num_nodes: int, num_machines: int, degree: int
) -> int:
    """Largest ``b`` with successful decoding (partial sync): ``b <= (N - d(K-1) - 1) / 3``."""
    budget = num_nodes - composite_degree(num_machines, degree) - 1
    if budget < 0:
        return -1
    return budget // 3
