"""Berlekamp–Welch decoding of Reed–Solomon codes.

This is the decoder the paper names for the execution phase (Section 6.2,
"say, using Berlekamp-Welch algorithm").  Given ``n`` evaluations of an
unknown polynomial ``P`` of degree less than ``k``, up to
``e = floor((n - k) / 2)`` of which are arbitrary errors, the decoder finds
an error-locator polynomial ``E`` (degree ``e``, monic) and a polynomial
``Q = P * E`` (degree < ``k + e``) satisfying ``Q(x_i) = y_i * E(x_i)`` for
every received pair.  The system is linear in the unknown coefficients and is
solved by Gaussian elimination over the field; ``P = Q / E`` whenever a valid
codeword within the radius exists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DecodingError
from repro.gf.field import Field
from repro.gf.linalg import gf_solve
from repro.gf.polynomial import Poly
from repro.coding.reed_solomon import DecodingResult, ReedSolomonCode


class BerlekampWelchDecoder:
    """Berlekamp–Welch decoder bound to a specific Reed–Solomon code."""

    def __init__(self, code: ReedSolomonCode) -> None:
        self.code = code
        self.field: Field = code.field

    def decode(self, received: Sequence[int], num_errors: int | None = None) -> DecodingResult:
        """Decode a received word.

        Parameters
        ----------
        received:
            ``n`` field elements (possibly corrupted evaluations).
        num_errors:
            Assumed number of errors ``e``.  When omitted the decoder tries
            the maximum radius first and falls back to smaller values, which
            handles received words with fewer errors than the worst case.

        Raises
        ------
        DecodingError
            If no polynomial of degree < ``k`` lies within the decoding
            radius of the received word.
        """
        word = self.code.check_received_length(received)
        if num_errors is not None:
            attempt_orders = [int(num_errors)]
        else:
            attempt_orders = list(range(self.code.correction_radius, -1, -1))
        last_error: Exception | None = None
        for e in attempt_orders:
            try:
                poly = self._decode_with_error_count(word, e)
            except DecodingError as exc:
                last_error = exc
                continue
            error_positions = self.code.errors_against(poly, word)
            if len(error_positions) <= self.code.correction_radius:
                return DecodingResult(
                    polynomial=poly,
                    codeword=self.code.encode_polynomial(poly),
                    error_positions=error_positions,
                )
        raise DecodingError(
            "Berlekamp-Welch decoding failed: received word is not within the "
            f"correction radius {self.code.correction_radius} of any codeword"
        ) from last_error

    def _decode_with_error_count(self, word: np.ndarray, e: int) -> Poly:
        """Solve the Berlekamp–Welch linear system assuming exactly ``e`` errors."""
        field = self.field
        n = self.code.length
        k = self.code.dimension
        if e < 0 or 2 * e > n - k:
            raise DecodingError(f"error count {e} outside decodable range for [n={n}, k={k}]")
        q_len = k + e          # unknown coefficients of Q (degree < k + e)
        e_len = e              # unknown coefficients of E below the leading monic term
        num_unknowns = q_len + e_len
        if num_unknowns == 0:
            # Trivial code (k = n = 1, e = 0): the single value is the constant poly.
            return Poly(field, [int(word[0])])
        matrix = np.zeros((n, num_unknowns), dtype=np.int64)
        rhs = np.zeros(n, dtype=np.int64)
        for i, x in enumerate(self.code.evaluation_points):
            y = int(word[i])
            # Q(x_i) terms: + x_i^j for j in [0, q_len)
            acc = 1
            for j in range(q_len):
                matrix[i, j] = acc
                acc = field.mul(acc, x)
            # -y_i * E(x_i) terms for the e unknown low-order coefficients of E
            acc = 1
            for j in range(e_len):
                matrix[i, q_len + j] = field.neg(field.mul(y, acc))
                acc = field.mul(acc, x)
            # Right-hand side: y_i * x_i^e (from the monic leading term of E)
            rhs[i] = field.mul(y, field.pow(x, e))
        try:
            solution = gf_solve(field, matrix, rhs, allow_underdetermined=True)
        except Exception as exc:  # inconsistent system
            raise DecodingError(f"Berlekamp-Welch system unsolvable for e={e}") from exc
        q_poly = Poly(field, solution[:q_len])
        e_coeffs = list(solution[q_len:]) + [1]
        e_poly = Poly(field, e_coeffs)
        quotient, remainder = q_poly.divmod(e_poly)
        if not remainder.is_zero:
            raise DecodingError(
                f"Berlekamp-Welch division left a remainder (e={e}); no codeword "
                "within this error count"
            )
        if quotient.degree >= k:
            raise DecodingError(
                f"decoded polynomial degree {quotient.degree} exceeds dimension {k}"
            )
        return quotient
