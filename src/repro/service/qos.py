"""Service-level traffic policies: backpressure, fair selection, admission.

The paper's coded state machine is a *serving* system — clients keep
submitting commands and the protocol amortises them across coded rounds —
but a plain FIFO pool treats a firehose session and a trickle session the
same, and grows without bound under overload.  :class:`QosPolicy` is the
production shape on top of the session/ticket API:

* **Per-session queue caps** (``max_session_pending``): a session with that
  many unresolved tickets gets a ``THROTTLED`` ticket back from ``submit``
  instead of growing the pool; capacity frees as earlier tickets resolve.
* **Admission control** (``admission_watermark``): once a shard's ingress
  queue depth crosses the watermark, *all* submits to that shard are shed
  until the scheduler drains the backlog — bounded queues under overload.
* **Selection policy** (``selection``): which pending command fills each
  machine slot when :meth:`~repro.service.scheduler.RoundScheduler.plan`
  forms a round.  ``"fifo"`` (the default) keeps today's
  oldest-first-per-machine order bit-identically; ``"weighted_fair"``
  arbitrates across *sessions* with stride scheduling — a weight-2 session
  receives twice the slots of a weight-1 session under saturation — inside
  strict priority lanes (a higher-priority session's commands always win
  the slot over lower-priority ones).

A default-constructed ``QosPolicy()`` is **disabled**: it imposes no cap,
no watermark and FIFO selection, and the service's behaviour — history,
delivery log, ticket outcomes, rng stream — is bit-identical to running
with no policy at all (property-tested).

The policy object is a frozen *configuration*; the stateful selector that
tracks per-session stride passes is built per scheduler via
:meth:`QosPolicy.build_selector`, so every shard of a
:class:`~repro.service.sharding.ShardedCSMService` arbitrates its own
machine slots independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.consensus.command_pool import SubmittedCommand
from repro.exceptions import ConfigurationError

__all__ = [
    "FifoSelection",
    "QosPolicy",
    "SelectionPolicy",
    "WeightedFairSelection",
]


class SelectionPolicy:
    """Chooses which pending command fills a machine slot.

    The round scheduler calls :meth:`select` once per machine slot with the
    machine's pending queue in FIFO order (never empty); the returned entry
    is dequeued into the slot.  Implementations may keep state across calls
    (stride passes), but must be deterministic: the same sequence of
    ``select`` calls must pick the same entries.
    """

    def select(
        self, machine_index: int, candidates: Sequence[SubmittedCommand]
    ) -> SubmittedCommand:
        raise NotImplementedError


class FifoSelection(SelectionPolicy):
    """Oldest submission first — the scheduler's implicit default, explicit.

    ``select`` returns the head of the machine's queue, so a scheduler
    running this policy is bit-identical to one running without any policy
    (property-tested); it exists so the selection hook itself can be
    exercised and composed.
    """

    def select(
        self, machine_index: int, candidates: Sequence[SubmittedCommand]
    ) -> SubmittedCommand:
        return candidates[0]


class WeightedFairSelection(SelectionPolicy):
    """Stride scheduling across sessions, inside strict priority lanes.

    Every session carries a ``weight`` (slots per unit of service) and a
    ``priority`` (lane).  For each machine slot the policy considers the
    FIFO-first pending entry of every session present in the machine's
    queue, restricts to the highest-priority lane among them, and picks the
    session with the smallest stride *pass*; the winner's pass advances by
    ``STRIDE_SCALE / weight``.  Under saturation this converges to slot
    shares proportional to the weights — a weight-2 session receives ~2x
    the slots of a weight-1 session — while FIFO order is preserved
    *within* each session.

    Determinism: ties break on the smaller submission sequence (older
    command first), and a session's first pass is initialised to the
    minimum outstanding pass, so late joiners neither monopolise nor starve.
    """

    #: Pass increment for a weight-1 session; integer strides keep the pass
    #: arithmetic exact (no float drift in the fairness accounting).
    STRIDE_SCALE = 1 << 20

    def __init__(
        self,
        weights: Mapping[str, int] | None = None,
        default_weight: int = 1,
        priorities: Mapping[str, int] | None = None,
        default_priority: int = 0,
    ) -> None:
        self.weights = dict(weights or {})
        self.default_weight = int(default_weight)
        self.priorities = dict(priorities or {})
        self.default_priority = int(default_priority)
        for client, weight in self.weights.items():
            if int(weight) < 1:
                raise ConfigurationError(
                    f"session weight must be >= 1, got {weight} for {client!r}"
                )
        if self.default_weight < 1:
            raise ConfigurationError(
                f"default session weight must be >= 1, got {default_weight}"
            )
        self._pass: dict[str, int] = {}

    def weight_of(self, client_id: str) -> int:
        return int(self.weights.get(client_id, self.default_weight))

    def priority_of(self, client_id: str) -> int:
        return int(self.priorities.get(client_id, self.default_priority))

    def select(
        self, machine_index: int, candidates: Sequence[SubmittedCommand]
    ) -> SubmittedCommand:
        # FIFO-first entry per session: dict insertion order preserves the
        # queue order, so ties resolve to the oldest submission.
        head_by_client: dict[str, SubmittedCommand] = {}
        for entry in candidates:
            head_by_client.setdefault(entry.client_id, entry)
        # Register every *seen* session at the current pass floor.  Pinning
        # the pass on first sight (not first win) is what keeps a session
        # with larger sequence numbers from losing every tie against an
        # incumbent whose pass rises in lockstep with the floor — i.e. from
        # starving outright.
        floor = min(self._pass.values(), default=0)
        for client_id in head_by_client:
            self._pass.setdefault(client_id, floor)
        best_entry: SubmittedCommand | None = None
        best_key: tuple[int, int, int] | None = None
        for client_id, entry in head_by_client.items():
            key = (
                -self.priority_of(client_id),
                self._pass[client_id],
                entry.sequence,
            )
            if best_key is None or key < best_key:
                best_key, best_entry = key, entry
        assert best_entry is not None  # scheduler never passes an empty queue
        client_id = best_entry.client_id
        self._pass[client_id] += self.STRIDE_SCALE // self.weight_of(client_id)
        return best_entry


@dataclass(frozen=True)
class QosPolicy:
    """Traffic-policy configuration for a service (or one of its shards).

    Parameters
    ----------
    max_session_pending:
        Most unresolved (non-terminal) tickets one session may hold; a
        submit beyond the cap returns a ``THROTTLED`` ticket
        (:attr:`~repro.service.tickets.ThrottleReason.SESSION_QUEUE_FULL`).
        ``None`` disables the cap.
    admission_watermark:
        Shard ingress queue depth at which *every* submit to the shard is
        shed (:attr:`~repro.service.tickets.ThrottleReason.ADMISSION_SHED`)
        until the scheduler drains below it.  ``None`` disables shedding.
    selection:
        ``"fifo"`` (default — bit-identical to no policy) or
        ``"weighted_fair"`` (stride scheduling over ``session_weights``
        inside ``session_priorities`` lanes).
    session_weights / default_weight:
        Per-session slot shares for ``"weighted_fair"`` (>= 1 each).
    session_priorities / default_priority:
        Strict lanes for ``"weighted_fair"``: higher priority always wins
        the slot.
    """

    max_session_pending: int | None = None
    admission_watermark: int | None = None
    selection: str = "fifo"
    session_weights: Mapping[str, int] = field(default_factory=dict)
    default_weight: int = 1
    session_priorities: Mapping[str, int] = field(default_factory=dict)
    default_priority: int = 0

    def __post_init__(self) -> None:
        if self.selection not in ("fifo", "weighted_fair"):
            raise ConfigurationError(
                f"selection must be 'fifo' or 'weighted_fair', "
                f"got {self.selection!r}"
            )
        if self.max_session_pending is not None and self.max_session_pending < 1:
            raise ConfigurationError(
                f"max_session_pending must be >= 1 (or None), "
                f"got {self.max_session_pending}"
            )
        if self.admission_watermark is not None and self.admission_watermark < 1:
            raise ConfigurationError(
                f"admission_watermark must be >= 1 (or None), "
                f"got {self.admission_watermark}"
            )
        if self.default_weight < 1:
            raise ConfigurationError(
                f"default_weight must be >= 1, got {self.default_weight}"
            )
        for client, weight in dict(self.session_weights).items():
            if int(weight) < 1:
                raise ConfigurationError(
                    f"session weight must be >= 1, got {weight} for {client!r}"
                )

    @property
    def enabled(self) -> bool:
        """True when any knob departs from the bit-identical defaults."""
        return (
            self.max_session_pending is not None
            or self.admission_watermark is not None
            or self.selection != "fifo"
        )

    def build_selector(self) -> SelectionPolicy | None:
        """The stateful slot selector this policy configures.

        ``None`` for FIFO — the scheduler then takes its original
        ``dequeue_next`` fast path, which is what makes a disabled policy
        bit-identical to no policy at all.  One selector per scheduler:
        stride passes are per-shard state.
        """
        if self.selection == "fifo":
            return None
        return WeightedFairSelection(
            weights=self.session_weights,
            default_weight=self.default_weight,
            priorities=self.session_priorities,
            default_priority=self.default_priority,
        )

    def describe(self) -> dict[str, object]:
        """JSON-friendly view of the configuration (for reports)."""
        return {
            "enabled": self.enabled,
            "max_session_pending": self.max_session_pending,
            "admission_watermark": self.admission_watermark,
            "selection": self.selection,
        }
