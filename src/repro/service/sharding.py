"""Sharded serving: partitioned command pools and per-shard consensus.

A single :class:`~repro.service.service.CSMService` funnels every machine
through one consensus instance and one ingress pool, so throughput stops
scaling once that instance saturates.  The paper's machines are *logically
independent* — machine ``k``'s transition never reads machine ``j``'s state
— so disjoint machine groups can advance through disjoint consensus
instances concurrently.  :class:`ShardedCSMService` is that deployment
shape: the ``K`` machines are partitioned into ``S`` contiguous shards,
each shard owning its *own* :class:`~repro.consensus.command_pool.\
CommandPool`, :class:`~repro.service.scheduler.RoundScheduler` and
:class:`~repro.rounds.RoundProtocol` backend (a coded
:class:`~repro.core.protocol.CSMProtocol` over the shard's node group, or a
replication baseline), behind one façade that preserves the unsharded
``connect() / submit() / drive() / drain()`` client surface:

* ``submit(machine_index, ...)`` routes the *global* machine index to the
  owning shard's local slot; the returned ticket reports the global index.
* Ticket ``sequence`` numbers stay globally unique (and globally ordered by
  submission) — every shard's ingress pool draws from one shared
  :class:`~repro.consensus.command_pool.SequenceAllocator`.
* Each :meth:`ShardedCSMService.drive` tick advances the shards
  independently — all shards per tick by default, or one shard per tick
  under ``tick_mode="round_robin"``.
* The merged reporting view (:attr:`~ShardedCSMService.history`,
  :attr:`~ShardedCSMService.delivered_outputs`,
  :attr:`~ShardedCSMService.failed_rounds`,
  :meth:`~ShardedCSMService.measured_throughput`) presents the union of the
  shard histories under deterministic *global* round indices (completion
  order; shard index, then shard-local order, within a tick), so the
  experiment harnesses read a sharded deployment exactly like an unsharded
  protocol.

With ``S = 1`` the façade is a pass-through over a single
:class:`~repro.service.service.CSMService` and is bit-identical to it on any
submission trace (property-tested).  Failure isolation is structural: a
shard's failed round fails only tickets scheduled on that shard.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.consensus.command_pool import SequenceAllocator
from repro.exceptions import ConfigurationError, ServiceError
from repro.faults import FaultReport, FaultSchedule
from repro.rounds import ProtocolRound, RoundProtocol
from repro.service.qos import QosPolicy
from repro.service.retry import RetryPolicy
from repro.service.scheduler import RoundScheduler
from repro.service.service import ClientSession, CSMService
from repro.service.tickets import CommandTicket, LogicalClock, ThrottleReason

__all__ = [
    "ShardHealth",
    "ShardedClientSession",
    "ShardedCSMService",
    "ShardedRound",
    "partition_machines",
]


class ShardHealth(enum.Enum):
    """Per-shard health the façade tracks from the shards' round outcomes.

    A shard is ``DEGRADED`` after ``degraded_after`` consecutive failed
    rounds; while degraded (and still backlogged) new submissions to its
    machines are shed as ``ADMISSION_SHED`` throttles.  The backlogged
    traffic keeps being driven as probe rounds, and the first verified
    round restores the shard to ``HEALTHY``.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"


def partition_machines(num_machines: int, num_shards: int) -> list[int]:
    """Balanced contiguous partition sizes: ``K`` machines into ``S`` shards.

    The first ``K mod S`` shards take one extra machine, so sizes differ by
    at most one and shard boundaries are deterministic.
    """
    if num_shards < 1:
        raise ConfigurationError(f"need at least one shard, got {num_shards}")
    if num_machines < num_shards:
        raise ConfigurationError(
            f"cannot split {num_machines} machines into {num_shards} shards "
            "(every shard needs at least one machine)"
        )
    base, extra = divmod(num_machines, num_shards)
    return [base + (1 if s < extra else 0) for s in range(num_shards)]


@dataclass
class ShardedRound(ProtocolRound):
    """A shard's round re-indexed into the façade's global history.

    ``round_index`` is the *global* index (position in the merged history);
    ``shard_index`` / ``shard_round_index`` locate the underlying record in
    its shard, and ``shard_num_machines`` carries the shard's ``K_s`` so the
    merged throughput report charges each round at its own width.
    """

    shard_index: int = 0
    shard_round_index: int = 0
    shard_num_machines: int = 0


class ShardedClientSession(ClientSession):
    """A client connected to the sharded façade: one session, all shards.

    Identical to :class:`~repro.service.service.ClientSession` — ``submit``
    only needs the service's ``_submit``, which the façade provides with
    *global* machine indices — but named so a session's type says which
    deployment shape it talks to.
    """


class ShardedCSMService:
    """One client surface over ``S`` independently-advancing shards.

    Parameters
    ----------
    backends:
        One :class:`~repro.rounds.RoundProtocol` per shard, in shard order.
        Shard ``s`` owns the contiguous global machine range starting at the
        sum of the earlier shards' ``num_machines``.
    max_batch_rounds / min_fill / max_wait_ticks:
        Per-shard scheduling knobs, forwarded to each shard's
        :class:`~repro.service.service.CSMService` (``min_fill`` is clamped
        to the shard's machine count).
    tick_mode:
        ``"all"`` (default) drives every shard on each :meth:`drive` tick;
        ``"round_robin"`` drives one shard per tick, cycling in shard order.
    pipeline:
        Forwarded to each shard's :class:`~repro.service.service.CSMService`:
        every shard tick then runs through its backend's speculative
        pipelined path (``run_rounds_pipelined``), with per-shard histories
        bit-identical to the batched drive.
    qos:
        Optional :class:`~repro.service.qos.QosPolicy`, forwarded to every
        shard.  ``admission_watermark`` and the selection policy apply
        per shard (each shard has its own ingress pool and scheduler);
        ``max_session_pending`` bounds a session's unresolved tickets
        *across* shards — the façade checks the global count before routing,
        so a session cannot multiply its cap by spreading over shards.
    retry:
        Optional :class:`~repro.service.retry.RetryPolicy`, forwarded to
        every shard (each shard retries its own failed rounds).
    faults:
        Optional fault plane: a single :class:`~repro.faults.FaultSchedule`
        applied to *every* shard (shard backends share the node naming, so
        one schedule models correlated faults across shards), or a mapping
        ``{shard_index: FaultSchedule}`` targeting specific shards.
    degraded_after:
        Consecutive failed rounds before a shard is marked
        :attr:`ShardHealth.DEGRADED` and starts shedding new admissions.
    """

    def __init__(
        self,
        backends: Sequence[RoundProtocol],
        max_batch_rounds: int = 8,
        min_fill: int = 1,
        max_wait_ticks: int | None = RoundScheduler.DEFAULT_MAX_WAIT_TICKS,
        tick_mode: str = "all",
        pipeline: bool = False,
        qos: QosPolicy | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultSchedule | Mapping[int, FaultSchedule] | None = None,
        degraded_after: int = 3,
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ConfigurationError("need at least one shard backend")
        if tick_mode not in ("all", "round_robin"):
            raise ConfigurationError(
                f"tick_mode must be 'all' or 'round_robin', got {tick_mode!r}"
            )
        for backend in backends:
            if not isinstance(backend, RoundProtocol):
                raise ConfigurationError(
                    f"shard backend {type(backend).__name__} does not "
                    "implement RoundProtocol"
                )
        if qos is not None and not isinstance(qos, QosPolicy):
            raise ConfigurationError(
                f"qos {type(qos).__name__} is not a QosPolicy"
            )
        if degraded_after < 1:
            raise ConfigurationError(
                f"degraded_after must be at least 1, got {degraded_after}"
            )
        if faults is None or isinstance(faults, FaultSchedule):
            shard_faults: dict[int, FaultSchedule] = (
                {} if faults is None else {s: faults for s in range(len(backends))}
            )
        else:
            shard_faults = {int(s): schedule for s, schedule in faults.items()}
            for shard_index in shard_faults:
                if not 0 <= shard_index < len(backends):
                    raise ConfigurationError(
                        f"fault schedule targets shard {shard_index}, but "
                        f"there are only {len(backends)} shards"
                    )
        self.tick_mode = tick_mode
        self.pipeline = bool(pipeline)
        self.qos = qos
        self.retry = retry
        self.degraded_after = int(degraded_after)
        self.sequence_source = SequenceAllocator()
        # One logical clock across the shards (like the sequence allocator):
        # the façade advances it once per façade tick, so per-ticket latencies
        # are measured in façade ticks and comparable across shards.
        self.clock = LogicalClock()
        self.shards: list[CSMService] = [
            CSMService(
                backend,
                max_batch_rounds=max_batch_rounds,
                # A façade-level min_fill wider than a small shard would make
                # that shard unschedulable; clamp to the shard's width.
                min_fill=min(int(min_fill), backend.num_machines),
                max_wait_ticks=max_wait_ticks,
                sequence_source=self.sequence_source,
                pipeline=self.pipeline,
                qos=qos,
                clock=self.clock,
                retry=retry,
                faults=shard_faults.get(shard_index),
            )
            for shard_index, backend in enumerate(backends)
        ]
        # Global machine index -> (shard, local index): shard s owns the
        # contiguous range [offset_s, offset_s + K_s).
        self._offsets: list[int] = []
        offset = 0
        for shard in self.shards:
            self._offsets.append(offset)
            offset += shard.num_machines
        self._num_machines = offset
        self._sessions: dict[str, ShardedClientSession] = {}
        self._history: list[ShardedRound] = []
        self._next_shard = 0  # round-robin cursor
        self._consecutive_failures = [0] * len(self.shards)
        self._health = [ShardHealth.HEALTHY] * len(self.shards)
        self._health_timeline: list[dict[str, object]] = []

    @classmethod
    def from_partition(
        cls,
        num_machines: int,
        num_shards: int,
        backend_factory: Callable[[int, int], RoundProtocol],
        **kwargs,
    ) -> "ShardedCSMService":
        """Build a service whose shards partition ``num_machines`` evenly.

        ``backend_factory(shard_index, shard_machines)`` must return a
        backend hosting exactly ``shard_machines`` machines; a factory that
        returns a different width is a configuration error.
        """
        sizes = partition_machines(num_machines, num_shards)
        backends = []
        for shard_index, size in enumerate(sizes):
            backend = backend_factory(shard_index, size)
            if backend.num_machines != size:
                raise ConfigurationError(
                    f"shard {shard_index} backend hosts {backend.num_machines} "
                    f"machines, partition requires {size}"
                )
            backends.append(backend)
        return cls(backends, **kwargs)

    # -- client surface -----------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """Total machines across all shards (the global index space)."""
        return self._num_machines

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, machine_index: int) -> tuple[int, int]:
        """Map a global machine index to ``(shard_index, local_index)``."""
        index = int(machine_index)
        if not 0 <= index < self._num_machines:
            raise ConfigurationError(
                f"machine index {index} out of range for {self._num_machines} "
                "machines"
            )
        for shard_index in range(len(self.shards) - 1, -1, -1):
            if index >= self._offsets[shard_index]:
                return shard_index, index - self._offsets[shard_index]
        raise AssertionError("unreachable: offsets start at 0")

    def connect(self, client_id: str) -> ShardedClientSession:
        """Open (or re-join) the session for ``client_id``."""
        client_id = str(client_id)
        session = self._sessions.get(client_id)
        if session is None:
            session = ShardedClientSession(self, client_id)
            self._sessions[client_id] = session
        return session

    def tickets(self) -> list[CommandTicket]:
        """Every ticket across all shards, in global submission order."""
        merged = [
            ticket for shard in self.shards for ticket in shard.tickets()
        ]
        merged.sort(key=lambda ticket: ticket.sequence)
        return merged

    def pending_commands(self) -> int:
        """Commands queued (any shard) but not yet scheduled into a round."""
        return sum(shard.pending_commands() for shard in self.shards)

    @property
    def command_dim(self) -> int:
        """Width of one command row (identical across shard machines)."""
        return self.shards[0].command_dim

    def open_tickets(self, client_id: str) -> int:
        """A session's unresolved tickets summed across every shard —
        the quantity the façade's global per-session queue cap bounds."""
        return sum(shard.open_tickets(client_id) for shard in self.shards)

    def qos_report(self) -> dict[str, object]:
        """Merged QoS snapshot: façade totals plus the per-shard reports.

        ``shards[s]`` is shard ``s``'s own
        :meth:`~repro.service.service.CSMService.qos_report` (its pending
        depth is what that shard's admission watermark watches); the
        top-level counters are the sums the client surface observes.
        """
        shard_reports = [shard.qos_report() for shard in self.shards]
        policy = self.qos.describe() if self.qos is not None else QosPolicy().describe()
        retry = (
            self.retry.describe() if self.retry is not None else RetryPolicy().describe()
        )
        return {
            "policy": policy,
            "pending": sum(int(r["pending"]) for r in shard_reports),
            "open_tickets": sum(int(r["open_tickets"]) for r in shard_reports),
            "throttled_session": sum(
                int(r["throttled_session"]) for r in shard_reports
            ),
            "throttled_admission": sum(
                int(r["throttled_admission"]) for r in shard_reports
            ),
            "tick": self.clock.now,
            "shards": shard_reports,
            "retry": retry,
            "retried_commands": sum(
                int(r["retried_commands"]) for r in shard_reports
            ),
            "recovered_tickets": sum(
                int(r["recovered_tickets"]) for r in shard_reports
            ),
            "exhausted_tickets": sum(
                int(r["exhausted_tickets"]) for r in shard_reports
            ),
            "retry_backlog": sum(int(r["retry_backlog"]) for r in shard_reports),
            "shard_health": [state.value for state in self._health],
            "health_timeline": list(self._health_timeline),
            "faults": self.fault_report().to_dict(),
        }

    def fault_report(self) -> FaultReport:
        """The per-shard fault reports merged into one façade-level record."""
        return FaultReport.merge(shard.fault_report() for shard in self.shards)

    def shard_health(self, shard_index: int) -> ShardHealth:
        """Current health of one shard (see :class:`ShardHealth`)."""
        return self._health[int(shard_index)]

    # -- scheduling / driving -----------------------------------------------------------
    def drive(self, flush: bool = False) -> list[ProtocolRound]:
        """One façade tick: advance the shards and merge their new rounds.

        Under ``tick_mode="all"`` every shard plans and runs its own batches
        this tick (shards with nothing to schedule contribute nothing);
        under ``"round_robin"`` exactly one shard is driven and the cursor
        advances.  Returns the tick's new rounds as :class:`ShardedRound`
        records carrying their global indices, in the order they were
        appended to the merged history.  Every façade tick advances the
        shared logical clock exactly once (the shards never advance it —
        they don't own it), so latencies are measured in façade ticks.
        """
        self.clock.advance()
        if self.tick_mode == "round_robin":
            shard_order = [self._next_shard]
            self._next_shard = (self._next_shard + 1) % len(self.shards)
        else:
            shard_order = range(len(self.shards))
        driven: list[ProtocolRound] = []
        for shard_index in shard_order:
            records = self.shards[shard_index].drive(flush=flush)
            self._observe_shard(shard_index, records)
            driven.extend(self._merge_records(shard_index, records))
        return driven

    def drain(self) -> list[ProtocolRound]:
        """Drive until every queued command and retry backlog has resolved.

        Under ``round_robin`` a tick may land on an idle shard while
        another shard still has traffic, so "no progress" only means a
        stall once a *full cycle* of ticks has drained nothing.  Ticks that
        only wait out a retry backoff are always progress — the shared
        clock advances toward the backlog's (finite) ready ticks.
        """
        records: list[ProtocolRound] = []
        stalled = 0
        stall_limit = len(self.shards) if self.tick_mode == "round_robin" else 1
        while self.pending_commands() or self._retry_backlog():
            before = self.pending_commands()
            records.extend(self.drive(flush=True))
            if before and self.pending_commands() >= before:
                stalled += 1
                if stalled >= stall_limit:  # pragma: no cover - defensive
                    raise ServiceError("sharded drain made no progress")
            else:
                stalled = 0
        return records

    def _retry_backlog(self) -> int:
        """Tickets across all shards waiting out a retry backoff."""
        return sum(len(shard._retry_queue) for shard in self.shards)

    def _observe_shard(
        self, shard_index: int, records: Sequence[ProtocolRound]
    ) -> None:
        """Update the shard's health from its newly completed rounds."""
        for record in records:
            if record.correct:
                self._consecutive_failures[shard_index] = 0
                if self._health[shard_index] is ShardHealth.DEGRADED:
                    self._health[shard_index] = ShardHealth.HEALTHY
                    self._health_timeline.append(
                        {
                            "tick": self.clock.now,
                            "shard": shard_index,
                            "state": ShardHealth.HEALTHY.value,
                        }
                    )
            else:
                self._consecutive_failures[shard_index] += 1
                if (
                    self._health[shard_index] is ShardHealth.HEALTHY
                    and self._consecutive_failures[shard_index]
                    >= self.degraded_after
                ):
                    self._health[shard_index] = ShardHealth.DEGRADED
                    self._health_timeline.append(
                        {
                            "tick": self.clock.now,
                            "shard": shard_index,
                            "state": ShardHealth.DEGRADED.value,
                        }
                    )

    def _merge_records(
        self, shard_index: int, records: Sequence[ProtocolRound]
    ) -> list[ShardedRound]:
        """Append a shard's new rounds to the global history, in order."""
        shard_k = self.shards[shard_index].num_machines
        merged = []
        for record in records:
            merged.append(
                ShardedRound(
                    round_index=len(self._history),
                    commands=record.commands,
                    clients=list(record.clients),
                    result=record.result,
                    consensus_views=record.consensus_views,
                    shard_index=shard_index,
                    shard_round_index=record.round_index,
                    shard_num_machines=shard_k,
                )
            )
            self._history.append(merged[-1])
        return merged

    # -- merged reporting ---------------------------------------------------------------
    @property
    def history(self) -> list[ShardedRound]:
        """The union of the shard histories under global round indices."""
        return list(self._history)

    @property
    def all_rounds_correct(self) -> bool:
        return all(record.correct for record in self._history)

    @property
    def failed_rounds(self) -> int:
        """Completed rounds (any shard) whose verification failed."""
        return sum(1 for record in self._history if not record.correct)

    @property
    def consensus_fast_path_disabled(self) -> int:
        """Slow-path consensus rounds summed across every shard backend."""
        return sum(shard.consensus_fast_path_disabled for shard in self.shards)

    @property
    def delivered_outputs(self) -> dict[str, list[np.ndarray]]:
        """Per-client delivered outputs, in global round order.

        Rebuilt from the merged history so the ordering matches the global
        round indices (the per-shard ``delivered_outputs`` dicts interleave
        nondeterministically once shards advance at different rates).
        """
        merged: dict[str, list[np.ndarray]] = {}
        for record in self._history:
            if record.correct:
                for k, client_id in enumerate(record.clients):
                    merged.setdefault(client_id, []).append(
                        record.result.outputs[k].copy()
                    )
        return merged

    @property
    def failed_deliveries(self) -> dict[str, list[int]]:
        """Per-client failed rounds, keyed by *global* round indices."""
        merged: dict[str, list[int]] = {}
        for record in self._history:
            if not record.correct:
                for client_id in record.clients:
                    merged.setdefault(client_id, []).append(record.round_index)
        return merged

    def measured_throughput(self) -> float:
        """Merged commands-per-op mean over the global history.

        Same semantics as :meth:`repro.rounds.RoundProtocol.\
measured_throughput` — failed rounds contribute ``0.0``, degenerate
        zero-operation verified rounds are excluded — except each round is
        charged at its own shard's width ``K_s``, since that is how many
        commands the round carried.
        """
        if not self._history:
            return 0.0
        throughputs: list[float] = []
        for record in self._history:
            if not record.correct:
                throughputs.append(0.0)
                continue
            value = record.result.throughput(record.shard_num_machines)
            if np.isfinite(value):
                throughputs.append(value)
        return float(np.mean(throughputs)) if throughputs else 0.0

    # -- internals ----------------------------------------------------------------------
    def _submit(self, client_id: str, machine_index: int, command) -> CommandTicket:
        shard_index, local_index = self.shard_of(machine_index)
        shard = self.shards[shard_index]
        # The per-session queue cap is global: a session's unresolved tickets
        # are summed across shards before routing, so spreading submissions
        # over shards cannot multiply the cap.  (The shard re-checks its own
        # local count, which is <= the global sum, so it never double-fires.)
        if self.qos is not None and self.qos.max_session_pending is not None:
            cap = self.qos.max_session_pending
            if self.open_tickets(client_id) >= cap:
                row = shard._canonical_command(command)
                ticket = shard._make_throttled(
                    client_id,
                    local_index,
                    row,
                    f"session {client_id!r} already holds {cap} unresolved "
                    "tickets across shards (per-session queue cap); retry "
                    "after they resolve",
                    ThrottleReason.SESSION_QUEUE_FULL,
                )
                ticket.machine_index = int(machine_index)
                return ticket
        # A degraded shard that still has a backlog (pending pool or retry
        # queue — its probe traffic) sheds new admissions; once the backlog
        # is gone, new submissions are admitted as probes so a verified
        # round can restore the shard (no permanent degradation).
        if self._health[shard_index] is ShardHealth.DEGRADED and (
            shard.pool.total_pending() or shard._retry_queue
        ):
            row = shard._canonical_command(command)
            ticket = shard._make_throttled(
                client_id,
                local_index,
                row,
                f"shard {shard_index} is degraded "
                f"({self._consecutive_failures[shard_index]} consecutive "
                "failed rounds) and is shedding load while its backlog "
                "probes for recovery",
                ThrottleReason.ADMISSION_SHED,
            )
            ticket.machine_index = int(machine_index)
            return ticket
        ticket = shard._submit(client_id, local_index, command)
        # The shard pool sees its local slot; the client-facing ticket
        # reports the global machine index it submitted against.
        ticket.machine_index = int(machine_index)
        return ticket
