"""Deterministic open-loop workload generation for the serving layer.

The scaling experiments drive the service with *closed-loop* traffic — every
tick submits exactly what the harness decides, in lockstep with the service —
which can never exhibit the phenomena QoS policies exist for: queues growing
faster than rounds drain them, sessions competing for slots, overload.  This
module is the open-loop counterpart: arrivals are sampled from a stochastic
process *independent of service state* (the defining property of an open
loop), submitted into sessions, and the service is driven one scheduler tick
per arrival tick, whether or not it kept up.

Everything is deterministic in the replay sense that the rest of the
repository guarantees: arrival counts and command payloads are drawn from
two child streams forked off one caller-supplied generator via
:func:`repro.rng.derived_stream`, latency is measured in *logical* scheduler
ticks (no wall-clock read anywhere), and the same seed replays the same
submission trace, the same throttle decisions and the same percentiles
bit-for-bit on any machine.

* :class:`PoissonProcess` — i.i.d. Poisson(``rate``) arrivals per session
  per tick, the classic open-loop model.
* :class:`BurstyProcess` — per-session two-state (on/off) Markov-modulated
  Poisson arrivals: bursts of ``on_rate`` traffic separated by quiet
  periods, the workload that exercises admission control and queue caps.
* :class:`OpenLoopDriver` — owns the sessions, the tick loop and the
  round-robin machine targeting; :meth:`OpenLoopDriver.run` returns a
  :class:`TrafficReport` with p50/p90/p99 commit/execute latency (in
  ticks), per-session delivery counts (the fairness evidence) and the
  service's merged QoS counters (the backpressure evidence).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import default_stream, derived_stream
from repro.service.tickets import CommandTicket, TicketState

__all__ = [
    "ArrivalProcess",
    "BurstyProcess",
    "OpenLoopDriver",
    "PoissonProcess",
    "TrafficReport",
    "latency_percentiles",
]


def latency_percentiles(
    values: Iterable[int], percentiles: Sequence[int] = (50, 90, 99)
) -> dict[str, float | None]:
    """Nearest-rank percentiles of a latency sample, keyed ``"p50"`` etc.

    Nearest-rank (the value at index ``ceil(p/100 * n) - 1`` of the sorted
    sample) rather than interpolation: every reported percentile is a
    latency that actually occurred, and the computation is integer-exact —
    no float interpolation to drift across numpy versions.  An empty sample
    reports ``None`` for every percentile (JSON ``null``), never a fake 0.
    """
    ordered = sorted(int(v) for v in values)
    out: dict[str, float | None] = {}
    for p in percentiles:
        if not 0 < int(p) <= 100:
            raise ConfigurationError(f"percentile must be in (0, 100], got {p}")
        if not ordered:
            out[f"p{int(p)}"] = None
        else:
            rank = max(1, math.ceil(int(p) / 100 * len(ordered)))
            out[f"p{int(p)}"] = float(ordered[rank - 1])
    return out


class ArrivalProcess:
    """Per-tick arrival counts for ``num_sessions`` open-loop sessions.

    :meth:`sample` returns an integer array of shape ``(num_sessions,)`` —
    how many commands each session submits this tick — drawing only from
    the generator it is handed (processes own no streams; the driver does).
    Implementations may keep per-session state across ticks (burst phases)
    but must be deterministic given the generator's stream.
    """

    def sample(self, rng: np.random.Generator, num_sessions: int) -> np.ndarray:
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """I.i.d. Poisson arrivals: each session submits Poisson(``rate``)
    commands per tick, independent across sessions and ticks.

    ``rate`` is the per-session mean; the aggregate offered load is
    ``rate * num_sessions`` commands per tick, to be compared against the
    service's drain capacity of (roughly) ``max_batch_rounds * K`` slots
    per tick when judging whether a configuration saturates.
    """

    def __init__(self, rate: float) -> None:
        if not rate > 0:
            raise ConfigurationError(
                f"Poisson arrival rate must be positive, got {rate}"
            )
        self.rate = float(rate)

    def sample(self, rng: np.random.Generator, num_sessions: int) -> np.ndarray:
        return rng.poisson(self.rate, size=int(num_sessions))


class BurstyProcess(ArrivalProcess):
    """Markov-modulated Poisson arrivals: per-session on/off bursts.

    Each session carries a two-state phase.  While *on* it submits
    Poisson(``on_rate``) commands per tick, while *off* Poisson(``off_rate``)
    (default 0 — silent).  After each tick's draw the phase flips with
    probability ``p_on_off`` (on -> off) or ``p_off_on`` (off -> on),
    independently per session, so expected burst length is ``1/p_on_off``
    ticks.  All sessions start *off* unless ``start_on`` — a synchronised
    off start makes the first burst arrival itself part of the replayable
    randomness rather than a modelling choice.

    The phase vector is sized on first :meth:`sample` and pinned: one
    process instance drives one session population (a second driver must
    build its own process).
    """

    def __init__(
        self,
        on_rate: float,
        off_rate: float = 0.0,
        p_on_off: float = 0.2,
        p_off_on: float = 0.2,
        start_on: bool = False,
    ) -> None:
        if not on_rate > 0:
            raise ConfigurationError(
                f"bursty on_rate must be positive, got {on_rate}"
            )
        if off_rate < 0:
            raise ConfigurationError(
                f"bursty off_rate must be >= 0, got {off_rate}"
            )
        for name, prob in (("p_on_off", p_on_off), ("p_off_on", p_off_on)):
            if not 0 < prob <= 1:
                raise ConfigurationError(
                    f"{name} must be in (0, 1], got {prob}"
                )
        self.on_rate = float(on_rate)
        self.off_rate = float(off_rate)
        self.p_on_off = float(p_on_off)
        self.p_off_on = float(p_off_on)
        self.start_on = bool(start_on)
        self._on: np.ndarray | None = None

    def sample(self, rng: np.random.Generator, num_sessions: int) -> np.ndarray:
        num_sessions = int(num_sessions)
        if self._on is None:
            self._on = np.full(num_sessions, self.start_on, dtype=bool)
        elif self._on.shape[0] != num_sessions:
            raise ConfigurationError(
                f"bursty process was started with {self._on.shape[0]} "
                f"sessions, cannot switch to {num_sessions}"
            )
        rates = np.where(self._on, self.on_rate, self.off_rate)
        arrivals = rng.poisson(rates)
        flips = rng.random(num_sessions)
        flip = np.where(self._on, flips < self.p_on_off, flips < self.p_off_on)
        self._on = self._on ^ flip
        return arrivals


@dataclass
class TrafficReport:
    """What an open-loop run did to the service, in replayable numbers.

    Latencies are logical scheduler ticks (submit tick to commit/delivery
    tick), summarised as nearest-rank percentiles; ``None`` percentiles mean
    no ticket reached that edge.  ``max_pending`` is the deepest the ingress
    queues ever got (sampled after each tick's submissions, before its
    drive) — the number a bounded-queue claim is checked against.
    ``executed_by_session`` is the per-session delivered-command count, the
    direct evidence for weighted-fair slot shares.
    """

    ticks: int
    num_sessions: int
    submitted: int
    executed: int
    failed: int
    pending: int
    throttled: int
    throttled_session: int
    throttled_admission: int
    max_pending: int
    commit_latency: dict[str, float | None]
    execute_latency: dict[str, float | None]
    executed_by_session: dict[str, int]
    qos: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly flat view (for experiment rows and bench artifacts)."""
        return {
            "ticks": self.ticks,
            "num_sessions": self.num_sessions,
            "submitted": self.submitted,
            "executed": self.executed,
            "failed": self.failed,
            "pending": self.pending,
            "throttled": self.throttled,
            "throttled_session": self.throttled_session,
            "throttled_admission": self.throttled_admission,
            "max_pending": self.max_pending,
            "commit_latency": dict(self.commit_latency),
            "execute_latency": dict(self.execute_latency),
            "executed_by_session": dict(self.executed_by_session),
            "qos": dict(self.qos),
        }


class OpenLoopDriver:
    """Drives open-loop traffic from ``num_sessions`` sessions into a service.

    Works against both :class:`~repro.service.service.CSMService` and the
    sharded façade (anything with the ``connect / drive / drain /
    num_machines / command_dim / pending_commands / qos_report`` surface).

    Each :meth:`step` samples one tick of arrivals from the process,
    submits them (session ``s`` targets machines round-robin starting at
    ``s % K``, so hundreds of sessions spread evenly over the machines),
    then drives the service exactly one scheduler tick — whether or not the
    backlog grew.  Commands are ``integers(command_low, command_high)``
    rows drawn from a dedicated child stream, matching the experiment
    harnesses' command distribution.

    Determinism: the constructor forks exactly two child streams off the
    caller's generator (arrivals first, then commands), so a run is a pure
    function of ``(service configuration, process, num_sessions, seed)``.
    """

    def __init__(
        self,
        service,
        process: ArrivalProcess,
        num_sessions: int,
        rng: np.random.Generator | None = None,
        session_prefix: str = "traffic",
        command_low: int = 1,
        command_high: int = 1000,
    ) -> None:
        if num_sessions < 1:
            raise ConfigurationError(
                f"need at least one session, got {num_sessions}"
            )
        if not isinstance(process, ArrivalProcess):
            raise ConfigurationError(
                f"process {type(process).__name__} is not an ArrivalProcess"
            )
        if not command_low < command_high:
            raise ConfigurationError(
                f"command value range [{command_low}, {command_high}) is empty"
            )
        self.service = service
        self.process = process
        self.num_sessions = int(num_sessions)
        self.command_low = int(command_low)
        self.command_high = int(command_high)
        base = rng if rng is not None else default_stream()
        self._arrival_rng = derived_stream(base)
        self._command_rng = derived_stream(base)
        self.sessions = [
            service.connect(f"{session_prefix}:{s}")
            for s in range(self.num_sessions)
        ]
        self._cursors = [
            s % service.num_machines for s in range(self.num_sessions)
        ]
        self.ticks_run = 0
        self.max_pending = 0

    def step(self) -> None:
        """One open-loop tick: sample arrivals, submit, drive once."""
        counts = self.process.sample(self._arrival_rng, self.num_sessions)
        dim = self.service.command_dim
        for s in range(self.num_sessions):
            for _ in range(int(counts[s])):
                machine = self._cursors[s]
                self._cursors[s] = (machine + 1) % self.service.num_machines
                command = self._command_rng.integers(
                    self.command_low, self.command_high, size=dim
                )
                self.sessions[s].submit(machine, command)
        # Peak backlog is visible here — after the tick's submissions, before
        # the scheduler drains any of them.
        self.max_pending = max(self.max_pending, self.service.pending_commands())
        self.service.drive()
        self.ticks_run += 1

    def run(self, ticks: int, drain: bool = True) -> TrafficReport:
        """Run ``ticks`` open-loop ticks (then drain by default) and report.

        ``drain=False`` leaves the backlog in place — the shape overload
        tests want, where ``report()`` counts still-pending tickets.
        """
        if ticks < 1:
            raise ConfigurationError(f"need at least one tick, got {ticks}")
        for _ in range(int(ticks)):
            self.step()
        if drain:
            self.service.drain()
        return self.report()

    def _tickets(self) -> list[CommandTicket]:
        return [
            ticket for session in self.sessions for ticket in session.tickets
        ]

    def executed_by_session(self) -> dict[str, int]:
        """Delivered-command count per session (fairness evidence)."""
        return {
            session.client_id: sum(
                1
                for ticket in session.tickets
                if ticket.state is TicketState.EXECUTED
            )
            for session in self.sessions
        }

    def report(self) -> TrafficReport:
        """Snapshot the run into a :class:`TrafficReport` (pure read)."""
        tickets = self._tickets()
        executed = [t for t in tickets if t.state is TicketState.EXECUTED]
        throttled = [t for t in tickets if t.state is TicketState.THROTTLED]
        failed = [t for t in tickets if t.state is TicketState.FAILED]
        commit_samples = [
            t.commit_latency for t in tickets if t.commit_latency is not None
        ]
        execute_samples = [
            t.execute_latency for t in executed if t.execute_latency is not None
        ]
        qos: Mapping[str, object] = self.service.qos_report()
        return TrafficReport(
            ticks=self.ticks_run,
            num_sessions=self.num_sessions,
            submitted=len(tickets),
            executed=len(executed),
            failed=len(failed),
            pending=sum(1 for t in tickets if not t.done),
            throttled=len(throttled),
            throttled_session=int(qos["throttled_session"]),  # type: ignore[call-overload]
            throttled_admission=int(qos["throttled_admission"]),  # type: ignore[call-overload]
            max_pending=self.max_pending,
            commit_latency=latency_percentiles(commit_samples),
            execute_latency=latency_percentiles(execute_samples),
            executed_by_session=self.executed_by_session(),
            qos=dict(qos),
        )
