"""The client-session service: the canonical client-facing CSM API.

:class:`CSMService` wraps any round-driving backend — the coded
:class:`~repro.core.protocol.CSMProtocol` or a replication baseline behind
:class:`~repro.replication.protocol.ReplicationProtocol` — via the shared
:class:`~repro.rounds.RoundProtocol` interface, and accepts arbitrary ragged
command streams instead of pre-grouped lockstep rounds:

>>> service = CSMService(protocol)                       # doctest: +SKIP
>>> session = service.connect("alice")                   # doctest: +SKIP
>>> ticket = session.submit(2, [100, 50])                # doctest: +SKIP
>>> service.drain()                                      # doctest: +SKIP
>>> ticket.state, ticket.result()                        # doctest: +SKIP

Commands land in an ingress :class:`~repro.consensus.command_pool.CommandPool`
as :class:`~repro.service.tickets.CommandTicket`\\ s; the
:class:`~repro.service.scheduler.RoundScheduler` drains them into adaptive
dense batches (idle machines padded with the machine's no-op command) and
drives the backend's batched round pipeline.  Outputs come back through the
ticket lifecycle — ``PENDING -> COMMITTED -> EXECUTED | FAILED`` — so a
client observes exactly which of *its* commands executed with which output,
rather than digging through a dict keyed by reused ``client:k`` labels.

A :class:`~repro.service.qos.QosPolicy` layers production traffic policies on
top: per-session queue caps and shard admission control turn overload into
``THROTTLED`` tickets instead of unbounded pool growth, and a weighted-fair
selection policy arbitrates machine slots across sessions.  With the policy
absent (or default-constructed) every run is bit-identical to the plain
service.  Every drive tick advances a :class:`~repro.service.tickets.\
LogicalClock`, and every ticket lifecycle edge is stamped with the tick it
happened on — the substrate for commit/execute latency percentiles under
the open-loop traffic harness (:mod:`repro.service.traffic`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.consensus.command_pool import CommandPool, SequenceAllocator
from repro.exceptions import ConfigurationError, ConsensusError, ServiceError
from repro.faults import FaultInjector, FaultReport, FaultSchedule
from repro.rounds import ProtocolRound, RoundProtocol
from repro.service.qos import QosPolicy
from repro.service.retry import RetryPolicy
from repro.service.scheduler import RoundScheduler, ScheduledRound
from repro.service.tickets import (
    CommandTicket,
    FailureReason,
    LogicalClock,
    ThrottleReason,
    TicketState,
)


class ClientSession:
    """A connected client: submits commands, tracks its own tickets."""

    def __init__(self, service: "CSMService", client_id: str) -> None:
        self.service = service
        self.client_id = client_id
        self.tickets: list[CommandTicket] = []

    def submit(self, machine_index: int, command) -> CommandTicket:
        """Queue one command for ``machine_index``; returns its ticket.

        Under an active :class:`~repro.service.qos.QosPolicy` the ticket may
        come back already ``THROTTLED`` (session cap or admission shed) —
        check :attr:`~repro.service.tickets.CommandTicket.state` before
        relying on eventual execution.
        """
        ticket = self.service._submit(self.client_id, machine_index, command)
        self.tickets.append(ticket)
        return ticket

    def outputs(self) -> list[np.ndarray]:
        """Delivered outputs (copies) of executed tickets, in order."""
        return [
            ticket.result()
            for ticket in self.tickets
            if ticket.state is TicketState.EXECUTED
        ]

    def pending(self) -> list[CommandTicket]:
        """Tickets not yet in a terminal state."""
        return [ticket for ticket in self.tickets if not ticket.done]

    def throttled(self) -> list[CommandTicket]:
        """Tickets the QoS policy rejected at submit time."""
        return [
            ticket
            for ticket in self.tickets
            if ticket.state is TicketState.THROTTLED
        ]


class CSMService:
    """Serves ragged client traffic over a round-driving backend.

    Parameters
    ----------
    backend:
        Any :class:`~repro.rounds.RoundProtocol` implementation.
    max_batch_rounds:
        Most rounds one :meth:`drive` call hands to the backend's batched
        pipeline (the batch the cached-matrix path amortises over).
    min_fill:
        Fewest machines that must have a real pending command before a
        round is formed (adaptive batching); :meth:`drive` with
        ``flush=True`` and :meth:`drain` override it.
    max_wait_ticks:
        Starvation bound: after this many consecutive below-``min_fill``
        :meth:`drive` ticks, pending commands are flushed anyway
        (``None`` disables the override).
    sequence_source:
        Optional shared :class:`~repro.consensus.command_pool.\
SequenceAllocator` for the ingress pool — the sharded façade passes one
        allocator to every shard so ticket sequences stay globally unique.
    pipeline:
        When True, :meth:`drive` runs each tick's batches through the
        backend's :meth:`~repro.rounds.RoundProtocol.run_rounds_pipelined`
        (the speculative decode/execute overlap) instead of the plain
        batched path.  The recorded history and every ticket outcome are
        bit-identical either way; overlapping scheduler ticks simply spend
        less wall-clock in the execution phase.
    qos:
        Optional :class:`~repro.service.qos.QosPolicy`.  ``None`` (or a
        default-constructed, disabled policy) reproduces today's behaviour
        bit-identically; an enabled policy adds per-session queue caps,
        admission shedding and the configured slot-selection policy.
    clock:
        Optional shared :class:`~repro.service.tickets.LogicalClock`.  When
        omitted the service owns its own clock and advances it once per
        :meth:`drive` tick; the sharded façade passes one shared clock to
        every shard and advances it at the façade tick instead.
    retry:
        Optional :class:`~repro.service.retry.RetryPolicy`.  When enabled
        (``max_attempts > 1``) a round that fails with a retryable cause
        re-enqueues its commands after ``backoff_ticks`` logical ticks
        instead of terminally failing the tickets; the backend is asked to
        :meth:`~repro.rounds.RoundProtocol.freeze_failed_rounds` so the
        retry replays against unadvanced state.  ``None`` or a disabled
        policy is bit-identical to today's fail-fast behaviour.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` (wrapped in a
        :class:`~repro.faults.FaultInjector` over ``backend``) or a
        pre-built injector.  Scheduled events fire at exact backend round
        boundaries while :meth:`drive` runs; an empty schedule is
        bit-identical to no fault plane at all.
    """

    def __init__(
        self,
        backend: RoundProtocol,
        max_batch_rounds: int = 8,
        min_fill: int = 1,
        max_wait_ticks: int | None = RoundScheduler.DEFAULT_MAX_WAIT_TICKS,
        sequence_source: SequenceAllocator | None = None,
        pipeline: bool = False,
        qos: QosPolicy | None = None,
        clock: LogicalClock | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultSchedule | FaultInjector | None = None,
    ) -> None:
        if not isinstance(backend, RoundProtocol):
            raise ConfigurationError(
                f"backend {type(backend).__name__} does not implement RoundProtocol"
            )
        if qos is not None and not isinstance(qos, QosPolicy):
            raise ConfigurationError(
                f"qos {type(qos).__name__} is not a QosPolicy"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigurationError(
                f"retry {type(retry).__name__} is not a RetryPolicy"
            )
        if faults is None:
            self.fault_injector: FaultInjector | None = None
        elif isinstance(faults, FaultSchedule):
            self.fault_injector = FaultInjector(backend, faults)
        elif isinstance(faults, FaultInjector):
            if faults.backend is not backend:
                raise ConfigurationError(
                    "fault injector was built over a different backend than "
                    "the service's"
                )
            self.fault_injector = faults
        else:
            raise ConfigurationError(
                f"faults {type(faults).__name__} is neither a FaultSchedule "
                "nor a FaultInjector"
            )
        self.backend = backend
        self.pipeline = bool(pipeline)
        self.qos = qos
        self.retry = retry
        if (retry is not None and retry.enabled) or self.fault_injector is not None:
            # Failed rounds must leave the backend's state unadvanced: a
            # retry must replay against the same state, and an injected
            # fault burst must not desync the honest coded rows from the
            # reference states (which would leave every post-burst round
            # undecodable).  With no failed rounds this is a no-op, so the
            # empty-schedule path stays bit-identical.
            backend.freeze_failed_rounds()
        self._owns_clock = clock is None
        self.clock = clock if clock is not None else LogicalClock()
        self.pool = CommandPool(
            num_machines=backend.num_machines, sequence_source=sequence_source
        )
        self.scheduler = RoundScheduler(
            self.pool,
            backend.machine,
            max_batch_rounds=max_batch_rounds,
            min_fill=min_fill,
            max_wait_ticks=max_wait_ticks,
            selector=qos.build_selector() if qos is not None else None,
        )
        self._sessions: dict[str, ClientSession] = {}
        self._tickets_by_sequence: dict[int, CommandTicket] = {}
        self._open_by_client: dict[str, int] = {}
        self.throttled_session = 0
        self.throttled_admission = 0
        # Retry machinery: failed-but-retryable tickets wait here as
        # (ready tick, ticket, machine index) until the backoff elapses;
        # their resubmissions draw fresh pool sequences, mapped back to the
        # original ticket so ``tickets()`` never shows duplicates.
        self._retry_queue: list[tuple[int, CommandTicket, int]] = []
        self._retry_sequences: dict[int, CommandTicket] = {}
        self.retried_commands = 0
        self.recovered_tickets = 0
        self.exhausted_tickets = 0

    # -- client surface -----------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.backend.num_machines

    @property
    def command_dim(self) -> int:
        """Width of one command row for the backend's machine."""
        return self.backend.machine.command_dim

    @property
    def consensus_fast_path_disabled(self) -> int:
        """Backend rounds decided on a consensus slow path (see
        :attr:`repro.rounds.RoundProtocol.consensus_fast_path_disabled`)."""
        return self.backend.consensus_fast_path_disabled

    def connect(self, client_id: str) -> ClientSession:
        """Open (or re-join) the session for ``client_id``."""
        client_id = str(client_id)
        session = self._sessions.get(client_id)
        if session is None:
            session = ClientSession(self, client_id)
            self._sessions[client_id] = session
        return session

    def tickets(self) -> list[CommandTicket]:
        """Every ticket the service has issued, in submission order."""
        return [
            self._tickets_by_sequence[seq]
            for seq in sorted(self._tickets_by_sequence)
        ]

    def pending_commands(self) -> int:
        """Commands queued but not yet scheduled into a round."""
        return self.pool.total_pending()

    def open_tickets(self, client_id: str) -> int:
        """Unresolved (non-terminal) tickets currently held by a session.

        The quantity the per-session queue cap bounds: it counts accepted
        tickets from submission until they reach ``EXECUTED`` or ``FAILED``
        (throttled tickets never count — they were rejected at the door).
        """
        return self._open_by_client.get(str(client_id), 0)

    def qos_report(self) -> dict[str, object]:
        """Deterministic QoS/backpressure snapshot for this service.

        ``pending`` is the ingress queue depth (the value admission control
        watches), ``open_tickets`` the total unresolved tickets across
        sessions, and the ``throttled_*`` counters classify every rejected
        submit by cause.  Present (with zero counters and a disabled policy
        view) even when no :class:`~repro.service.qos.QosPolicy` is set, so
        report consumers need no branching.
        """
        policy = self.qos.describe() if self.qos is not None else QosPolicy().describe()
        retry = (
            self.retry.describe() if self.retry is not None else RetryPolicy().describe()
        )
        return {
            "policy": policy,
            "pending": self.pool.total_pending(),
            "open_tickets": sum(self._open_by_client.values()),
            "throttled_session": self.throttled_session,
            "throttled_admission": self.throttled_admission,
            "tick": self.clock.now,
            "retry": retry,
            "retried_commands": self.retried_commands,
            "recovered_tickets": self.recovered_tickets,
            "exhausted_tickets": self.exhausted_tickets,
            "retry_backlog": len(self._retry_queue),
            "faults": self.fault_report().to_dict(),
        }

    def fault_report(self) -> FaultReport:
        """The fault plane's record plus this service's retry response.

        Fully populated (all-zero) even without an injector or retry policy,
        so report consumers and the sharded merge need no branching.
        """
        report = (
            self.fault_injector.report()
            if self.fault_injector is not None
            else FaultReport()
        )
        report.retried_commands = self.retried_commands
        report.recovered_tickets = self.recovered_tickets
        report.exhausted_tickets = self.exhausted_tickets
        report.retry_backlog = len(self._retry_queue)
        return report

    # -- scheduling / driving -----------------------------------------------------------
    def drive(self, flush: bool = False) -> list[ProtocolRound]:
        """One scheduler tick: plan adaptive batches and run them.

        Returns the backend's round records for the rounds driven this tick
        (``[]`` on an empty or below-``min_fill`` tick).  Tickets scheduled
        into the tick move to ``COMMITTED`` and then ``EXECUTED`` (verified
        round) or ``FAILED`` (unverified round); if the backend raises
        mid-drive the scheduled tickets are failed before the error
        propagates, so no ticket is silently lost.  Every call advances the
        service's logical clock by one tick (when the service owns its
        clock), including empty ticks — open-loop harnesses count ticks,
        not rounds.
        """
        if self._owns_clock:
            self.clock.advance()
        self._requeue_ready_retries()
        planned = self.scheduler.plan(flush=flush)
        if not planned:
            return []
        runner = (
            self.backend.run_rounds_pipelined
            if self.pipeline
            else self.backend.run_rounds_batched
        )
        try:
            commands = [round_.commands for round_ in planned]
            clients = [round_.clients for round_ in planned]
            if self.fault_injector is not None:
                records = self.fault_injector.run(runner, commands, clients)
            else:
                records = runner(commands, client_rounds=clients)
        except Exception as exc:
            for round_ in planned:
                self._fail_round(
                    round_, f"backend error: {exc}", FailureReason.BACKEND_ERROR
                )
            raise
        try:
            if len(records) != len(planned):
                raise ServiceError(
                    f"backend returned {len(records)} round records for "
                    f"{len(planned)} scheduled rounds"
                )
            for round_, record in zip(planned, records):
                self._resolve_round(round_, record)
        except Exception as exc:
            # A resolution abort (decided-command mismatch, record-count
            # mismatch) must not strand the tick's remaining tickets in a
            # non-terminal state: fail everything still open, then raise.
            for round_ in planned:
                self._fail_round(
                    round_,
                    f"round resolution aborted: {exc}",
                    FailureReason.RESOLUTION_ABORTED,
                )
            raise
        return records

    def drain(self) -> list[ProtocolRound]:
        """Drive until every queued command (and retry backlog) resolves.

        Empty ticks are tolerated while the retry backlog waits out its
        backoff — the clock advances each drive, so the backlog drains and
        the loop terminates (attempts per ticket are bounded by the policy).
        """
        records: list[ProtocolRound] = []
        while self.pool.total_pending() or self._retry_queue:
            driven = self.drive(flush=True)
            if driven:
                records.extend(driven)
                continue
            if self.pool.total_pending():  # pragma: no cover - defensive
                raise ServiceError("scheduler made no progress while draining")
            if not self._owns_clock:  # pragma: no cover - defensive
                raise ServiceError(
                    "retry backlog cannot wait out its backoff on a shared "
                    "clock; drain through the owning facade instead"
                )
        return records

    # -- legacy lockstep wrapper --------------------------------------------------------
    @classmethod
    def run_lockstep(
        cls,
        backend: RoundProtocol,
        command_batches: Sequence[np.ndarray],
        client_prefix: str = "client",
        pipeline: bool = False,
    ) -> list[ProtocolRound]:
        """Drive pre-grouped one-command-per-machine rounds through a service.

        This is the compatibility shape of the pre-service API
        (``submit_round_of_commands`` + ``run_rounds_batched``): batch ``b``
        row ``k`` is submitted by session ``{client_prefix}:{k}`` and the
        scheduler — pinned to full rounds — reproduces exactly one round per
        batch, in order, with the legacy client labels.  ``pipeline`` routes
        the drive through the backend's speculative pipelined path (same
        history, lower execution cost).
        """
        if not len(command_batches):
            return []
        service = cls(
            backend,
            max_batch_rounds=len(command_batches),
            min_fill=backend.num_machines,
            pipeline=pipeline,
        )
        # Canonicalise every batch before any submission: a malformed batch
        # must fail fast, before consensus sees any of the rounds.
        batches = [
            service.pool.canonical_round(batch) for batch in command_batches
        ]
        sessions = [
            service.connect(f"{client_prefix}:{k}")
            for k in range(backend.num_machines)
        ]
        for batch in batches:
            for k, session in enumerate(sessions):
                session.submit(k, batch[k])
        records = service.drive()
        if len(records) != len(batches):  # pragma: no cover - defensive
            raise ServiceError(
                f"lockstep drive produced {len(records)} rounds for "
                f"{len(batches)} batches"
            )
        return records

    # -- internals ----------------------------------------------------------------------
    def _canonical_command(self, command) -> np.ndarray:
        """Validate one command row against the backend machine's width."""
        row = np.asarray(command).reshape(-1)
        if row.shape[0] != self.backend.machine.command_dim:
            raise ConfigurationError(
                f"command has dimension {row.shape[0]}, machine expects "
                f"{self.backend.machine.command_dim}"
            )
        return row

    def _throttle_cause(self, client_id: str) -> tuple[str, ThrottleReason] | None:
        """The QoS rejection this submit would hit, or ``None`` to accept."""
        qos = self.qos
        if qos is None:
            return None
        cap = qos.max_session_pending
        if cap is not None and self._open_by_client.get(client_id, 0) >= cap:
            return (
                f"session {client_id!r} already holds {cap} unresolved "
                "tickets (per-session queue cap); retry after they resolve",
                ThrottleReason.SESSION_QUEUE_FULL,
            )
        watermark = qos.admission_watermark
        if watermark is not None and self.pool.total_pending() >= watermark:
            return (
                f"ingress queue depth {self.pool.total_pending()} at the "
                f"admission watermark {watermark}; shard is shedding load",
                ThrottleReason.ADMISSION_SHED,
            )
        return None

    def _make_throttled(
        self,
        client_id: str,
        machine_index: int,
        row: np.ndarray,
        reason: str,
        cause: ThrottleReason,
    ) -> CommandTicket:
        """Issue a ``THROTTLED`` ticket without touching the ingress pool.

        The rejected submission still draws a sequence from the (possibly
        shared) allocator, so tickets stay globally ordered by submission
        even across throttled attempts.
        """
        assert self.pool.sequence_source is not None
        ticket = CommandTicket(
            client_id=str(client_id),
            machine_index=int(machine_index),
            command=tuple(int(v) for v in row),
            sequence=self.pool.sequence_source.allocate(),
            submitted_tick=self.clock.now,
        )
        ticket._throttle(reason, cause, tick=self.clock.now)
        self._tickets_by_sequence[ticket.sequence] = ticket
        if cause is ThrottleReason.SESSION_QUEUE_FULL:
            self.throttled_session += 1
        else:
            self.throttled_admission += 1
        return ticket

    def _submit(self, client_id: str, machine_index: int, command) -> CommandTicket:
        row = self._canonical_command(command)
        throttle = self._throttle_cause(client_id)
        if throttle is not None:
            return self._make_throttled(client_id, machine_index, row, *throttle)
        entry = self.pool.submit(machine_index, client_id, row)
        ticket = CommandTicket(
            client_id=client_id,
            machine_index=entry.machine_index,
            command=entry.command,
            sequence=entry.sequence,
            submitted_tick=self.clock.now,
        )
        self._tickets_by_sequence[entry.sequence] = ticket
        self._open_by_client[client_id] = self._open_by_client.get(client_id, 0) + 1
        return ticket

    def _release(self, ticket: CommandTicket) -> None:
        """Give the session's queue-cap slot back once a ticket resolves."""
        remaining = self._open_by_client.get(ticket.client_id, 0)
        if remaining > 0:
            self._open_by_client[ticket.client_id] = remaining - 1

    def _ticket_for_sequence(self, sequence: int) -> CommandTicket:
        """The ticket owning a scheduled pool entry (retries map back to
        their original ticket, issued under an earlier sequence)."""
        ticket = self._tickets_by_sequence.get(sequence)
        if ticket is None:
            ticket = self._retry_sequences[sequence]
        return ticket

    def _requeue_ready_retries(self) -> None:
        """Resubmit retry-backlog commands whose backoff has elapsed.

        Resubmission bypasses the QoS throttle checks — the ticket still
        holds its session queue-cap slot from the original submit — and
        draws a fresh pool sequence, mapped back to the original ticket.
        """
        if not self._retry_queue:
            return
        now = self.clock.now
        ready = [item for item in self._retry_queue if item[0] <= now]
        if not ready:
            return
        self._retry_queue = [item for item in self._retry_queue if item[0] > now]
        for _, ticket, machine_index in ready:
            entry = self.pool.submit(
                machine_index, ticket.client_id, np.asarray(ticket.command)
            )
            self._retry_sequences[entry.sequence] = ticket

    def _finish_execute(self, ticket: CommandTicket, output: np.ndarray) -> None:
        ticket._execute(output, tick=self.clock.now)
        if ticket.attempts > 1:
            self.recovered_tickets += 1
        self._release(ticket)

    def _finish_fail(
        self, ticket: CommandTicket, reason: str, cause: FailureReason
    ) -> None:
        ticket._fail(reason, cause, tick=self.clock.now)
        self._release(ticket)

    def _finish_round_failure(
        self,
        ticket: CommandTicket,
        machine_index: int,
        reason: str,
        cause: FailureReason,
    ) -> None:
        """Fail a committed ticket — or, under the retry policy, re-enqueue it.

        ``machine_index`` is the *local* machine slot the command occupied
        (the retry must resubmit to the same slot; the ticket's own
        ``machine_index`` may have been rewritten to a global index by the
        sharded facade).
        """
        policy = self.retry
        if policy is not None and policy.enabled and cause in policy.retry_on:
            if ticket.attempts < policy.max_attempts:
                ticket._retry()
                self._retry_queue.append(
                    (self.clock.now + policy.backoff_ticks, ticket, machine_index)
                )
                self.retried_commands += 1
                return
            self.exhausted_tickets += 1
            self._finish_fail(
                ticket,
                f"{reason} (attempt {ticket.attempts} of {policy.max_attempts}; "
                "retries exhausted)",
                FailureReason.RETRY_EXHAUSTED,
            )
            return
        self._finish_fail(ticket, reason, cause)

    def _resolve_round(self, planned: ScheduledRound, record: ProtocolRound) -> None:
        for k, entry in enumerate(planned.entries):
            if entry is None:
                continue  # noop padding owns no ticket
            ticket = self._ticket_for_sequence(entry.sequence)
            decided = tuple(int(v) for v in np.asarray(record.commands[k]))
            if decided != ticket.command:
                self._finish_fail(
                    ticket,
                    f"consensus decided {decided} for machine {k}, not the "
                    f"scheduled command {ticket.command}",
                    FailureReason.CONSENSUS_MISMATCH,
                )
                raise ConsensusError(
                    f"round {record.round_index} decided a different command for "
                    f"machine {k} than the scheduler submitted"
                )
            ticket._commit(record.round_index, tick=self.clock.now)
            if record.correct:
                self._finish_execute(ticket, record.result.outputs[k])
            elif record.result.diagnostics.get("confirmed_fraud"):
                # Delegated-verification backends convict their worker in the
                # round diagnostics; surface the distinct cause so clients can
                # branch (resubmit immediately — a fresh election replaces the
                # worker) without parsing prose.
                self._finish_round_failure(
                    ticket,
                    k,
                    f"round {record.round_index} rejected: confirmed "
                    "delegated-verification fraud; output withheld",
                    FailureReason.DELEGATION_FRAUD,
                )
            else:
                self._finish_round_failure(
                    ticket,
                    k,
                    f"round {record.round_index} failed verification; output "
                    "withheld",
                    FailureReason.VERIFICATION_FAILED,
                )

    def _fail_round(
        self,
        planned: ScheduledRound,
        reason: str,
        failure_reason: FailureReason,
    ) -> None:
        for entry in planned.entries:
            if entry is None:
                continue
            ticket = self._ticket_for_sequence(entry.sequence)
            if ticket.done:
                continue
            if ticket.state is TicketState.RETRYING:
                # The aborted tick may have just re-enqueued this ticket (or
                # be failing its resubmission); either way its backlog entry
                # must go, or a later tick would resubmit a failed ticket.
                self._retry_queue = [
                    item for item in self._retry_queue if item[1] is not ticket
                ]
            self._finish_fail(ticket, reason, failure_reason)
