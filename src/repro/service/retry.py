"""Round retry policy for the self-healing service.

A :class:`RetryPolicy` tells the service what to do when a round fails
instead of terminally failing its tickets: re-enqueue the commands (with a
fresh sequence number) after ``backoff_ticks`` logical ticks, up to
``max_attempts`` total attempts per ticket.  Retries only make sense for
failure causes the backend can plausibly recover from — a verification
failure caused by a transient fault burst, or a delegated-verification
fraud conviction after which the cheating worker is rotated out — so the
policy carries the set of retryable :class:`~repro.service.tickets.\
FailureReason`\\ s.

The default-constructed policy (``max_attempts=1``) is disabled: one
attempt means no retries, and a service built with it behaves (and is
property-tested to behave) bit-identically to one built with no policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.service.tickets import FailureReason

#: Failure causes a retry can plausibly fix: transient verification
#: failures (fault bursts beyond the decode radius) and delegation fraud
#: (the convicted worker is rotated out before the retry lands).
DEFAULT_RETRY_ON = frozenset(
    {FailureReason.VERIFICATION_FAILED, FailureReason.DELEGATION_FRAUD}
)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and after how long, failed commands are re-driven."""

    max_attempts: int = 1
    backoff_ticks: int = 1
    retry_on: frozenset[FailureReason] = field(default=DEFAULT_RETRY_ON)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_ticks < 0:
            raise ConfigurationError(
                f"backoff_ticks must be non-negative, got {self.backoff_ticks}"
            )
        if not all(isinstance(cause, FailureReason) for cause in self.retry_on):
            raise ConfigurationError("retry_on must contain FailureReason members")

    @property
    def enabled(self) -> bool:
        """Whether the policy actually retries (more than one attempt)."""
        return self.max_attempts > 1

    def describe(self) -> dict[str, object]:
        """JSON-friendly view for ``qos_report()`` and bench artifacts."""
        return {
            "enabled": self.enabled,
            "max_attempts": self.max_attempts,
            "backoff_ticks": self.backoff_ticks,
            "retry_on": sorted(cause.value for cause in self.retry_on),
        }
