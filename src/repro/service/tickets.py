"""Command tickets: the per-command lifecycle handle the service returns.

Submitting a command through a :class:`~repro.service.service.ClientSession`
returns a :class:`CommandTicket`.  The ticket replaces the protocol's lossy
``delivered_outputs`` dict (keyed by reused ``client:k`` labels) with an
explicit, per-command lifecycle:

``PENDING``
    queued in the service's command pool, not yet scheduled;
``COMMITTED``
    a scheduled round's consensus decided this exact command;
``EXECUTED``
    the round's decode verified and the command's output was delivered —
    :attr:`CommandTicket.output` holds it;
``FAILED``
    the round failed verification (no output is ever delivered from an
    unverified round), the backend raised mid-drive, or consensus decided a
    different command than the scheduler placed;
``THROTTLED``
    the service's :class:`~repro.service.qos.QosPolicy` rejected the submit
    before it reached the pool (per-session queue cap, or shard admission
    control) — :attr:`CommandTicket.throttle_reason` carries the
    machine-readable cause, and the client should retry later;
``RETRYING``
    the round failed with a retryable cause and the service's
    :class:`~repro.service.retry.RetryPolicy` re-enqueued the command
    instead of failing the ticket; :attr:`CommandTicket.attempts` counts
    the drives, and the ticket re-commits (or terminally fails with
    :attr:`FailureReason.RETRY_EXHAUSTED`) on a later tick.

The only legal transitions are ``PENDING -> COMMITTED``,
``COMMITTED -> EXECUTED | FAILED | RETRYING``,
``RETRYING -> COMMITTED | FAILED`` and the two submit-side edges
``PENDING -> FAILED`` (scheduler abort) and ``PENDING -> THROTTLED``
(backpressure); anything else raises
:class:`~repro.exceptions.ServiceError`.

Every lifecycle edge is stamped with a *logical* timestamp — the service's
:class:`LogicalClock` tick at which the edge happened
(:attr:`CommandTicket.submitted_tick`, :attr:`~CommandTicket.committed_tick`,
:attr:`~CommandTicket.resolved_tick`) — so commit/execute latency can be
measured in scheduler ticks without any wall-clock read, deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServiceError


class TicketState(enum.Enum):
    """Lifecycle states of a :class:`CommandTicket`."""

    PENDING = "pending"
    COMMITTED = "committed"
    EXECUTED = "executed"
    FAILED = "failed"
    THROTTLED = "throttled"
    RETRYING = "retrying"


class FailureReason(enum.Enum):
    """Machine-readable cause attached to every ``-> FAILED`` transition.

    The human-readable :attr:`CommandTicket.error` string explains the
    failure; this enum classifies it, so retry policies and tests can branch
    on the cause without parsing prose.
    """

    #: The backend raised mid-drive; the command may never have reached
    #: consensus.  Resubmitting is safe.
    BACKEND_ERROR = "backend-error"
    #: The round executed but its decode/output verification failed; the
    #: output was withheld.
    VERIFICATION_FAILED = "verification-failed"
    #: Consensus decided a different command than the scheduler submitted
    #: for this slot — a safety violation surfaced to the client.
    CONSENSUS_MISMATCH = "consensus-mismatch"
    #: A delegated-verification round (INTERMIX) convicted its worker of
    #: fraud: an accusation transcript verified, or the worker never
    #: broadcast.  The round was voided — no output, no state advance — so
    #: resubmitting is safe (a fresh committee election picks a new worker).
    DELEGATION_FRAUD = "delegation-fraud"
    #: Round resolution aborted after the backend returned (record-count
    #: mismatch, or a sibling slot's consensus mismatch) — the whole tick's
    #: open tickets are failed rather than stranded.
    RESOLUTION_ABORTED = "resolution-aborted"
    #: Every one of the :class:`~repro.service.retry.RetryPolicy`'s
    #: ``max_attempts`` drives failed with a retryable cause; the
    #: :attr:`CommandTicket.error` prose names the final underlying cause.
    RETRY_EXHAUSTED = "retry-exhausted"


class ThrottleReason(enum.Enum):
    """Machine-readable cause attached to every ``-> THROTTLED`` transition.

    The :class:`FailureReason` counterpart for the backpressure edge: it
    classifies *why* the QoS policy rejected the submit, so clients can
    branch (back off and retry versus route elsewhere) without parsing the
    :attr:`CommandTicket.error` prose.
    """

    #: The submitting session already has ``max_session_pending`` unresolved
    #: tickets; capacity frees as those tickets resolve.
    SESSION_QUEUE_FULL = "session-queue-full"
    #: The shard's ingress queue depth crossed the admission watermark; the
    #: shard is shedding load until the scheduler drains the backlog.
    ADMISSION_SHED = "admission-shed"


_LEGAL_TRANSITIONS: dict[TicketState, frozenset[TicketState]] = {
    TicketState.PENDING: frozenset(
        {TicketState.COMMITTED, TicketState.FAILED, TicketState.THROTTLED}
    ),
    TicketState.COMMITTED: frozenset(
        {TicketState.EXECUTED, TicketState.FAILED, TicketState.RETRYING}
    ),
    TicketState.RETRYING: frozenset({TicketState.COMMITTED, TicketState.FAILED}),
    TicketState.EXECUTED: frozenset(),
    TicketState.FAILED: frozenset(),
    TicketState.THROTTLED: frozenset(),
}


class LogicalClock:
    """A monotone tick counter: the service's deterministic notion of time.

    One :meth:`advance` per service ``drive()`` tick.  Ticket lifecycle
    edges are stamped with :attr:`now`, so latency is measured in scheduler
    ticks — a pure function of the submission trace and the configuration,
    bit-reproducible across machines (no wall-clock read, DET002-clean).

    The sharded façade shares one clock across its per-shard services (the
    same way the :class:`~repro.consensus.command_pool.SequenceAllocator`
    is shared), so per-ticket latencies are comparable across shards.
    """

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """The current tick (number of completed :meth:`advance` calls)."""
        return self._now

    def advance(self) -> int:
        """Start the next tick; returns the new :attr:`now`."""
        self._now += 1
        return self._now


@dataclass
class CommandTicket:
    """One submitted command and its delivery lifecycle.

    Attributes
    ----------
    client_id:
        The session that submitted the command.
    machine_index:
        The state machine the command targets.
    command:
        The submitted command payload (canonical integer tuple).
    sequence:
        The service-pool submission sequence — unique per service, and the
        key that ties the scheduled pool entry back to this ticket.
    state:
        Current :class:`TicketState`.
    round_index:
        The backend round that committed the command (set on commit).
    output:
        The delivered output vector (set only when ``EXECUTED``).
    error:
        Human-readable failure/throttle reason (set when ``FAILED`` or
        ``THROTTLED``).
    failure_reason:
        Machine-readable :class:`FailureReason` (set on every ``-> FAILED``
        edge, ``None`` otherwise).
    throttle_reason:
        Machine-readable :class:`ThrottleReason` (set on every
        ``-> THROTTLED`` edge, ``None`` otherwise).
    submitted_tick:
        Logical tick at which the command was submitted.
    committed_tick:
        Logical tick at which consensus committed the command.
    resolved_tick:
        Logical tick at which the ticket reached a terminal state.
    state_history:
        Every state the ticket has been in, in order (starts ``PENDING``).
    attempts:
        How many drives have carried this command (starts at 1; each
        ``-> RETRYING`` edge increments it).
    """

    client_id: str
    machine_index: int
    command: tuple[int, ...]
    sequence: int
    state: TicketState = TicketState.PENDING
    round_index: int | None = None
    output: np.ndarray | None = None
    error: str | None = None
    failure_reason: FailureReason | None = None
    throttle_reason: ThrottleReason | None = None
    submitted_tick: int | None = None
    committed_tick: int | None = None
    resolved_tick: int | None = None
    state_history: list[TicketState] = field(default_factory=list)
    attempts: int = 1

    def __post_init__(self) -> None:
        if not self.state_history:
            self.state_history = [self.state]

    # -- lifecycle ----------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the ticket reached a terminal state."""
        return self.state in (
            TicketState.EXECUTED,
            TicketState.FAILED,
            TicketState.THROTTLED,
        )

    @property
    def commit_latency(self) -> int | None:
        """Logical ticks from submission to consensus commit (None until then)."""
        if self.submitted_tick is None or self.committed_tick is None:
            return None
        return self.committed_tick - self.submitted_tick

    @property
    def execute_latency(self) -> int | None:
        """Logical ticks from submission to delivered output (None unless
        ``EXECUTED`` with both edges stamped)."""
        if (
            self.state is not TicketState.EXECUTED
            or self.submitted_tick is None
            or self.resolved_tick is None
        ):
            return None
        return self.resolved_tick - self.submitted_tick

    def result(self) -> np.ndarray:
        """A copy of the delivered output; raises unless ``EXECUTED``.

        A copy, so callers post-processing the value cannot corrupt the
        ticket's record of what the protocol actually delivered.
        """
        if self.state is not TicketState.EXECUTED:
            raise ServiceError(
                f"ticket {self.sequence} ({self.client_id} -> machine "
                f"{self.machine_index}) is {self.state.value}, not executed"
            )
        assert self.output is not None
        return self.output.copy()

    def _advance(self, new_state: TicketState) -> None:
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise ServiceError(
                f"illegal ticket transition {self.state.value} -> "
                f"{new_state.value} for sequence {self.sequence}"
            )
        self.state = new_state
        self.state_history.append(new_state)

    def _commit(self, round_index: int, tick: int | None = None) -> None:
        self._advance(TicketState.COMMITTED)
        self.round_index = int(round_index)
        self.committed_tick = tick

    def _retry(self) -> None:
        """Record a failed-but-retryable drive; the ticket stays live."""
        self._advance(TicketState.RETRYING)
        self.attempts += 1

    def _execute(self, output: np.ndarray, tick: int | None = None) -> None:
        self._advance(TicketState.EXECUTED)
        self.output = np.asarray(output).copy()
        self.resolved_tick = tick

    def _fail(
        self,
        reason: str,
        failure_reason: FailureReason,
        tick: int | None = None,
    ) -> None:
        self._advance(TicketState.FAILED)
        self.error = reason
        self.failure_reason = failure_reason
        self.resolved_tick = tick

    def _throttle(
        self,
        reason: str,
        throttle_reason: ThrottleReason,
        tick: int | None = None,
    ) -> None:
        self._advance(TicketState.THROTTLED)
        self.error = reason
        self.throttle_reason = throttle_reason
        self.resolved_tick = tick
