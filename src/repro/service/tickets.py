"""Command tickets: the per-command lifecycle handle the service returns.

Submitting a command through a :class:`~repro.service.service.ClientSession`
returns a :class:`CommandTicket`.  The ticket replaces the protocol's lossy
``delivered_outputs`` dict (keyed by reused ``client:k`` labels) with an
explicit, per-command lifecycle:

``PENDING``
    queued in the service's command pool, not yet scheduled;
``COMMITTED``
    a scheduled round's consensus decided this exact command;
``EXECUTED``
    the round's decode verified and the command's output was delivered —
    :attr:`CommandTicket.output` holds it;
``FAILED``
    the round failed verification (no output is ever delivered from an
    unverified round), the backend raised mid-drive, or consensus decided a
    different command than the scheduler placed.

The only legal transitions are ``PENDING -> COMMITTED``,
``COMMITTED -> EXECUTED | FAILED`` and the scheduler-abort edge
``PENDING -> FAILED``; anything else raises
:class:`~repro.exceptions.ServiceError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServiceError


class TicketState(enum.Enum):
    """Lifecycle states of a :class:`CommandTicket`."""

    PENDING = "pending"
    COMMITTED = "committed"
    EXECUTED = "executed"
    FAILED = "failed"


class FailureReason(enum.Enum):
    """Machine-readable cause attached to every ``-> FAILED`` transition.

    The human-readable :attr:`CommandTicket.error` string explains the
    failure; this enum classifies it, so retry policies and tests can branch
    on the cause without parsing prose.
    """

    #: The backend raised mid-drive; the command may never have reached
    #: consensus.  Resubmitting is safe.
    BACKEND_ERROR = "backend-error"
    #: The round executed but its decode/output verification failed; the
    #: output was withheld.
    VERIFICATION_FAILED = "verification-failed"
    #: Consensus decided a different command than the scheduler submitted
    #: for this slot — a safety violation surfaced to the client.
    CONSENSUS_MISMATCH = "consensus-mismatch"
    #: Round resolution aborted after the backend returned (record-count
    #: mismatch, or a sibling slot's consensus mismatch) — the whole tick's
    #: open tickets are failed rather than stranded.
    RESOLUTION_ABORTED = "resolution-aborted"


_LEGAL_TRANSITIONS: dict[TicketState, frozenset[TicketState]] = {
    TicketState.PENDING: frozenset({TicketState.COMMITTED, TicketState.FAILED}),
    TicketState.COMMITTED: frozenset({TicketState.EXECUTED, TicketState.FAILED}),
    TicketState.EXECUTED: frozenset(),
    TicketState.FAILED: frozenset(),
}


@dataclass
class CommandTicket:
    """One submitted command and its delivery lifecycle.

    Attributes
    ----------
    client_id:
        The session that submitted the command.
    machine_index:
        The state machine the command targets.
    command:
        The submitted command payload (canonical integer tuple).
    sequence:
        The service-pool submission sequence — unique per service, and the
        key that ties the scheduled pool entry back to this ticket.
    state:
        Current :class:`TicketState`.
    round_index:
        The backend round that committed the command (set on commit).
    output:
        The delivered output vector (set only when ``EXECUTED``).
    error:
        Human-readable failure reason (set only when ``FAILED``).
    failure_reason:
        Machine-readable :class:`FailureReason` (set on every ``-> FAILED``
        edge, ``None`` otherwise).
    state_history:
        Every state the ticket has been in, in order (starts ``PENDING``).
    """

    client_id: str
    machine_index: int
    command: tuple[int, ...]
    sequence: int
    state: TicketState = TicketState.PENDING
    round_index: int | None = None
    output: np.ndarray | None = None
    error: str | None = None
    failure_reason: FailureReason | None = None
    state_history: list[TicketState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.state_history:
            self.state_history = [self.state]

    # -- lifecycle ----------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the ticket reached a terminal state."""
        return self.state in (TicketState.EXECUTED, TicketState.FAILED)

    def result(self) -> np.ndarray:
        """A copy of the delivered output; raises unless ``EXECUTED``.

        A copy, so callers post-processing the value cannot corrupt the
        ticket's record of what the protocol actually delivered.
        """
        if self.state is not TicketState.EXECUTED:
            raise ServiceError(
                f"ticket {self.sequence} ({self.client_id} -> machine "
                f"{self.machine_index}) is {self.state.value}, not executed"
            )
        assert self.output is not None
        return self.output.copy()

    def _advance(self, new_state: TicketState) -> None:
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise ServiceError(
                f"illegal ticket transition {self.state.value} -> "
                f"{new_state.value} for sequence {self.sequence}"
            )
        self.state = new_state
        self.state_history.append(new_state)

    def _commit(self, round_index: int) -> None:
        self._advance(TicketState.COMMITTED)
        self.round_index = int(round_index)

    def _execute(self, output: np.ndarray) -> None:
        self._advance(TicketState.EXECUTED)
        self.output = np.asarray(output).copy()

    def _fail(self, reason: str, failure_reason: FailureReason) -> None:
        self._advance(TicketState.FAILED)
        self.error = reason
        self.failure_reason = failure_reason
