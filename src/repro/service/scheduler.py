"""Adaptive round scheduling: draining ragged traffic into batched rounds.

The paper's protocol is client-driven — commands arrive whenever clients
have them — but the batched round pipeline wants dense ``(K, command_dim)``
rounds.  :class:`RoundScheduler` bridges the two: it drains the service's
ingress :class:`~repro.consensus.command_pool.CommandPool` FIFO into up to
``max_batch_rounds`` rounds per tick, padding machines with empty queues
with the machine's :meth:`~repro.machine.interface.StateMachine.noop_command`
(an identity transition for the library machines), so idle machines, bursty
multi-command clients and partially-filled rounds are all first-class.

``min_fill`` makes the batching adaptive: a round is only formed once at
least that many machines have a real pending command, so a nearly-idle
system waits for traffic to accumulate instead of burning consensus rounds
on noop padding — except under ``flush=True``, which drains every pending
command regardless of fill.

``max_wait_ticks`` bounds how long that deferral can starve a command: if
below-``min_fill`` traffic sits in the pool for that many consecutive
:meth:`RoundScheduler.plan` ticks without a ``flush`` ever arriving, the
scheduler flushes it anyway.  Without the override, a trickle of traffic
that never reaches ``min_fill`` machines would leave its tickets ``PENDING``
forever — a liveness hole, not a policy.  The deferral age follows the
*oldest still-pending command*: a tick that plans rounds but leaves
commands behind (``max_batch_rounds`` exhausted) ages the leftovers rather
than resetting their starvation clock.

``selector`` opens the slot-filling choice to a
:class:`~repro.service.qos.SelectionPolicy`: instead of the implicit
FIFO-per-machine ``dequeue_next``, the scheduler offers the policy the
machine's pending queue and dequeues whichever entry it picks — weighted
fair shares across sessions, priority lanes.  With ``selector=None`` (the
default) the original FIFO fast path runs unchanged, bit-identically.

The scheduler only *plans* rounds; how they execute is the service's call.
With ``CSMService(pipeline=True)`` each planned batch runs through the
backend's speculative decode/execute pipeline
(:meth:`~repro.rounds.RoundProtocol.run_rounds_pipelined`), so overlapping
scheduler ticks spend less wall-clock per batch while every planned round
resolves to the bit-identical history and ticket outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.consensus.command_pool import CommandPool, SubmittedCommand
from repro.exceptions import ConfigurationError
from repro.machine.interface import StateMachine
from repro.service.qos import SelectionPolicy

#: Client label attached to noop padding slots in the backend's round record.
NOOP_CLIENT = "service:noop"


@dataclass
class ScheduledRound:
    """One planned round: dense commands, per-slot clients, per-slot tickets.

    ``entries[k]`` is the dequeued pool entry whose ticket owns machine
    ``k``'s slot, or ``None`` where the slot is noop padding.
    """

    commands: np.ndarray
    clients: list[str]
    entries: list[SubmittedCommand | None]

    @property
    def fill(self) -> int:
        """Number of real (non-padding) commands in the round."""
        return sum(1 for entry in self.entries if entry is not None)


class RoundScheduler:
    """Drains a command pool into adaptive batches of dense rounds."""

    #: Default bound on consecutive below-``min_fill`` deferrals before the
    #: scheduler flushes stale traffic anyway (the starvation override).
    DEFAULT_MAX_WAIT_TICKS = 16

    def __init__(
        self,
        pool: CommandPool,
        machine: StateMachine,
        max_batch_rounds: int = 8,
        min_fill: int = 1,
        max_wait_ticks: int | None = DEFAULT_MAX_WAIT_TICKS,
        selector: SelectionPolicy | None = None,
    ) -> None:
        if max_batch_rounds < 1:
            raise ConfigurationError(
                f"max_batch_rounds must be positive, got {max_batch_rounds}"
            )
        if not 1 <= min_fill <= pool.num_machines:
            raise ConfigurationError(
                f"min_fill must be in [1, {pool.num_machines}], got {min_fill}"
            )
        if max_wait_ticks is not None and max_wait_ticks < 1:
            raise ConfigurationError(
                f"max_wait_ticks must be positive (or None to disable), "
                f"got {max_wait_ticks}"
            )
        self.pool = pool
        self.machine = machine
        self.max_batch_rounds = int(max_batch_rounds)
        self.min_fill = int(min_fill)
        self.max_wait_ticks = None if max_wait_ticks is None else int(max_wait_ticks)
        self.selector = selector
        self._deferred_ticks = 0
        self._noop_row = [int(v) for v in machine.noop_command()]

    def plan(self, flush: bool = False) -> list[ScheduledRound]:
        """Dequeue up to ``max_batch_rounds`` rounds of pending commands.

        Each planned round fills every machine that has a pending command —
        with its FIFO-next entry, or whichever entry the ``selector`` picks
        from the machine's queue — and pads the rest with the machine's noop
        command.  Planning stops when the pool is empty, the batch is full,
        or the next round would fall below ``min_fill`` real commands
        (unless ``flush``).  An empty tick returns ``[]`` without touching
        the pool.

        A tick that defers below-``min_fill`` traffic counts toward
        ``max_wait_ticks``; once the oldest pending command has waited that
        many consecutive ticks, the tick proceeds as if flushed, so no
        ticket waits forever for traffic that never comes.  The deferral age
        is only reset by a tick that fully drains the pool: leftovers from a
        ``max_batch_rounds``-capped tick keep (and grow) their accrued age.
        """
        if self.pool.pending_machines() == 0:
            # An empty pool has nothing to starve; deferral age restarts
            # when the next command arrives.
            self._deferred_ticks = 0
            return []
        if self.pool.pending_machines() < self.min_fill and not flush:
            if (
                self.max_wait_ticks is not None
                and self._deferred_ticks + 1 >= self.max_wait_ticks
            ):
                flush = True  # stale traffic: override min_fill this tick
            else:
                self._deferred_ticks += 1
                return []
        rounds: list[ScheduledRound] = []
        while len(rounds) < self.max_batch_rounds:
            filled = self.pool.pending_machines()
            if filled == 0:
                break
            if filled < self.min_fill and not flush:
                break
            commands: list[list[int]] = []
            clients: list[str] = []
            entries: list[SubmittedCommand | None] = []
            for k in range(self.pool.num_machines):
                entry = self._dequeue(k)
                entries.append(entry)
                if entry is None:
                    commands.append(self._noop_row)
                    clients.append(NOOP_CLIENT)
                else:
                    commands.append(list(entry.command))
                    clients.append(entry.client_id)
            rounds.append(
                ScheduledRound(
                    commands=np.array(commands, dtype=np.int64),
                    clients=clients,
                    entries=entries,
                )
            )
        # Deferral age follows the oldest still-pending command: only a tick
        # that leaves the pool empty resets it.  A capped tick's leftovers
        # have now waited one more tick (this was the regression: resetting
        # here forgot their starvation age).
        if self.pool.total_pending() == 0:
            self._deferred_ticks = 0
        else:
            self._deferred_ticks += 1
        return rounds

    def _dequeue(self, machine_index: int) -> SubmittedCommand | None:
        """One slot fill: FIFO fast path, or the selection policy's pick."""
        if self.selector is None:
            return self.pool.dequeue_next(machine_index)
        candidates = self.pool.pending_entries(machine_index)
        if not candidates:
            return None
        chosen = self.selector.select(machine_index, candidates)
        return self.pool.dequeue_sequence(machine_index, chosen.sequence)
