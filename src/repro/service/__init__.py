"""Client-session serving layer over any round-driving backend.

The canonical client API of the reproduction (see the README's "Serving
clients" section):

* :class:`~repro.service.service.CSMService` — wraps a
  :class:`~repro.rounds.RoundProtocol` backend (the coded
  :class:`~repro.core.protocol.CSMProtocol` or a replication baseline via
  :class:`~repro.replication.protocol.ReplicationProtocol`);
* :class:`~repro.service.service.ClientSession` — per-client handle returned
  by ``service.connect(client_id)``;
* :class:`~repro.service.tickets.CommandTicket` /
  :class:`~repro.service.tickets.TicketState` — per-command lifecycle
  (``PENDING -> COMMITTED -> EXECUTED | FAILED``) and delivered output;
* :class:`~repro.service.scheduler.RoundScheduler` — adaptive batching of
  ragged traffic with noop padding for idle machines.
"""

from repro.service.scheduler import NOOP_CLIENT, RoundScheduler, ScheduledRound
from repro.service.service import ClientSession, CSMService
from repro.service.tickets import CommandTicket, TicketState

__all__ = [
    "NOOP_CLIENT",
    "CSMService",
    "ClientSession",
    "CommandTicket",
    "RoundScheduler",
    "ScheduledRound",
    "TicketState",
]
