"""Client-session serving layer over any round-driving backend.

The canonical client API of the reproduction (see the README's "Serving
clients" section):

* :class:`~repro.service.service.CSMService` — wraps a
  :class:`~repro.rounds.RoundProtocol` backend (the coded
  :class:`~repro.core.protocol.CSMProtocol` or a replication baseline via
  :class:`~repro.replication.protocol.ReplicationProtocol`);
* :class:`~repro.service.sharding.ShardedCSMService` — the same client
  surface over ``S`` disjoint shards, each with its own command pool,
  round scheduler and backend, advancing independently;
* :class:`~repro.service.service.ClientSession` — per-client handle returned
  by ``service.connect(client_id)``;
* :class:`~repro.service.tickets.CommandTicket` /
  :class:`~repro.service.tickets.TicketState` /
  :class:`~repro.service.tickets.FailureReason` — per-command lifecycle
  (``PENDING -> COMMITTED -> EXECUTED | FAILED``), delivered output, and
  the machine-readable failure cause;
* :class:`~repro.service.scheduler.RoundScheduler` — adaptive batching of
  ragged traffic with noop padding for idle machines and a
  ``max_wait_ticks`` starvation override.
"""

from repro.service.scheduler import NOOP_CLIENT, RoundScheduler, ScheduledRound
from repro.service.service import ClientSession, CSMService
from repro.service.sharding import ShardedClientSession, ShardedCSMService, ShardedRound
from repro.service.tickets import CommandTicket, FailureReason, TicketState

__all__ = [
    "NOOP_CLIENT",
    "CSMService",
    "ClientSession",
    "CommandTicket",
    "FailureReason",
    "RoundScheduler",
    "ScheduledRound",
    "ShardedCSMService",
    "ShardedClientSession",
    "ShardedRound",
    "TicketState",
]
