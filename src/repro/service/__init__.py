"""Client-session serving layer over any round-driving backend.

The canonical client API of the reproduction (see the README's "Serving
clients" section):

* :class:`~repro.service.service.CSMService` — wraps a
  :class:`~repro.rounds.RoundProtocol` backend (the coded
  :class:`~repro.core.protocol.CSMProtocol` or a replication baseline via
  :class:`~repro.replication.protocol.ReplicationProtocol`);
* :class:`~repro.service.sharding.ShardedCSMService` — the same client
  surface over ``S`` disjoint shards, each with its own command pool,
  round scheduler and backend, advancing independently;
* :class:`~repro.service.service.ClientSession` — per-client handle returned
  by ``service.connect(client_id)``;
* :class:`~repro.service.tickets.CommandTicket` /
  :class:`~repro.service.tickets.TicketState` /
  :class:`~repro.service.tickets.FailureReason` /
  :class:`~repro.service.tickets.ThrottleReason` — per-command lifecycle
  (``PENDING -> COMMITTED -> EXECUTED | FAILED``, plus the backpressure
  edge ``PENDING -> THROTTLED``), delivered output, machine-readable
  failure/throttle causes and per-edge logical timestamps;
* :class:`~repro.service.scheduler.RoundScheduler` — adaptive batching of
  ragged traffic with noop padding for idle machines and a
  ``max_wait_ticks`` starvation override;
* :class:`~repro.service.qos.QosPolicy` — per-session queue caps, shard
  admission control and weighted-fair slot selection
  (:class:`~repro.service.qos.WeightedFairSelection`), disabled by default
  and bit-identical to no policy when disabled;
* :class:`~repro.service.retry.RetryPolicy` — the self-healing layer:
  rounds failing with a retryable cause re-enqueue their commands with
  backoff (``COMMITTED -> RETRYING -> COMMITTED``) instead of terminally
  failing, against backends frozen via
  :meth:`~repro.rounds.RoundProtocol.freeze_failed_rounds`; pairs with the
  :mod:`repro.faults` injection plane and the sharded façade's
  :class:`~repro.service.sharding.ShardHealth` tracking;
* :mod:`repro.service.traffic` — deterministic open-loop workloads
  (:class:`~repro.service.traffic.PoissonProcess`,
  :class:`~repro.service.traffic.BurstyProcess`) and the
  :class:`~repro.service.traffic.OpenLoopDriver` tick loop with
  commit/execute latency percentiles.
"""

from repro.service.qos import (
    FifoSelection,
    QosPolicy,
    SelectionPolicy,
    WeightedFairSelection,
)
from repro.service.retry import RetryPolicy
from repro.service.scheduler import NOOP_CLIENT, RoundScheduler, ScheduledRound
from repro.service.service import ClientSession, CSMService
from repro.service.sharding import (
    ShardedClientSession,
    ShardedCSMService,
    ShardedRound,
    ShardHealth,
)
from repro.service.tickets import (
    CommandTicket,
    FailureReason,
    LogicalClock,
    ThrottleReason,
    TicketState,
)
from repro.service.traffic import (
    ArrivalProcess,
    BurstyProcess,
    OpenLoopDriver,
    PoissonProcess,
    TrafficReport,
    latency_percentiles,
)

__all__ = [
    "NOOP_CLIENT",
    "ArrivalProcess",
    "BurstyProcess",
    "CSMService",
    "ClientSession",
    "CommandTicket",
    "FailureReason",
    "FifoSelection",
    "LogicalClock",
    "OpenLoopDriver",
    "PoissonProcess",
    "QosPolicy",
    "RetryPolicy",
    "RoundScheduler",
    "ScheduledRound",
    "SelectionPolicy",
    "ShardHealth",
    "ShardedCSMService",
    "ShardedClientSession",
    "ShardedRound",
    "ThrottleReason",
    "TicketState",
    "TrafficReport",
    "WeightedFairSelection",
    "latency_percentiles",
]
