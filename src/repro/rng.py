"""The single sanctioned construction site for random streams.

Replay determinism — the foundation of every bit-identity oracle in this
repository — requires that *all* randomness flows from generators whose
seeds are visible at one place.  Before this module existed, the idiom
``self.rng = rng or np.random.default_rng(0)`` was scattered across the
consensus, network, intermix and replication layers: each silently forked
an independent seed-0 stream, and nothing distinguished "the caller chose
seed 0" from "nobody chose anything".

csm-lint rule DET001 now forbids constructing a generator anywhere but
here.  Components either accept a ``numpy.random.Generator`` from their
caller, or take the documented ambient stream explicitly::

    from repro.rng import default_stream

    self.rng = rng if rng is not None else default_stream()

Derived (child) streams — e.g. the execution engine's dedicated stream
seeded off the protocol rng — come from :func:`derived_stream`, which keeps
the parent/child draw relationship explicit and auditable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "default_stream", "derived_stream"]

#: Seed of the ambient stream used when a component is built without an
#: explicit generator.  Matches the historical ``default_rng(0)`` fallback,
#: so pre-refactor runs replay bit-identically.
DEFAULT_SEED = 0


def default_stream(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a fresh deterministic stream seeded with ``seed``.

    This is the only approved ambient-stream constructor (DET001).  Call it
    at most once per component, in the constructor, and only as the
    fallback for an absent caller-supplied generator.
    """
    return np.random.default_rng(int(seed))


def derived_stream(parent: np.random.Generator) -> np.random.Generator:
    """Fork a child stream whose seed is drawn from ``parent``.

    The draw advances ``parent`` by exactly one ``integers`` call, so the
    parent stream's position remains part of the replayable state.  This
    reproduces the historical ``default_rng(int(rng.integers(0, 2**63)))``
    idiom at a single audited site.
    """
    return np.random.default_rng(int(parent.integers(0, 2**63)))
