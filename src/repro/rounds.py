"""Shared round-protocol surface: the per-round record and the driver interface.

The client-session service (:mod:`repro.service`) must be able to drive any
round-executing backend — the coded :class:`~repro.core.protocol.CSMProtocol`
and the replication baselines behind
:class:`~repro.replication.protocol.ReplicationProtocol` — through one
interface.  :class:`RoundProtocol` is that interface, extracted from the
parts ``CSMProtocol`` and :mod:`repro.replication.base` used to duplicate:

* :class:`ProtocolRound` — the per-round history record (consensus decision
  plus execution result);
* verified output delivery (outputs of a round that failed verification are
  never handed to clients; the failure is recorded instead);
* the reporting helpers (``all_rounds_correct``, ``failed_rounds``,
  ``measured_throughput``).

Backends implement :meth:`RoundProtocol.run_rounds_batched`, which accepts
``B`` pre-grouped rounds of exactly one command per machine, plus (new in
this interface) the per-round client identities, so the service can attribute
each delivered output to the :class:`~repro.service.tickets.CommandTicket`
that submitted it instead of relying on reused ``client:k`` labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.machine.interface import StateMachine
    from repro.replication.base import RoundResult


@dataclass
class ProtocolRound:
    """One completed protocol round: the consensus decision plus execution result."""

    round_index: int
    commands: np.ndarray
    clients: list[str]
    result: RoundResult
    consensus_views: int = 0

    @property
    def correct(self) -> bool:
        return self.result.correct


class RoundProtocol(ABC):
    """A backend that executes pre-grouped rounds of one command per machine.

    Subclasses must set :attr:`machine` (the template
    :class:`~repro.machine.interface.StateMachine`), call
    :meth:`_init_round_state` during construction, and implement
    :meth:`num_machines` and :meth:`run_rounds_batched`.  Everything a client
    of the round history needs — verified delivery, failure book-keeping and
    the throughput report — is shared here.
    """

    machine: StateMachine

    def _init_round_state(self) -> None:
        """Initialise the shared history/delivery state (call from __init__)."""
        self.history: list[ProtocolRound] = []
        self.delivered_outputs: dict[str, list[np.ndarray]] = {}
        # Rounds whose verification failed never reach the clients; they are
        # recorded here (client id -> failed round indices) instead.
        self.failed_deliveries: dict[str, list[int]] = {}

    # -- backend surface ----------------------------------------------------------------
    @property
    @abstractmethod
    def num_machines(self) -> int:
        """``K`` — the number of logical state machines the backend hosts."""

    @abstractmethod
    def run_rounds_batched(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list[ProtocolRound]:
        """Execute ``B`` rounds of one command per machine, in order.

        ``client_rounds[b][k]`` names the client whose command occupies
        machine ``k`` in round ``b``; when omitted, backends fall back to the
        legacy ``client:k`` labels.  Returns the appended
        :class:`ProtocolRound` records.
        """

    def run_rounds_pipelined(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list[ProtocolRound]:
        """Execute ``B`` rounds with speculative decode/execute pipelining.

        Backends with a speculative fast path (the coded
        :class:`~repro.core.protocol.CSMProtocol`) override this to overlap
        the verified decode of round ``t`` with the execution of round
        ``t + 1``; the recorded history must stay bit-identical to
        :meth:`run_rounds_batched`.  The default simply delegates to the
        batched path, so replication baselines and other backends satisfy
        the contract trivially and the service layer can request
        ``pipeline=True`` against any backend.
        """
        return self.run_rounds_batched(command_batches, client_rounds)

    def freeze_failed_rounds(self) -> None:
        """Ask the backend to leave state unadvanced when a round fails.

        The retry-enabled service calls this once at construction: a backend
        whose failed rounds would otherwise advance state must freeze it so
        re-driving the same commands is idempotent.  The default is a no-op
        for backends where failed rounds already leave state untouched (the
        delegated-verification backend voids the round at genesis;
        replication baselines never fail verification).
        """

    # -- shared history/delivery --------------------------------------------------------
    def _record_round(
        self,
        commands: np.ndarray,
        clients: Sequence[str],
        result: RoundResult,
        view: int = 0,
    ) -> ProtocolRound:
        """Append the round record and deliver (only) verified outputs."""
        record = ProtocolRound(
            round_index=len(self.history),
            commands=commands,
            clients=list(clients),
            result=result,
            consensus_views=view,
        )
        self.history.append(record)
        if result.correct:
            for k, client_id in enumerate(record.clients):
                self.delivered_outputs.setdefault(client_id, []).append(
                    result.outputs[k].copy()
                )
        else:
            # A failed round must not hand unverified values to clients; it
            # is recorded so clients can observe the gap and resubmit.
            for client_id in record.clients:
                self.failed_deliveries.setdefault(client_id, []).append(
                    record.round_index
                )
        return record

    # -- reporting ----------------------------------------------------------------------
    @property
    def consensus_fast_path_disabled(self) -> int:
        """Rounds this backend decided on a consensus slow path.

        Backends driven by a :class:`~repro.consensus.interface.\
ConsensusProtocol` surface its ``fast_path_disabled`` counter here (rounds
        that fell back from the vectorised message plane to the sequential
        oracle); backends without a consensus layer report ``0``.  Experiment
        reports include the value so a silently disabled fast path shows up
        in the rows instead of only in the wall-clock.
        """
        consensus = getattr(self, "consensus", None)
        return int(getattr(consensus, "fast_path_disabled", 0))

    @property
    def all_rounds_correct(self) -> bool:
        return all(record.correct for record in self.history)

    @property
    def failed_rounds(self) -> int:
        """Number of completed rounds whose verification failed."""
        return sum(1 for record in self.history if not record.correct)

    def measured_throughput(self) -> float:
        """Average commands per unit per-node operation across completed rounds.

        A round that failed verification delivered *zero* commands to the
        clients, so it contributes ``0.0`` to the mean — not the throughput
        its operation count would have bought had it verified.  (Averaging
        failed rounds at their would-be throughput inflated the measure
        exactly when faults bite, disagreeing with the measurement harness,
        which keeps failed rounds in the operation denominator but never in
        the delivered-command numerator.)  Verified rounds with a non-finite
        throughput (degenerate zero-operation rounds) are excluded; if no
        round contributed at all the result is ``0.0`` — never ``inf``,
        which would poison downstream averages.
        """
        if not self.history:
            return 0.0
        throughputs: list[float] = []
        for record in self.history:
            if not record.correct:
                throughputs.append(0.0)
                continue
            value = record.result.throughput(self.num_machines)
            if np.isfinite(value):
                throughputs.append(value)
        return float(np.mean(throughputs)) if throughputs else 0.0
