"""State machine replication baselines (Section 3 of the paper).

Two classic schemes are implemented so the Table 1 comparison can be
regenerated empirically:

* :class:`~repro.replication.full.FullReplicationSMR` — every node stores and
  executes all ``K`` machines.  Security ``floor((N-1)/2)`` (majority of
  responses), storage efficiency 1, throughput ``Theta(1)``.
* :class:`~repro.replication.partial.PartialReplicationSMR` — the nodes are
  partitioned into ``K`` groups of ``q = N / K`` nodes and each group
  replicates one machine.  Storage efficiency and throughput improve by a
  factor ``K``, but security drops to ``floor((q-1)/2)`` because an adversary
  can concentrate its corruptions on a single group.

Both reuse the same consensus protocols as CSM and both deliver outputs to
clients through the ``b+1`` matching-responses rule implemented in
:mod:`repro.replication.client`.
"""

from repro.replication.client import OutputCollector, majority_value
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR
from repro.replication.base import RoundResult
from repro.replication.protocol import ReplicationProtocol

__all__ = [
    "OutputCollector",
    "majority_value",
    "FullReplicationSMR",
    "PartialReplicationSMR",
    "ReplicationProtocol",
    "RoundResult",
]
