"""Shared round-result record and helpers for the execution engines.

Every execution scheme (full replication, partial replication, CSM) produces
the same kind of per-round record so the experiments can compare them
uniformly: the outputs delivered to clients, the updated true states, whether
every client obtained the correct output, and the per-node field-operation
counts from which throughput is computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class RoundResult:
    """Outcome of executing one round under some scheme.

    Attributes
    ----------
    round_index:
        Round number.
    outputs:
        Array of shape ``(K, output_dim)`` with the outputs accepted by the
        clients (reference-correct outputs when ``correct`` is True).
    states:
        Array of shape ``(K, state_dim)`` with the true next states as
        recovered by the scheme (for CSM, the decoded states).
    correct:
        True when every client accepted exactly the reference output and
        every honest node's recovered state matches the reference execution.
    ops_per_node:
        Mapping from node id to the number of field operations that node
        performed in the execution phase (the ``c(rho) + c(psi) + c(chi)`` of
        the throughput definition).
    diagnostics:
        Free-form per-scheme details (decoded error positions, consensus
        view numbers, delegation audit outcomes, ...).
    """

    round_index: int
    outputs: np.ndarray
    states: np.ndarray
    correct: bool
    ops_per_node: dict[str, int] = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return int(sum(self.ops_per_node.values()))

    @property
    def mean_ops_per_node(self) -> float:
        if not self.ops_per_node:
            return 0.0
        return self.total_ops / len(self.ops_per_node)

    def throughput(self, num_machines: int) -> float:
        """Commands processed per unit per-node operation (the paper's lambda).

        ``lambda = K / (sum_i ops_i / N)``; larger is better.
        """
        if self.mean_ops_per_node == 0:
            return float("inf")
        return num_machines / self.mean_ops_per_node


class BatchExecutionMixin:
    """Default ``execute_rounds`` surface shared by every execution engine.

    The coded engine overrides this with the cached-matrix pipeline; the
    replication baselines execute every machine step at Python level with
    per-replica state dependencies, so there is no linear-algebraic structure
    to amortise across rounds — the mixin validates the batch once and runs
    the scalar rounds in order, letting harnesses and benchmarks drive every
    scheme through the same batched entry point.
    """

    def _validate_batch(self, commands_batch: np.ndarray) -> np.ndarray:
        """Canonicalise a command batch to ``(B, K, command_dim)``.

        A single ``(K, command_dim)`` round is promoted to a batch of one.
        """
        arr = self.field.array(commands_batch)
        if arr.ndim == 2:
            arr = arr[None, :, :]
        expected = (self.num_machines, self.machine.command_dim)
        if arr.ndim != 3 or arr.shape[1:] != expected:
            raise ConfigurationError(
                f"expected a command batch of shape (B, {expected[0]}, {expected[1]}), "
                f"got {arr.shape}"
            )
        return arr

    def execute_rounds(self, commands_batch: np.ndarray) -> list[RoundResult]:
        """Execute ``B`` rounds: ``(B, K, command_dim)`` commands, in order."""
        arr = self._validate_batch(commands_batch)
        return [self.execute_round(arr[b]) for b in range(arr.shape[0])]

    def noop_round(self) -> np.ndarray:
        """A full ``(K, command_dim)`` round of the machine's no-op command.

        The round scheduler pads individual idle machines with
        :meth:`~repro.machine.interface.StateMachine.noop_command`; this
        helper builds the degenerate all-idle round, used by tests and
        benchmarks to exercise empty scheduler ticks against any engine.
        """
        return np.tile(self.machine.noop_command(), (self.num_machines, 1))
