"""Partial (sharded) replication: disjoint node groups, one machine each.

The ``N`` nodes are partitioned into ``K`` groups of ``q = N / K`` nodes;
group ``k`` stores and executes only machine ``k``.  Storage efficiency and
throughput improve by a factor of ``K`` over full replication, but the
adversary only needs to corrupt a majority of a *single group* — ``q/2``
nodes — to break that machine, which is the security collapse the paper's
Table 1 records (``beta_partial = N / (2K)``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SecurityViolation
from repro.gf.field import OperationCounter
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, HonestBehavior
from repro.replication.base import BatchExecutionMixin, RoundResult
from repro.replication.client import OutputCollector
from repro.rng import default_stream


class PartialReplicationSMR(BatchExecutionMixin):
    """Partial-replication execution engine."""

    def __init__(
        self,
        machine: StateMachine,
        num_machines: int,
        node_ids: list[str],
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_machines < 1:
            raise ConfigurationError(f"need at least one machine, got {num_machines}")
        if len(node_ids) % num_machines != 0:
            raise ConfigurationError(
                f"partial replication needs K | N; got N={len(node_ids)}, K={num_machines}"
            )
        self.machine = machine
        self.field = machine.field
        self.num_machines = int(num_machines)
        self.node_ids = list(node_ids)
        self.behaviors = dict(behaviors or {})
        self.rng = rng if rng is not None else default_stream()
        self.group_size = len(node_ids) // num_machines
        # groups[k] is the list of node ids replicating machine k.
        self.groups: list[list[str]] = [
            self.node_ids[k * self.group_size : (k + 1) * self.group_size]
            for k in range(num_machines)
        ]
        self.states = np.tile(machine.initial_state, (num_machines, 1))
        self.replicas: dict[str, np.ndarray] = {}
        for k, group in enumerate(self.groups):
            for node_id in group:
                self.replicas[node_id] = machine.initial_state.copy()
        self.round_index = 0

    # -- structural metrics ----------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def storage_efficiency(self) -> float:
        """Each node stores one state, the network stores K distinct machines."""
        return float(self.num_machines)

    def security_bound(self, partially_synchronous: bool = False) -> int:
        """Faults tolerated if concentrated on one group: majority of ``q``."""
        if partially_synchronous:
            return (self.group_size - 1) // 3
        return (self.group_size - 1) // 2

    def group_of(self, node_id: str) -> int:
        for k, group in enumerate(self.groups):
            if node_id in group:
                return k
        raise ConfigurationError(f"node {node_id} is not in any group")

    def behavior_of(self, node_id: str) -> ByzantineBehavior:
        return self.behaviors.get(node_id, HonestBehavior())

    def faulty_in_group(self, k: int) -> int:
        return sum(1 for n in self.groups[k] if self.behavior_of(n).is_faulty)

    # -- execution ------------------------------------------------------------------------------
    def execute_round(self, commands: np.ndarray) -> RoundResult:
        commands_arr = self.field.array(commands)
        if commands_arr.shape != (self.num_machines, self.machine.command_dim):
            raise ConfigurationError(
                f"expected commands of shape {(self.num_machines, self.machine.command_dim)}, "
                f"got {commands_arr.shape}"
            )
        reference_states = np.zeros_like(self.states)
        reference_outputs = np.zeros(
            (self.num_machines, self.machine.output_dim), dtype=np.int64
        )
        for k in range(self.num_machines):
            next_state, output = self.machine.step(self.states[k], commands_arr[k])
            reference_states[k] = next_state
            reference_outputs[k] = output

        ops_per_node: dict[str, int] = {}
        correct = True
        accepted_outputs = np.zeros_like(reference_outputs)
        group_details = []
        for k, group in enumerate(self.groups):
            collector = OutputCollector(machine_index=k, round_index=self.round_index)
            for node_id in group:
                behavior = self.behavior_of(node_id)
                counter = OperationCounter()
                self.field.attach_counter(counter)
                try:
                    next_state, output = self.machine.step(
                        self.replicas[node_id], commands_arr[k]
                    )
                    if not behavior.is_faulty:
                        self.replicas[node_id] = next_state
                        collector.add_response(node_id, output)
                    else:
                        reported = behavior.transform_result(
                            self.field, node_id, output, self.rng
                        )
                        if reported is not None and not behavior.delays_message():
                            collector.add_response(node_id, reported)
                finally:
                    self.field.attach_counter(None)
                ops_per_node[node_id] = counter.total
            # The client of machine k only hears from group k; it needs a
            # majority of the group to agree (equivalently b_k + 1 matching
            # where b_k is the number of faults in the group, which the client
            # cannot know — so the standard rule is group-majority).
            threshold = self.group_size // 2 + 1
            accepted = None
            try:
                accepted = collector.accept_with_threshold(threshold)
                ok = accepted is not None and accepted == tuple(
                    int(v) for v in reference_outputs[k]
                )
                if accepted is not None and not ok:
                    raise SecurityViolation(
                        f"machine {k}: client accepted an incorrect output"
                    )
            except SecurityViolation:
                # Either the client accepted a single wrong value (kept in
                # ``accepted`` for the record) or two conflicting values both
                # reached the threshold (``accepted`` stays None: the client
                # accepts neither).
                ok = False
            if ok:
                accepted_outputs[k] = reference_outputs[k]
            else:
                correct = False
                if accepted is not None:
                    accepted_outputs[k] = np.array(accepted, dtype=np.int64)
            group_details.append(
                {"group": k, "faulty": self.faulty_in_group(k), "accepted_correct": ok}
            )

        self.states = reference_states
        self.round_index += 1
        return RoundResult(
            round_index=self.round_index - 1,
            outputs=accepted_outputs,
            states=reference_states.copy(),
            correct=correct,
            ops_per_node=ops_per_node,
            diagnostics={"groups": group_details, "group_size": self.group_size},
        )
