"""Client-side output acceptance.

In every scheme the client that submitted ``X_k(t)`` receives candidate
outputs ``Y^_ik(t)`` from several nodes and must decide which value to
accept.  The paper's rule for replication is to wait for ``b + 1`` matching
responses (so at least one comes from an honest node); equivalently, with all
``N`` (or all group) responses in hand, take the majority value.  The same
collector is reused by CSM, where honest nodes all report the identical
decoded output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SecurityViolation


def majority_value(values: list[tuple[int, ...]]) -> tuple[int, ...] | None:
    """The strictly most common value, or ``None`` on an empty list / tie."""
    if not values:
        return None
    counts = Counter(values)
    ranked = counts.most_common()
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None
    return ranked[0][0]


@dataclass
class OutputCollector:
    """Collects per-node candidate outputs for one (machine, round) pair."""

    machine_index: int
    round_index: int
    responses: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def add_response(self, node_id: str, output: np.ndarray) -> None:
        self.responses[str(node_id)] = tuple(int(v) for v in np.asarray(output).reshape(-1))

    def add_responses(self, responses: dict[str, np.ndarray]) -> None:
        """Record a whole round of candidate outputs at once (batched path)."""
        for node_id, output in responses.items():
            self.add_response(node_id, output)

    def accept_with_threshold(self, threshold: int) -> tuple[int, ...] | None:
        """Return the unique value supported by at least ``threshold`` nodes.

        This is the "wait for ``b + 1`` matching responses" rule: with
        ``threshold = b + 1`` a returned value is guaranteed to have an honest
        supporter, hence to be correct.  If two *distinct* values both reach
        the threshold, each was backed by at least one honest node under the
        assumed fault bound — mutually contradictory evidence that means the
        adversary exceeded the bound.  Accepting whichever value ``Counter``
        insertion order happens to rank first would silently pick one of two
        conflicting outputs, so that case raises :class:`SecurityViolation`
        instead.
        """
        counts = Counter(self.responses.values())
        reaching = [value for value, count in counts.most_common() if count >= threshold]
        if len(reaching) > 1:
            raise SecurityViolation(
                f"{len(reaching)} distinct outputs for machine {self.machine_index} "
                f"round {self.round_index} each reached the acceptance threshold "
                f"{threshold} — the fault bound is broken"
            )
        return reaching[0] if reaching else None

    def accept_majority(self) -> tuple[int, ...] | None:
        """Majority rule over all received responses."""
        return majority_value(list(self.responses.values()))

    def verify_against(self, expected: np.ndarray, threshold: int) -> bool:
        """True when the accepted value equals the reference output.

        Raises :class:`SecurityViolation` if a value was accepted but is
        wrong — i.e. the adversary actually broke the scheme at this fault
        level, which the security experiments record.
        """
        accepted = self.accept_with_threshold(threshold)
        if accepted is None:
            return False
        reference = tuple(int(v) for v in np.asarray(expected).reshape(-1))
        if accepted != reference:
            raise SecurityViolation(
                f"client accepted an incorrect output for machine {self.machine_index} "
                f"round {self.round_index}"
            )
        return True
