"""Full replication: every node stores and executes every state machine.

Per round, every honest node executes the agreed command of all ``K``
machines on its local replica of all ``K`` states and sends each output to
the submitting client; a client accepts a value once ``b + 1`` matching
responses arrive.  Security is therefore ``floor((N - 1) / 2)`` in a
synchronous network (``floor((N - 1) / 3)`` with PBFT in the partially
synchronous one), storage efficiency is 1 (each node stores all ``K`` states
in a memory of ``K`` state-sizes, normalised per state-size of storage), and
per-node work grows with ``K`` so throughput does not scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, SecurityViolation
from repro.gf.field import OperationCounter
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, HonestBehavior
from repro.replication.base import BatchExecutionMixin, RoundResult
from repro.replication.client import OutputCollector
from repro.rng import default_stream


class FullReplicationSMR(BatchExecutionMixin):
    """Full-replication execution engine.

    Parameters
    ----------
    machine:
        The template state machine (all ``K`` machines share its transition).
    num_machines:
        ``K``.
    node_ids:
        The ``N`` node identifiers.
    behaviors:
        Mapping from node id to Byzantine behaviour (missing = honest).
    """

    def __init__(
        self,
        machine: StateMachine,
        num_machines: int,
        node_ids: list[str],
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_machines < 1:
            raise ConfigurationError(f"need at least one machine, got {num_machines}")
        if not node_ids:
            raise ConfigurationError("need at least one node")
        self.machine = machine
        self.field = machine.field
        self.num_machines = int(num_machines)
        self.node_ids = list(node_ids)
        self.behaviors = dict(behaviors or {})
        self.rng = rng if rng is not None else default_stream()
        # Reference (true) states, and each node's replica of all K states.
        self.states = np.tile(machine.initial_state, (num_machines, 1))
        self.replicas: dict[str, np.ndarray] = {
            node_id: self.states.copy() for node_id in self.node_ids
        }
        self.round_index = 0

    # -- structural metrics --------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_faulty(self) -> int:
        return sum(1 for n in self.node_ids if self.behavior_of(n).is_faulty)

    @property
    def storage_efficiency(self) -> float:
        """K states' worth of data stored per node of K-state capacity: always 1."""
        return 1.0

    def security_bound(self, partially_synchronous: bool = False) -> int:
        if partially_synchronous:
            return (self.num_nodes - 1) // 3
        return (self.num_nodes - 1) // 2

    def behavior_of(self, node_id: str) -> ByzantineBehavior:
        return self.behaviors.get(node_id, HonestBehavior())

    # -- execution -------------------------------------------------------------------------
    def execute_round(self, commands: np.ndarray) -> RoundResult:
        """Execute one agreed command per machine at every node."""
        commands_arr = self.field.array(commands)
        if commands_arr.shape != (self.num_machines, self.machine.command_dim):
            raise ConfigurationError(
                f"expected commands of shape {(self.num_machines, self.machine.command_dim)}, "
                f"got {commands_arr.shape}"
            )
        # Reference execution (ground truth used for verification only).
        reference_states = np.zeros_like(self.states)
        reference_outputs = np.zeros(
            (self.num_machines, self.machine.output_dim), dtype=np.int64
        )
        for k in range(self.num_machines):
            next_state, output = self.machine.step(self.states[k], commands_arr[k])
            reference_states[k] = next_state
            reference_outputs[k] = output

        ops_per_node: dict[str, int] = {}
        collectors = [
            OutputCollector(machine_index=k, round_index=self.round_index)
            for k in range(self.num_machines)
        ]
        for node_id in self.node_ids:
            behavior = self.behavior_of(node_id)
            counter = OperationCounter()
            self.field.attach_counter(counter)
            try:
                replica = self.replicas[node_id]
                for k in range(self.num_machines):
                    next_state, output = self.machine.step(replica[k], commands_arr[k])
                    if not behavior.is_faulty:
                        replica[k] = next_state
                        collectors[k].add_response(node_id, output)
                    else:
                        reported = behavior.transform_result(
                            self.field, node_id, output, self.rng
                        )
                        if reported is not None and not behavior.delays_message():
                            collectors[k].add_response(node_id, reported)
            finally:
                self.field.attach_counter(None)
            ops_per_node[node_id] = counter.total

        # Client acceptance: b + 1 matching responses.
        threshold = self.num_faulty + 1
        correct = True
        accepted_outputs = np.zeros_like(reference_outputs)
        for k in range(self.num_machines):
            try:
                ok = collectors[k].verify_against(reference_outputs[k], threshold)
            except SecurityViolation:
                ok = False
            if not ok:
                correct = False
                try:
                    accepted = collectors[k].accept_with_threshold(threshold)
                except SecurityViolation:
                    # Two conflicting outputs both reached the threshold: the
                    # client accepts neither value.
                    accepted = None
                if accepted is not None:
                    accepted_outputs[k] = np.array(accepted, dtype=np.int64)
            else:
                accepted_outputs[k] = reference_outputs[k]

        self.states = reference_states
        self.round_index += 1
        return RoundResult(
            round_index=self.round_index - 1,
            outputs=accepted_outputs,
            states=reference_states.copy(),
            correct=correct,
            ops_per_node=ops_per_node,
            diagnostics={"threshold": threshold, "num_faulty": self.num_faulty},
        )
