"""Round-protocol facade over the replication baseline engines.

The replication engines (:class:`~repro.replication.full.FullReplicationSMR`,
:class:`~repro.replication.partial.PartialReplicationSMR`) execute rounds but
keep no client-facing history — the experiment harnesses used to drive them
directly and interpret the raw :class:`~repro.replication.base.RoundResult`
records.  :class:`ReplicationProtocol` wraps any such engine in the shared
:class:`~repro.rounds.RoundProtocol` surface, so the client-session service
(:mod:`repro.service`) can serve ragged traffic over a replication backend
exactly as it does over the coded :class:`~repro.core.protocol.CSMProtocol`:
same command tickets, same verified-only delivery, same failure book-keeping.

The baselines have no consensus phase of their own in this harness (the
paper runs the identical consensus protocol in front of every scheme, so the
comparison isolates the execution phase); the facade therefore records every
round with ``consensus_views = 0``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rounds import ProtocolRound, RoundProtocol


class ReplicationProtocol(RoundProtocol):
    """Drives a replication execution engine through the round-protocol API.

    Parameters
    ----------
    engine:
        Any engine exposing the :class:`~repro.replication.base.\
BatchExecutionMixin` surface (``machine``, ``num_machines``,
        ``execute_rounds``) — the full- and partial-replication baselines,
        or the coded engine itself when consensus is out of scope.
    """

    def __init__(self, engine) -> None:
        for attr in ("machine", "num_machines", "execute_rounds"):
            if not hasattr(engine, attr):
                raise ConfigurationError(
                    f"engine {type(engine).__name__} lacks the round-execution "
                    f"surface (missing {attr!r})"
                )
        self.engine = engine
        self.machine = engine.machine
        self._init_round_state()

    @property
    def num_machines(self) -> int:
        return int(self.engine.num_machines)

    def run_rounds_batched(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list[ProtocolRound]:
        """Execute ``B`` pre-grouped rounds on the wrapped engine, in order.

        Every batch is validated *before* any round executes, so a malformed
        batch fails fast instead of leaving earlier rounds half-recorded.
        ``client_rounds`` attributes each machine's slot to the submitting
        client (the service's session ids); without it the legacy
        ``client:k`` labels are used.
        """
        batches = [self._canonical_round(batch) for batch in command_batches]
        if not batches:
            return []
        if client_rounds is None:
            client_rounds = [
                [f"client:{k}" for k in range(self.num_machines)]
                for _ in batches
            ]
        if len(client_rounds) != len(batches):
            raise ConfigurationError(
                f"{len(batches)} command rounds but {len(client_rounds)} client "
                "rounds"
            )
        results = self.engine.execute_rounds(np.stack(batches))
        return [
            self._record_round(commands, clients, result)
            for commands, clients, result in zip(batches, client_rounds, results)
        ]

    def _canonical_round(self, commands: np.ndarray) -> np.ndarray:
        """Validate one round to ``(K, command_dim)`` via the engine's check."""
        arr = self.engine._validate_batch(commands)
        if arr.shape[0] != 1:
            raise ConfigurationError(
                f"expected one round of shape ({self.num_machines}, "
                f"{self.machine.command_dim}), got a batch of {arr.shape[0]} rounds"
            )
        return arr[0]
