"""Simulated network substrate.

The paper assumes a fully connected network of compute nodes with
authenticated (signed) messages and one of two timing models:

* **synchronous** — a fixed, known upper bound on message latency;
* **partially synchronous** — unbounded delay until an unknown global
  stabilisation time (GST), synchronous afterwards.

This package provides a discrete-event simulator with both delay models,
signed messages (simulated authentication: forging another node's signature
is detectable, exactly the "authenticated Byzantine fault" assumption), node
mailboxes, and a library of Byzantine behaviours that the protocol layers
inject into faulty nodes (wrong results, silence, equivocation, delays,
consensus misbehaviour).
"""

from repro.net.message import Message, MessageKind
from repro.net.signatures import KeyRegistry, SignatureError
from repro.net.latency import (
    DelayModel,
    SynchronousDelay,
    PartiallySynchronousDelay,
)
from repro.net.simulator import EventScheduler
from repro.net.network import SimulatedNetwork, DeliveryRecord
from repro.net.byzantine import (
    ByzantineBehavior,
    HonestBehavior,
    CorruptResultBehavior,
    SilentBehavior,
    EquivocatingBehavior,
    DelayingBehavior,
    RandomGarbageBehavior,
    behavior_from_name,
)

__all__ = [
    "Message",
    "MessageKind",
    "KeyRegistry",
    "SignatureError",
    "DelayModel",
    "SynchronousDelay",
    "PartiallySynchronousDelay",
    "EventScheduler",
    "SimulatedNetwork",
    "DeliveryRecord",
    "ByzantineBehavior",
    "HonestBehavior",
    "CorruptResultBehavior",
    "SilentBehavior",
    "EquivocatingBehavior",
    "DelayingBehavior",
    "RandomGarbageBehavior",
    "behavior_from_name",
]
