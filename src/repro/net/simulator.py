"""A minimal discrete-event scheduler.

The protocol layers are round-structured, but message delivery times still
matter: in the partially synchronous model a message can arrive after the
receiver's timeout, and the experiments measure how many honest contributions
arrive in time.  The :class:`EventScheduler` keeps a priority queue of timed
events and advances simulated time monotonically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")


class EventScheduler:
    """Priority-queue driven simulated clock."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = _Event(self._now + float(delay), next(self._counter), action, label)
        heapq.heappush(self._queue, event)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        event = _Event(float(time), next(self._counter), action, label)
        heapq.heappush(self._queue, event)

    def run_until(self, deadline: float) -> int:
        """Process events up to and including ``deadline``; returns the count."""
        processed = 0
        while self._queue and self._queue[0].time <= deadline:
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action()
            processed += 1
            self.processed_events += 1
        self._now = max(self._now, float(deadline))
        return processed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Process every pending event (new ones included) up to a safety cap."""
        processed = 0
        while self._queue:
            if processed >= max_events:
                raise RuntimeError(
                    f"event cap of {max_events} exceeded; likely a scheduling loop"
                )
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action()
            processed += 1
            self.processed_events += 1
        return processed

    def advance_to(self, time: float) -> None:
        """Move the clock forward without processing events (idle waiting)."""
        if time < self._now:
            raise ValueError(f"cannot move time backwards to {time} from {self._now}")
        self._now = float(time)

    @property
    def pending(self) -> int:
        return len(self._queue)
