"""Network delay models: synchronous and partially synchronous.

The two timing assumptions of Section 2.1 are captured as delay models that
assign a delivery latency to every message:

* :class:`SynchronousDelay` — latency is drawn uniformly from
  ``[min_delay, max_delay]``; ``max_delay`` is *known* to the protocols, so a
  round timeout of ``max_delay`` is guaranteed to collect every honest
  message.
* :class:`PartiallySynchronousDelay` — before the (unknown) global
  stabilisation time GST, latency can be arbitrarily large (modelled as an
  extra heavy-tailed delay); after GST the network behaves synchronously.
  Protocols cannot rely on any timeout before GST, which is why the paper's
  partially synchronous bounds use ``N - b`` responses and PBFT-style
  consensus.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class DelayModel(ABC):
    """Assigns a delivery delay to each message send."""

    @abstractmethod
    def sample_delay(self, send_time: float, rng: np.random.Generator) -> float:
        """Delay (in simulated time units) for a message sent at ``send_time``."""

    def sample_delays(
        self, send_time: float, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """``count`` delays for messages all sent at ``send_time``.

        The contract that makes the vectorised message plane possible:
        the returned array — and the generator state left behind — must be
        bit-identical to ``count`` sequential :meth:`sample_delay` calls.
        The default loops; models whose distribution admits an exact
        vectorised draw (numpy's ``Generator.uniform(size=n)`` consumes the
        stream identically to ``n`` scalar draws) override it.
        """
        if count <= 0:
            return np.empty(0, dtype=float)
        return np.array(
            [self.sample_delay(send_time, rng) for _ in range(count)], dtype=float
        )

    @property
    @abstractmethod
    def synchronous_bound(self) -> float:
        """The post-stabilisation latency bound ``Delta`` known to protocols."""

    def is_synchronous_at(self, time: float) -> bool:
        """Whether the synchronous bound already holds at ``time``."""
        return True


@dataclass
class SynchronousDelay(DelayModel):
    """Bounded-latency network with a known bound.

    Attributes
    ----------
    max_delay:
        Known upper bound on latency (the protocols' round timeout).
    min_delay:
        Lower bound, purely cosmetic for realism.
    """

    max_delay: float = 1.0
    min_delay: float = 0.1

    def __post_init__(self) -> None:
        if not 0 <= self.min_delay <= self.max_delay:
            raise ValueError(
                f"need 0 <= min_delay <= max_delay, got {self.min_delay}, {self.max_delay}"
            )

    def sample_delay(self, send_time: float, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.min_delay, self.max_delay))

    def sample_delays(
        self, send_time: float, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count <= 0:
            return np.empty(0, dtype=float)
        return rng.uniform(self.min_delay, self.max_delay, size=count)

    @property
    def synchronous_bound(self) -> float:
        return self.max_delay


@dataclass
class PartiallySynchronousDelay(DelayModel):
    """Unbounded latency before GST, synchronous afterwards.

    Attributes
    ----------
    gst:
        Global stabilisation time (unknown to the protocols).
    max_delay:
        Post-GST latency bound.
    pre_gst_extra:
        Scale of the additional exponential delay applied to messages sent
        before GST; individual messages can be delayed far beyond any fixed
        timeout, which is what breaks timeout-based fault detection.
    """

    gst: float = 10.0
    max_delay: float = 1.0
    min_delay: float = 0.1
    pre_gst_extra: float = 50.0

    def sample_delay(self, send_time: float, rng: np.random.Generator) -> float:
        base = float(rng.uniform(self.min_delay, self.max_delay))
        if send_time >= self.gst:
            return base
        # Before GST, messages may be delayed arbitrarily; they are still
        # delivered eventually (no message loss), as the model requires.
        extra = float(rng.exponential(self.pre_gst_extra))
        # Delivery never happens before GST for heavily delayed messages,
        # so a receiver cannot distinguish slow honest senders from silent
        # Byzantine ones.
        return base + extra

    def sample_delays(
        self, send_time: float, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count <= 0:
            return np.empty(0, dtype=float)
        if send_time >= self.gst:
            return rng.uniform(self.min_delay, self.max_delay, size=count)
        # Pre-GST the scalar path interleaves one uniform and one exponential
        # draw per message; a two-pass vectorised draw would consume the
        # stream in a different order, so bit-identity forces the loop here.
        return np.array(
            [self.sample_delay(send_time, rng) for _ in range(count)], dtype=float
        )

    @property
    def synchronous_bound(self) -> float:
        return self.max_delay

    def is_synchronous_at(self, time: float) -> bool:
        return time >= self.gst
