"""Messages exchanged between nodes and clients.

All inter-node communication in the protocols is carried by
:class:`Message` objects.  A message is signed by its sender (see
:mod:`repro.net.signatures`); the "authenticated Byzantine fault" model of
the paper means a faulty node can say anything *in its own name* but cannot
forge another node's signature without detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class MessageKind(str, Enum):
    """Tags identifying the protocol phase a message belongs to."""

    # Client traffic
    CLIENT_COMMAND = "client-command"
    CLIENT_RESPONSE = "client-response"
    # Consensus phase
    CONSENSUS_PROPOSAL = "consensus-proposal"
    CONSENSUS_VOTE = "consensus-vote"
    CONSENSUS_PREPARE = "consensus-prepare"
    CONSENSUS_COMMIT = "consensus-commit"
    # Execution phase
    CODED_RESULT = "coded-result"
    REPLICA_RESULT = "replica-result"
    # INTERMIX / delegation
    WORKER_RESULT = "worker-result"
    AUDIT_QUERY = "audit-query"
    AUDIT_RESPONSE = "audit-response"
    AUDIT_VERDICT = "audit-verdict"


@dataclass
class Message:
    """A single signed message.

    Attributes
    ----------
    sender:
        Identifier of the sending node (or ``client:<id>`` for clients).
    recipient:
        Identifier of the receiving node, or ``"*"`` for broadcast.
    kind:
        Protocol phase tag.
    round_index:
        The state machine round the message belongs to.
    payload:
        Arbitrary JSON-like content (numpy arrays are allowed; they are
        normalised to tuples when the signature digest is computed).
    signature:
        Filled in by :class:`~repro.net.signatures.KeyRegistry.sign`.
    """

    sender: str
    recipient: str
    kind: MessageKind
    round_index: int
    payload: Any
    signature: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def signing_view(self) -> tuple:
        """The canonical tuple covered by the signature.

        The recipient is deliberately *excluded* so that a broadcast message
        carries one signature valid for every copy; equivocation (sending
        different payloads to different recipients) therefore produces two
        validly-signed but conflicting messages — which is exactly what the
        protocols must tolerate or detect, as in the paper.
        """
        return (
            self.sender,
            self.kind.value,
            int(self.round_index),
            _normalise(self.payload),
        )

    def with_recipient(self, recipient: str) -> "Message":
        """Copy of this message addressed to a specific recipient."""
        return Message(
            sender=self.sender,
            recipient=recipient,
            kind=self.kind,
            round_index=self.round_index,
            payload=self.payload,
            signature=self.signature,
            metadata=dict(self.metadata),
        )


def _normalise(value: Any) -> Any:
    """Convert payloads into hashable, deterministic structures for signing."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, tuple(int(v) for v in value.reshape(-1)))
    if isinstance(value, dict):
        return tuple(sorted((str(k), _normalise(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, (int, str, bool, float)) or value is None:
        return value
    return str(value)
