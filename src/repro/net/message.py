"""Messages exchanged between nodes and clients.

All inter-node communication in the protocols is carried by
:class:`Message` objects.  A message is signed by its sender (see
:mod:`repro.net.signatures`); the "authenticated Byzantine fault" model of
the paper means a faulty node can say anything *in its own name* but cannot
forge another node's signature without detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np


class MessageKind(str, Enum):
    """Tags identifying the protocol phase a message belongs to."""

    # Client traffic
    CLIENT_COMMAND = "client-command"
    CLIENT_RESPONSE = "client-response"
    # Consensus phase
    CONSENSUS_PROPOSAL = "consensus-proposal"
    CONSENSUS_VOTE = "consensus-vote"
    CONSENSUS_PREPARE = "consensus-prepare"
    CONSENSUS_COMMIT = "consensus-commit"
    # Execution phase
    CODED_RESULT = "coded-result"
    REPLICA_RESULT = "replica-result"
    # INTERMIX / delegation
    WORKER_RESULT = "worker-result"
    AUDIT_QUERY = "audit-query"
    AUDIT_RESPONSE = "audit-response"
    AUDIT_VERDICT = "audit-verdict"


@dataclass
class Message:
    """A single signed message.

    Attributes
    ----------
    sender:
        Identifier of the sending node (or ``client:<id>`` for clients).
    recipient:
        Identifier of the receiving node, or ``"*"`` for broadcast.
    kind:
        Protocol phase tag.
    round_index:
        The state machine round the message belongs to.
    payload:
        Arbitrary JSON-like content (numpy arrays are allowed; they are
        normalised to tuples when the signature digest is computed).
    signature:
        Filled in by :class:`~repro.net.signatures.KeyRegistry.sign`.
    """

    sender: str
    recipient: str
    kind: MessageKind
    round_index: int
    payload: Any
    signature: str | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def signing_view(self) -> tuple:
        """The canonical tuple covered by the signature.

        The recipient is deliberately *excluded* so that a broadcast message
        carries one signature valid for every copy; equivocation (sending
        different payloads to different recipients) therefore produces two
        validly-signed but conflicting messages — which is exactly what the
        protocols must tolerate or detect, as in the paper.
        """
        return (
            self.sender,
            self.kind.value,
            int(self.round_index),
            _normalise(self.payload),
        )

    def with_recipient(self, recipient: str) -> "Message":
        """Copy of this message addressed to a specific recipient."""
        return Message(
            sender=self.sender,
            recipient=recipient,
            kind=self.kind,
            round_index=self.round_index,
            payload=self.payload,
            signature=self.signature,
            metadata=dict(self.metadata),
        )


@dataclass
class PhaseBatch:
    """Struct-of-arrays view of one consensus phase's broadcasts.

    One :class:`Message` template per broadcast *action* (there are at most
    ``N`` actions per phase — one per sender) plus columns over the
    ``A x N`` action-by-recipient copy grid.  The vectorised message plane
    tallies quorums and visibility directly on these arrays instead of
    materialising ``A * N`` message copies and draining mailboxes.

    Attributes
    ----------
    kind / round_index / send_time:
        Phase identity: every action in a batch shares them.
    templates:
        The signed broadcast messages (recipient ``"*"``), in dispatch order.
    sender_index:
        ``(A,)`` — index of each action's sender in the plane's node order.
    views:
        ``(A,)`` — the consensus view each action was sent in.
    payload_ref:
        ``(A,)`` — index of each action's payload in the plane's payload
        table (the batch analogue of the digest column).
    valid:
        ``(A,)`` bool — whether the action's signature verified; an invalid
        broadcast still reaches the sender's own mailbox but no other node.
    delivery_time:
        ``(A, N)`` — per-copy delivery times; the sender's own copy is
        delivered at ``send_time`` without consuming an rng draw.
    """

    kind: "MessageKind"
    round_index: int
    send_time: float
    templates: list["Message"]
    sender_index: np.ndarray
    views: np.ndarray
    payload_ref: np.ndarray
    valid: np.ndarray
    delivery_time: np.ndarray

    @property
    def num_actions(self) -> int:
        return len(self.templates)

    @property
    def num_nodes(self) -> int:
        return int(self.delivery_time.shape[1]) if self.num_actions else 0

    def self_mask(self) -> np.ndarray:
        """``(A, N)`` bool — True at each action's own-sender copy."""
        mask = np.zeros(self.delivery_time.shape, dtype=bool)
        if self.num_actions:
            mask[np.arange(self.num_actions), self.sender_index] = True
        return mask


def _normalise(value: Any) -> Any:
    """Convert payloads into hashable, deterministic structures for signing."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, tuple(int(v) for v in value.reshape(-1)))
    if isinstance(value, dict):
        return tuple(sorted((str(k), _normalise(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, (int, str, bool, float)) or value is None:
        return value
    return str(value)
