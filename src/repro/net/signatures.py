"""Simulated message authentication.

The paper assumes *authenticated* Byzantine faults: every message is
cryptographically signed, so impersonating another node is easily
detectable.  For a simulation we do not need real public-key cryptography —
we only need the two properties the proofs use:

1. an honest verifier can check that a message claimed to be from node ``i``
   really was produced with node ``i``'s key, and
2. a Byzantine node cannot produce a valid signature for another node.

Both are provided by keyed hashing (HMAC-style) with per-node secret keys
held by the :class:`KeyRegistry`.  Byzantine nodes in the simulation only
ever receive their *own* key, so any forgery attempt fails verification.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Iterable, Sequence

from repro.exceptions import CSMError
from repro.net.message import Message, _normalise


class SignatureError(CSMError):
    """A message failed signature verification."""


class KeyRegistry:
    """Issues per-node keys and signs/verifies messages with them."""

    def __init__(self, secret_seed: int = 0) -> None:
        self._secret_seed = int(secret_seed)
        self._keys: dict[str, bytes] = {}

    def register(self, node_id: str) -> bytes:
        """Create (or return) the secret key for ``node_id``."""
        node_id = str(node_id)
        if node_id not in self._keys:
            material = f"key:{self._secret_seed}:{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()
        return self._keys[node_id]

    def known_identities(self) -> list[str]:
        return sorted(self._keys)

    # -- signing ------------------------------------------------------------------
    def sign(self, message: Message) -> Message:
        """Sign a message in place (and return it) using the sender's key."""
        key = self.register(message.sender)
        message.signature = self._digest(key, message)
        return message

    def sign_as(self, message: Message, forged_identity: str) -> Message:
        """Simulate a forgery attempt: sign with ``forged_identity``'s *claimed* name
        but with the actual key of the message sender.

        The resulting message will fail verification, demonstrating why the
        authenticated-fault model rules impersonation out.
        """
        key = self.register(message.sender)
        forged = Message(
            sender=forged_identity,
            recipient=message.recipient,
            kind=message.kind,
            round_index=message.round_index,
            payload=message.payload,
        )
        forged.signature = self._digest(key, forged)
        return forged

    def verify(self, message: Message) -> bool:
        """Return ``True`` iff the signature matches the claimed sender."""
        if message.signature is None:
            return False
        if message.sender not in self._keys:
            return False
        expected = self._digest(self._keys[message.sender], message)
        return hmac.compare_digest(expected, message.signature)

    # -- batch operations ----------------------------------------------------------
    def sign_batch(
        self,
        messages: Iterable[Message],
        norm_cache: dict[int, Any] | None = None,
    ) -> None:
        """Sign many messages in place, amortising payload normalisation.

        ``norm_cache`` maps ``id(payload)`` to its normalised signing form;
        consensus phases share one payload object across a whole broadcast
        (and across the echo/prepare/commit votes for it), so the cache turns
        ``O(copies)`` normalisations into ``O(distinct payloads)``.  The
        caller owns the cache and must keep every cached payload object alive
        while it lives (the message plane's payload table does), otherwise
        ``id`` reuse could alias entries.  Signatures are byte-identical to
        per-message :meth:`sign`.
        """
        for message in messages:
            key = self.register(message.sender)
            message.signature = self._digest(key, message, norm_cache)

    def verify_batch(
        self,
        messages: Sequence[Message],
        norm_cache: dict[int, Any] | None = None,
    ) -> list[bool]:
        """Per-message :meth:`verify` results, sharing ``norm_cache``."""
        out: list[bool] = []
        for message in messages:
            if message.signature is None or message.sender not in self._keys:
                out.append(False)
                continue
            expected = self._digest(self._keys[message.sender], message, norm_cache)
            out.append(hmac.compare_digest(expected, message.signature))
        return out

    def require_valid(self, message: Message) -> Message:
        """Raise :class:`SignatureError` unless the message verifies."""
        if not self.verify(message):
            raise SignatureError(
                f"message from '{message.sender}' ({message.kind.value}) failed "
                "signature verification"
            )
        return message

    # -- internals ------------------------------------------------------------------
    @staticmethod
    def _digest(
        key: bytes, message: Message, norm_cache: dict[int, Any] | None = None
    ) -> str:
        if norm_cache is None:
            view = message.signing_view()
        else:
            payload_id = id(message.payload)
            norm = norm_cache.get(payload_id)
            if norm is None:
                norm = _normalise(message.payload)
                norm_cache[payload_id] = norm
            view = (message.sender, message.kind.value, int(message.round_index), norm)
        canonical = repr(view).encode()
        return hmac.new(key, canonical, hashlib.sha256).hexdigest()
