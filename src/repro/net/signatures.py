"""Simulated message authentication.

The paper assumes *authenticated* Byzantine faults: every message is
cryptographically signed, so impersonating another node is easily
detectable.  For a simulation we do not need real public-key cryptography —
we only need the two properties the proofs use:

1. an honest verifier can check that a message claimed to be from node ``i``
   really was produced with node ``i``'s key, and
2. a Byzantine node cannot produce a valid signature for another node.

Both are provided by keyed hashing (HMAC-style) with per-node secret keys
held by the :class:`KeyRegistry`.  Byzantine nodes in the simulation only
ever receive their *own* key, so any forgery attempt fails verification.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import CSMError
from repro.net.message import Message


class SignatureError(CSMError):
    """A message failed signature verification."""


class KeyRegistry:
    """Issues per-node keys and signs/verifies messages with them."""

    def __init__(self, secret_seed: int = 0) -> None:
        self._secret_seed = int(secret_seed)
        self._keys: dict[str, bytes] = {}

    def register(self, node_id: str) -> bytes:
        """Create (or return) the secret key for ``node_id``."""
        node_id = str(node_id)
        if node_id not in self._keys:
            material = f"key:{self._secret_seed}:{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()
        return self._keys[node_id]

    def known_identities(self) -> list[str]:
        return sorted(self._keys)

    # -- signing ------------------------------------------------------------------
    def sign(self, message: Message) -> Message:
        """Sign a message in place (and return it) using the sender's key."""
        key = self.register(message.sender)
        message.signature = self._digest(key, message)
        return message

    def sign_as(self, message: Message, forged_identity: str) -> Message:
        """Simulate a forgery attempt: sign with ``forged_identity``'s *claimed* name
        but with the actual key of the message sender.

        The resulting message will fail verification, demonstrating why the
        authenticated-fault model rules impersonation out.
        """
        key = self.register(message.sender)
        forged = Message(
            sender=forged_identity,
            recipient=message.recipient,
            kind=message.kind,
            round_index=message.round_index,
            payload=message.payload,
        )
        forged.signature = self._digest(key, forged)
        return forged

    def verify(self, message: Message) -> bool:
        """Return ``True`` iff the signature matches the claimed sender."""
        if message.signature is None:
            return False
        if message.sender not in self._keys:
            return False
        expected = self._digest(self._keys[message.sender], message)
        return hmac.compare_digest(expected, message.signature)

    def require_valid(self, message: Message) -> Message:
        """Raise :class:`SignatureError` unless the message verifies."""
        if not self.verify(message):
            raise SignatureError(
                f"message from '{message.sender}' ({message.kind.value}) failed "
                "signature verification"
            )
        return message

    # -- internals ------------------------------------------------------------------
    @staticmethod
    def _digest(key: bytes, message: Message) -> str:
        canonical = repr(message.signing_view()).encode()
        return hmac.new(key, canonical, hashlib.sha256).hexdigest()
