"""Byzantine behaviour library.

A Byzantine node can deviate arbitrarily from the protocol; the paper's
analysis is driven by a handful of canonical deviations, each of which is
modelled here as a strategy object the protocol layers consult whenever a
faulty node is about to act:

* :class:`CorruptResultBehavior` — report a wrong (but well-formed) value;
  this is the deviation the Reed–Solomon decoding must correct.
* :class:`SilentBehavior` — send nothing; in the partially synchronous
  setting this is indistinguishable from a slow honest node and forces the
  ``N - b`` decoding rule.
* :class:`EquivocatingBehavior` — send *different* wrong values to different
  recipients; the paper notes the reconstructed polynomials at honest nodes
  remain identical despite equivocation.
* :class:`DelayingBehavior` — send the correct value but too late to be
  counted in the round.
* :class:`RandomGarbageBehavior` — uniformly random values each time,
  the worst case for any detection heuristic.

Honest nodes use :class:`HonestBehavior`, which returns values unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gf.field import Field


class ByzantineBehavior(ABC):
    """Strategy deciding what a (possibly faulty) node actually reports."""

    #: Whether the protocol should treat this node as faulty when counting b.
    is_faulty: bool = True

    @abstractmethod
    def transform_result(
        self,
        field: Field,
        node_id: str,
        true_value: np.ndarray,
        rng: np.random.Generator,
        recipient: str | None = None,
    ) -> np.ndarray | None:
        """Return the value the node reports (``None`` means "stay silent")."""

    def delays_message(self) -> bool:
        """Whether the node's messages should arrive after the round timeout."""
        return False

    def corrupts_consensus_vote(self) -> bool:
        """Whether the node votes incorrectly / withholds votes in consensus."""
        return self.is_faulty


class HonestBehavior(ByzantineBehavior):
    """Follows the protocol exactly."""

    is_faulty = False

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return np.array(true_value, dtype=np.int64, copy=True)

    def corrupts_consensus_vote(self) -> bool:
        return False


class CorruptResultBehavior(ByzantineBehavior):
    """Adds a fixed non-zero offset to every reported component."""

    def __init__(self, offset: int = 1) -> None:
        if int(offset) == 0:
            raise ValueError("corruption offset must be non-zero")
        self.offset = int(offset)

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        return field.add(value, np.full_like(value, field.element(self.offset)))


class RandomGarbageBehavior(ByzantineBehavior):
    """Reports uniformly random field elements."""

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        return field.random_array(rng, value.shape)


class SilentBehavior(ByzantineBehavior):
    """Never sends its execution-phase messages."""

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return None


class EquivocatingBehavior(ByzantineBehavior):
    """Sends a different corrupted value to every recipient.

    The corruption is a deterministic function of the recipient so tests can
    assert that two honest receivers really did observe conflicting values,
    yet both still decode the same correct polynomial (Section 5.2).
    """

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        salt = abs(hash((node_id, recipient))) % (field.order - 1) + 1
        return field.add(value, np.full_like(value, field.element(salt)))


class DelayingBehavior(ByzantineBehavior):
    """Sends correct values, but after the round deadline.

    In the synchronous model a delayed message is equivalent to silence for
    the round; in the partially synchronous model before GST it is
    indistinguishable from an honest slow node.
    """

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return np.array(true_value, dtype=np.int64, copy=True)

    def delays_message(self) -> bool:
        return True


class FaultOnsetBehavior(ByzantineBehavior):
    """Reports honestly until an onset round, then turns Byzantine.

    Wraps an ``inner`` behaviour that takes over from the
    ``onset_round``-th execution-phase report onwards (0-based, counted per
    :meth:`transform_result` call — i.e. per round under the engines'
    single-representative decode).  This is the mid-batch fault-onset shape
    the speculative pipeline's rollback path must handle: the node sits in
    the decoder's trusted pivot until it starts erring, so its first bad
    round invalidates in-flight speculation.

    The node counts toward the fault budget from round 0 (``is_faulty`` is
    static for the engines: a faulty node never refreshes its coded state
    and misbehaves in consensus throughout), so onset changes *when* the
    execution-phase deviation appears, not the protocol's fault accounting.
    """

    def __init__(self, inner: ByzantineBehavior, onset_round: int) -> None:
        if onset_round < 0:
            raise ValueError(f"onset round must be non-negative, got {onset_round}")
        self.inner = inner
        self.onset_round = int(onset_round)
        self._rounds_seen = 0
        self._active = onset_round == 0

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        self._active = self._rounds_seen >= self.onset_round
        self._rounds_seen += 1
        if not self._active:
            return np.array(true_value, dtype=np.int64, copy=True)
        return self.inner.transform_result(
            field, node_id, true_value, rng, recipient=recipient
        )

    def delays_message(self) -> bool:
        return self._active and self.inner.delays_message()


_BEHAVIOR_FACTORIES = {
    "honest": HonestBehavior,
    "corrupt": CorruptResultBehavior,
    "garbage": RandomGarbageBehavior,
    "silent": SilentBehavior,
    "equivocate": EquivocatingBehavior,
    "delay": DelayingBehavior,
}


def behavior_from_name(name: str) -> ByzantineBehavior:
    """Instantiate a behaviour by its short name (used in experiment configs)."""
    try:
        return _BEHAVIOR_FACTORIES[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown behaviour '{name}'; choose from {sorted(_BEHAVIOR_FACTORIES)}"
        ) from exc
