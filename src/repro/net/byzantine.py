"""Byzantine behaviour library.

A Byzantine node can deviate arbitrarily from the protocol; the paper's
analysis is driven by a handful of canonical deviations, each of which is
modelled here as a strategy object the protocol layers consult whenever a
faulty node is about to act:

* :class:`CorruptResultBehavior` — report a wrong (but well-formed) value;
  this is the deviation the Reed–Solomon decoding must correct.
* :class:`SilentBehavior` — send nothing; in the partially synchronous
  setting this is indistinguishable from a slow honest node and forces the
  ``N - b`` decoding rule.
* :class:`EquivocatingBehavior` — send *different* wrong values to different
  recipients; the paper notes the reconstructed polynomials at honest nodes
  remain identical despite equivocation.
* :class:`DelayingBehavior` — send the correct value but too late to be
  counted in the round.
* :class:`RandomGarbageBehavior` — uniformly random values each time,
  the worst case for any detection heuristic.

Honest nodes use :class:`HonestBehavior`, which returns values unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gf.field import Field


class ByzantineBehavior(ABC):
    """Strategy deciding what a (possibly faulty) node actually reports."""

    #: Whether the protocol should treat this node as faulty when counting b.
    is_faulty: bool = True

    @abstractmethod
    def transform_result(
        self,
        field: Field,
        node_id: str,
        true_value: np.ndarray,
        rng: np.random.Generator,
        recipient: str | None = None,
    ) -> np.ndarray | None:
        """Return the value the node reports (``None`` means "stay silent")."""

    def delays_message(self) -> bool:
        """Whether the node's messages should arrive after the round timeout."""
        return False

    def corrupts_consensus_vote(self) -> bool:
        """Whether the node votes incorrectly / withholds votes in consensus."""
        return self.is_faulty


class HonestBehavior(ByzantineBehavior):
    """Follows the protocol exactly."""

    is_faulty = False

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return np.array(true_value, dtype=np.int64, copy=True)

    def corrupts_consensus_vote(self) -> bool:
        return False


class CorruptResultBehavior(ByzantineBehavior):
    """Adds a fixed non-zero offset to every reported component."""

    def __init__(self, offset: int = 1) -> None:
        if int(offset) == 0:
            raise ValueError("corruption offset must be non-zero")
        self.offset = int(offset)

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        return field.add(value, np.full_like(value, field.element(self.offset)))


class RandomGarbageBehavior(ByzantineBehavior):
    """Reports uniformly random field elements."""

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        return field.random_array(rng, value.shape)


class SilentBehavior(ByzantineBehavior):
    """Never sends its execution-phase messages."""

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return None


class EquivocatingBehavior(ByzantineBehavior):
    """Sends a different corrupted value to every recipient.

    The corruption is a deterministic function of the recipient so tests can
    assert that two honest receivers really did observe conflicting values,
    yet both still decode the same correct polynomial (Section 5.2).
    """

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        value = field.array(true_value)
        salt = abs(hash((node_id, recipient))) % (field.order - 1) + 1
        return field.add(value, np.full_like(value, field.element(salt)))


class DelayingBehavior(ByzantineBehavior):
    """Sends correct values, but after the round deadline.

    In the synchronous model a delayed message is equivalent to silence for
    the round; in the partially synchronous model before GST it is
    indistinguishable from an honest slow node.
    """

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        return np.array(true_value, dtype=np.int64, copy=True)

    def delays_message(self) -> bool:
        return True


class CrashedBehavior(SilentBehavior):
    """A crashed node: silent everywhere until the fault plane recovers it.

    Behaviourally identical to :class:`SilentBehavior` — the class exists so
    the fault-injection layer (:mod:`repro.faults`) can distinguish "this
    node is crashed and pending recovery" from "this node was configured
    Byzantine-silent for the whole run" when building its report.
    """


class WindowedBehavior(ByzantineBehavior):
    """Applies an ``inner`` behaviour only inside a round window.

    The window is ``[start_round, end_round)`` in 0-based rounds, counted
    per :meth:`transform_result` call — i.e. per round under the engines'
    single-representative decode.  ``end_round=None`` leaves the window
    open-ended (the onset shape); a bounded window is a fault *burst*; a
    window starting at 0 with a bound is the "until" shape.  Composing
    these three combinators with the base behaviours gives schedules and
    behaviours one shared algebra.

    The node counts toward the fault budget for the whole run (``is_faulty``
    is static for the engines: a faulty node never refreshes its coded state
    and misbehaves in consensus throughout), so the window changes *when*
    the execution-phase deviation appears, not the protocol's fault
    accounting.  The activation flag is refreshed at the top of each
    :meth:`transform_result` call, before the round counter increments —
    the same pre-increment evaluation the original onset wrapper used, so
    an unbounded window is bit-identical to :class:`FaultOnsetBehavior`.
    """

    def __init__(
        self,
        inner: ByzantineBehavior,
        start_round: int = 0,
        end_round: int | None = None,
    ) -> None:
        if start_round < 0:
            raise ValueError(f"window start must be non-negative, got {start_round}")
        if end_round is not None and end_round <= start_round:
            raise ValueError(
                f"window end {end_round} must exceed window start {start_round}"
            )
        self.inner = inner
        self.start_round = int(start_round)
        self.end_round = None if end_round is None else int(end_round)
        self._rounds_seen = 0
        self._active = start_round == 0

    def _in_window(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round

    def transform_result(self, field, node_id, true_value, rng, recipient=None):
        self._active = self._in_window(self._rounds_seen)
        self._rounds_seen += 1
        if not self._active:
            return np.array(true_value, dtype=np.int64, copy=True)
        return self.inner.transform_result(
            field, node_id, true_value, rng, recipient=recipient
        )

    def delays_message(self) -> bool:
        return self._active and self.inner.delays_message()


class FaultOnsetBehavior(WindowedBehavior):
    """Reports honestly until an onset round, then turns Byzantine.

    The open-ended special case of :class:`WindowedBehavior`, kept as a
    named class (with its historical ``onset_round`` attribute) because the
    speculative pipeline's rollback tests are written against this shape:
    the node sits in the decoder's trusted pivot until it starts erring, so
    its first bad round invalidates in-flight speculation.
    """

    def __init__(self, inner: ByzantineBehavior, onset_round: int) -> None:
        super().__init__(inner, start_round=onset_round)
        self.onset_round = self.start_round


_BEHAVIOR_FACTORIES = {
    "honest": HonestBehavior,
    "corrupt": CorruptResultBehavior,
    "liar": CorruptResultBehavior,
    "garbage": RandomGarbageBehavior,
    "silent": SilentBehavior,
    "crash": CrashedBehavior,
    "equivocate": EquivocatingBehavior,
    "delay": DelayingBehavior,
}

#: Window combinators understood by :func:`behavior_from_name`, mapped to the
#: ``(start, end)`` window their single parameter describes.
_COMBINATORS = ("onset", "burst", "until")


def _parse_window(kind: str, param: str, spec: str) -> tuple[int, int | None]:
    """The ``(start_round, end_round)`` window a combinator parameter names."""
    try:
        if kind == "onset":
            return int(param), None
        if kind == "until":
            return 0, int(param)
        # burst:A-B is inclusive of both endpoints: rounds A..B misbehave.
        start_text, sep, end_text = param.partition("-")
        if not sep:
            raise ValueError("burst expects an inclusive round span 'A-B'")
        return int(start_text), int(end_text) + 1
    except ValueError as exc:
        raise ValueError(
            f"bad behaviour spec '{spec}': {kind} parameter {param!r} ({exc})"
        ) from exc


def behavior_from_name(name: str) -> ByzantineBehavior:
    """Instantiate a behaviour from its spec string.

    Plain names (``"corrupt"``, ``"silent"``, …) instantiate the base
    behaviours as before.  Three window combinators compose recursively::

        onset:R:SPEC    honest until round R, then SPEC forever
        burst:A-B:SPEC  SPEC during rounds A..B inclusive, honest otherwise
        until:R:SPEC    SPEC during rounds 0..R-1, honest from round R on

    e.g. ``"onset:5:liar"`` or ``"burst:3-7:silent"`` — so scenario files
    and benchmarks can name composed behaviours without constructing
    objects.
    """
    spec = str(name).strip()
    kind, sep, rest = spec.partition(":")
    if sep and kind in _COMBINATORS:
        param, inner_sep, inner_spec = rest.partition(":")
        if not inner_sep or not inner_spec:
            raise ValueError(
                f"bad behaviour spec '{spec}': expected '{kind}:PARAM:SPEC'"
            )
        start, end = _parse_window(kind, param, spec)
        return WindowedBehavior(
            behavior_from_name(inner_spec), start_round=start, end_round=end
        )
    try:
        return _BEHAVIOR_FACTORIES[spec]()
    except KeyError as exc:
        raise ValueError(
            f"unknown behaviour '{spec}'; choose from "
            f"{sorted(_BEHAVIOR_FACTORIES)} or a combinator "
            f"{'/'.join(_COMBINATORS)} spec like 'onset:5:liar'"
        ) from exc
