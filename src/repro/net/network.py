"""The simulated fully-connected network.

The network owns the event scheduler, the delay model and the key registry.
Protocol layers interact with it through three operations:

* :meth:`SimulatedNetwork.send` — sign and dispatch a message to one node;
* :meth:`SimulatedNetwork.broadcast` — dispatch one copy to every node
  (a Byzantine sender that wants to equivocate simply calls ``send`` with
  different payloads instead);
* :meth:`SimulatedNetwork.collect` — advance simulated time by a timeout and
  return the (signature-verified) messages a node received in that window.

Messages whose signatures do not verify are dropped and counted, modelling
the "impersonation is easily detectable" clause of the fault model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.net.latency import DelayModel, SynchronousDelay
from repro.net.message import Message, MessageKind
from repro.net.signatures import KeyRegistry
from repro.net.simulator import EventScheduler


@dataclass
class DeliveryRecord:
    """Book-keeping entry for one attempted message delivery."""

    message: Message
    send_time: float
    delivery_time: float
    delivered: bool = True


@dataclass
class _Mailbox:
    """Per-node queue of delivered messages awaiting collection."""

    messages: list[tuple[float, Message]] = field(default_factory=list)

    def push(self, time: float, message: Message) -> None:
        self.messages.append((time, message))

    def drain(
        self,
        kind: MessageKind | None,
        round_index: int | None,
        up_to_time: float,
    ) -> list[Message]:
        kept: list[tuple[float, Message]] = []
        out: list[Message] = []
        for time, message in self.messages:
            matches = time <= up_to_time
            if kind is not None and message.kind != kind:
                matches = False
            if round_index is not None and message.round_index != round_index:
                matches = False
            if matches:
                out.append(message)
            else:
                kept.append((time, message))
        self.messages = kept
        return out


class SimulatedNetwork:
    """Fully connected message-passing network with signed messages."""

    def __init__(
        self,
        delay_model: DelayModel | None = None,
        rng: np.random.Generator | None = None,
        key_registry: KeyRegistry | None = None,
    ) -> None:
        self.delay_model = delay_model or SynchronousDelay()
        self.rng = rng or np.random.default_rng(0)
        self.keys = key_registry or KeyRegistry()
        self.scheduler = EventScheduler()
        self._mailboxes: dict[str, _Mailbox] = {}
        self.delivery_log: list[DeliveryRecord] = []
        self.rejected_signatures = 0
        self.messages_sent = 0
        self._bulk_delivery = False

    # -- membership -------------------------------------------------------------
    def register(self, node_id: str) -> None:
        """Register a node (or client) identity and issue its signing key."""
        node_id = str(node_id)
        if node_id not in self._mailboxes:
            self._mailboxes[node_id] = _Mailbox()
        self.keys.register(node_id)

    @property
    def participants(self) -> list[str]:
        return sorted(self._mailboxes)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- sending -----------------------------------------------------------------
    def send(self, message: Message, sign: bool = True) -> DeliveryRecord:
        """Sign (unless pre-signed) and dispatch a message to its recipient."""
        if message.recipient not in self._mailboxes:
            raise KeyError(f"unknown recipient '{message.recipient}'")
        if sign or message.signature is None:
            self.keys.sign(message)
        send_time = self.scheduler.now
        delay = self.delay_model.sample_delay(send_time, self.rng)
        delivery_time = send_time + delay
        record = DeliveryRecord(message, send_time, delivery_time)
        self.delivery_log.append(record)
        self.messages_sent += 1

        def deliver() -> None:
            if not self.keys.verify(message):
                self.rejected_signatures += 1
                record.delivered = False
                return
            self._mailboxes[message.recipient].push(delivery_time, message)

        self.scheduler.schedule_at(delivery_time, deliver, label=message.kind.value)
        return record

    def broadcast(
        self, message: Message, recipients: Iterable[str] | None = None, sign: bool = True
    ) -> list[DeliveryRecord]:
        """Send a copy of the message to every registered participant.

        A single signature covers all copies (the recipient is not part of
        the signed view), so this models a true broadcast.  Byzantine
        equivocation is modelled by *not* using this helper and calling
        :meth:`send` with different payloads per recipient instead.
        """
        if sign or message.signature is None:
            self.keys.sign(message)
        targets = list(recipients) if recipients is not None else self.participants
        if self._bulk_delivery:
            return self.deliver_all(message, targets, sign=False)
        records = []
        for recipient in targets:
            if recipient == message.sender:
                # A node "delivers" its own broadcast immediately; model that
                # as a zero-delay send so it also lands in its mailbox.
                copy = message.with_recipient(recipient)
                self._mailboxes[recipient].push(self.scheduler.now, copy)
                records.append(
                    DeliveryRecord(copy, self.scheduler.now, self.scheduler.now)
                )
                continue
            records.append(self.send(message.with_recipient(recipient), sign=False))
        return records

    def deliver_all(
        self, message: Message, recipients: Iterable[str] | None = None, sign: bool = True
    ) -> list[DeliveryRecord]:
        """Bulk broadcast: deliver one copy per recipient without the scheduler.

        Behaviourally equivalent to :meth:`broadcast`, but built for batched
        round drivers: per-recipient delays are sampled in the same order and
        from the same rng stream as ``broadcast`` (so the delivery times — and
        everything downstream of the shared generator — are bit-identical),
        while each copy is pushed straight into its recipient's mailbox at its
        delivery time instead of being wrapped in a scheduled event, and the
        signature is verified once for the whole broadcast instead of once per
        copy.  :meth:`_Mailbox.drain` filters on delivery time, so copies
        "arriving" after a collection deadline stay invisible until the clock
        passes them, exactly as with scheduled delivery.
        """
        if sign or message.signature is None:
            self.keys.sign(message)
        valid = self.keys.verify(message)
        targets = list(recipients) if recipients is not None else self.participants
        now = self.scheduler.now
        records = []
        for recipient in targets:
            mailbox = self._mailboxes.get(recipient)
            if mailbox is None:
                raise KeyError(f"unknown recipient '{recipient}'")
            copy = message.with_recipient(recipient)
            if recipient == message.sender:
                # Own broadcast copy: zero delay, no rng draw (as in broadcast).
                mailbox.push(now, copy)
                records.append(DeliveryRecord(copy, now, now))
                continue
            delivery_time = now + self.delay_model.sample_delay(now, self.rng)
            record = DeliveryRecord(copy, now, delivery_time, delivered=valid)
            self.delivery_log.append(record)
            self.messages_sent += 1
            if valid:
                mailbox.push(delivery_time, copy)
            else:
                self.rejected_signatures += 1
            records.append(record)
        return records

    @contextmanager
    def bulk_delivery(self) -> Iterator["SimulatedNetwork"]:
        """Route every :meth:`broadcast` through :meth:`deliver_all` in scope.

        Point-to-point :meth:`send` (the equivocation path) is unaffected, so
        Byzantine senders consume the rng stream exactly as without bulk mode.
        """
        previous = self._bulk_delivery
        self._bulk_delivery = True
        try:
            yield self
        finally:
            self._bulk_delivery = previous

    # -- receiving -----------------------------------------------------------------
    def collect(
        self,
        recipient: str,
        kind: MessageKind | None = None,
        round_index: int | None = None,
        timeout: float | None = None,
    ) -> list[Message]:
        """Advance time by ``timeout`` and return matching delivered messages.

        With ``timeout=None`` the synchronous bound of the delay model is
        used — the standard "wait one maximum delay" round structure.
        """
        if recipient not in self._mailboxes:
            raise KeyError(f"unknown recipient '{recipient}'")
        window = self.delay_model.synchronous_bound if timeout is None else float(timeout)
        deadline = self.scheduler.now + window
        self.scheduler.run_until(deadline)
        return self._mailboxes[recipient].drain(kind, round_index, deadline)

    def collect_all(
        self,
        recipients: Iterable[str],
        kind: MessageKind | None = None,
        round_index: int | None = None,
        timeout: float | None = None,
    ) -> dict[str, list[Message]]:
        """Collect for many recipients over a single shared timeout window."""
        recipients = list(recipients)
        window = self.delay_model.synchronous_bound if timeout is None else float(timeout)
        deadline = self.scheduler.now + window
        self.scheduler.run_until(deadline)
        out: dict[str, list[Message]] = {}
        for recipient in recipients:
            if recipient not in self._mailboxes:
                raise KeyError(f"unknown recipient '{recipient}'")
            out[recipient] = self._mailboxes[recipient].drain(kind, round_index, deadline)
        return out

    def flush(self) -> None:
        """Deliver every in-flight message (used between experiments)."""
        self.scheduler.run_until_idle()

    # -- statistics ------------------------------------------------------------------
    def delivered_within(self, deadline: float) -> int:
        return sum(1 for r in self.delivery_log if r.delivered and r.delivery_time <= deadline)

    def stats(self) -> dict[str, float]:
        return {
            "messages_sent": self.messages_sent,
            "rejected_signatures": self.rejected_signatures,
            "simulated_time": self.scheduler.now,
            "processed_events": self.scheduler.processed_events,
        }
