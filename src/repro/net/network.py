"""The simulated fully-connected network.

The network owns the event scheduler, the delay model and the key registry.
Protocol layers interact with it through three operations:

* :meth:`SimulatedNetwork.send` — sign and dispatch a message to one node;
* :meth:`SimulatedNetwork.broadcast` — dispatch one copy to every node
  (a Byzantine sender that wants to equivocate simply calls ``send`` with
  different payloads instead);
* :meth:`SimulatedNetwork.collect` — advance simulated time by a timeout and
  return the (signature-verified) messages a node received in that window.

Messages whose signatures do not verify are dropped and counted, modelling
the "impersonation is easily detectable" clause of the fault model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.net.latency import DelayModel, SynchronousDelay
from repro.net.message import Message, MessageKind, PhaseBatch
from repro.net.signatures import KeyRegistry
from repro.net.simulator import EventScheduler
from repro.rng import default_stream


@dataclass
class DeliveryRecord:
    """Book-keeping entry for one attempted message delivery."""

    message: Message
    send_time: float
    delivery_time: float
    delivered: bool = True


@dataclass
class _PhaseLogEntry:
    """A whole :class:`PhaseBatch` standing in for its per-copy records.

    The vectorised plane appends one of these per phase instead of
    ``A * (N - 1)`` :class:`DeliveryRecord` objects; :meth:`materialise`
    expands it — in exactly the order ``deliver_all`` would have appended —
    when somebody actually reads the log.
    """

    batch: PhaseBatch
    node_ids: list[str]

    @property
    def count(self) -> int:
        return self.batch.num_actions * max(len(self.node_ids) - 1, 0)

    def materialise(self) -> list[DeliveryRecord]:
        batch = self.batch
        out: list[DeliveryRecord] = []
        for a, message in enumerate(batch.templates):
            sender = int(batch.sender_index[a])
            delivered = bool(batch.valid[a])
            times = batch.delivery_time[a]
            for j, node_id in enumerate(self.node_ids):
                if j == sender:
                    continue  # own copy never hits the log (as in broadcast)
                out.append(
                    DeliveryRecord(
                        message.with_recipient(node_id),
                        batch.send_time,
                        float(times[j]),
                        delivered=delivered,
                    )
                )
        return out


class DeliveryLog(Sequence):
    """Append-only delivery journal that holds phase batches compactly.

    Scalar paths append :class:`DeliveryRecord` objects as before; the
    vectorised message plane appends whole phases, which are expanded to
    records lazily the first time the log is read.  Interleaving is
    preserved: entries expand in append order, so the flat view is
    bit-identical (field for field) to the record sequence the event-driven
    and bulk paths would have produced.
    """

    def __init__(self) -> None:
        self._entries: list[DeliveryRecord | _PhaseLogEntry] = []
        self._flat: list[DeliveryRecord] | None = []

    def append(self, record: DeliveryRecord) -> None:
        self._entries.append(record)
        if self._flat is not None:
            self._flat.append(record)

    def append_phase(self, entry: _PhaseLogEntry) -> None:
        self._entries.append(entry)
        self._flat = None

    def _materialise(self) -> list[DeliveryRecord]:
        if self._flat is None:
            flat: list[DeliveryRecord] = []
            for entry in self._entries:
                if isinstance(entry, DeliveryRecord):
                    flat.append(entry)
                else:
                    flat.extend(entry.materialise())
            self._flat = flat
        return self._flat

    def __len__(self) -> int:
        if self._flat is not None:
            return len(self._flat)
        return sum(
            1 if isinstance(entry, DeliveryRecord) else entry.count
            for entry in self._entries
        )

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return iter(self._materialise())

    def __getitem__(self, index):
        return self._materialise()[index]


@dataclass
class _Mailbox:
    """Per-node queue of delivered messages awaiting collection."""

    messages: list[tuple[float, Message]] = field(default_factory=list)

    def push(self, time: float, message: Message) -> None:
        self.messages.append((time, message))

    def drain(
        self,
        kind: MessageKind | None,
        round_index: int | None,
        up_to_time: float,
    ) -> list[Message]:
        kept: list[tuple[float, Message]] = []
        out: list[Message] = []
        for time, message in self.messages:
            matches = time <= up_to_time
            if kind is not None and message.kind != kind:
                matches = False
            if round_index is not None and message.round_index != round_index:
                matches = False
            if matches:
                out.append(message)
            else:
                kept.append((time, message))
        self.messages = kept
        return out


class NetworkFaultState:
    """Mutable link-fault switchboard consulted by :class:`SimulatedNetwork`.

    The fault-injection plane (:mod:`repro.faults`) flips these fields at
    round boundaries to model message-drop bursts, added-latency bursts and
    group partitions.  The network consults the state *after* sampling each
    copy's delay from the shared rng stream, so activating or clearing
    faults never shifts the stream: a run whose fault state stays inactive
    is bit-identical to one without the switchboard at all.

    Partition semantics: ``partition`` holds disjoint node groups; a copy
    whose sender and recipient sit in *different* groups is dropped, while
    endpoints outside every group (clients, for instance) stay reachable
    from everywhere.
    """

    def __init__(self) -> None:
        #: Every copy to or from these nodes is dropped.
        self.dropped_nodes: set[str] = set()
        #: Directed ``(sender, recipient)`` pairs to drop.
        self.dropped_links: set[tuple[str, str]] = set()
        #: Disjoint groups; cross-group copies are dropped.
        self.partition: list[frozenset[str]] | None = None
        #: Extra latency added to every delivery while non-zero.
        self.extra_delay: float = 0.0
        #: Copies dropped by this switchboard (observability counter).
        self.dropped_messages = 0

    @property
    def active(self) -> bool:
        """Whether any fault is currently configured (counters excluded)."""
        return bool(
            self.dropped_nodes
            or self.dropped_links
            or self.partition is not None
            or self.extra_delay
        )

    def clear(self) -> None:
        """Heal every configured fault (the drop counter is preserved)."""
        self.dropped_nodes.clear()
        self.dropped_links.clear()
        self.partition = None
        self.extra_delay = 0.0

    def set_partition(self, groups: Iterable[Iterable[str]] | None) -> None:
        self.partition = (
            None if groups is None else [frozenset(map(str, g)) for g in groups]
        )

    def should_drop(self, sender: str, recipient: str) -> bool:
        """Whether the configured faults sever this (directed) link."""
        if sender == recipient:
            return False
        if sender in self.dropped_nodes or recipient in self.dropped_nodes:
            return True
        if (sender, recipient) in self.dropped_links:
            return True
        if self.partition is not None:
            sender_group = recipient_group = None
            for group in self.partition:
                if sender in group:
                    sender_group = group
                if recipient in group:
                    recipient_group = group
            if (
                sender_group is not None
                and recipient_group is not None
                and sender_group is not recipient_group
            ):
                return True
        return False


class SimulatedNetwork:
    """Fully connected message-passing network with signed messages."""

    #: The vectorised message plane (:class:`MessagePlane`) can run on top of
    #: this network: phase dispatch and collection are available.
    supports_phase_batches = True

    def __init__(
        self,
        delay_model: DelayModel | None = None,
        rng: np.random.Generator | None = None,
        key_registry: KeyRegistry | None = None,
    ) -> None:
        self.delay_model = delay_model or SynchronousDelay()
        self.rng = rng if rng is not None else default_stream()
        self.keys = key_registry or KeyRegistry()
        self.scheduler = EventScheduler()
        self._mailboxes: dict[str, _Mailbox] = {}
        self.delivery_log: DeliveryLog = DeliveryLog()
        self.rejected_signatures = 0
        self.messages_sent = 0
        self._bulk_delivery = False
        #: Link-fault switchboard; inactive by default (bit-identical path).
        self.faults = NetworkFaultState()

    # -- membership -------------------------------------------------------------
    def register(self, node_id: str) -> None:
        """Register a node (or client) identity and issue its signing key."""
        node_id = str(node_id)
        if node_id not in self._mailboxes:
            self._mailboxes[node_id] = _Mailbox()
        self.keys.register(node_id)

    @property
    def participants(self) -> list[str]:
        return sorted(self._mailboxes)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- sending -----------------------------------------------------------------
    def send(self, message: Message, sign: bool = True) -> DeliveryRecord:
        """Sign (unless pre-signed) and dispatch a message to its recipient."""
        if message.recipient not in self._mailboxes:
            raise KeyError(f"unknown recipient '{message.recipient}'")
        if sign or message.signature is None:
            self.keys.sign(message)
        send_time = self.scheduler.now
        delay = self.delay_model.sample_delay(send_time, self.rng)
        delivery_time = send_time + delay
        # Fault state applies *after* the rng draw, so (de)activating faults
        # never shifts the delay stream.
        dropped = False
        if self.faults.active:
            delivery_time += self.faults.extra_delay
            dropped = self.faults.should_drop(message.sender, message.recipient)
        record = DeliveryRecord(message, send_time, delivery_time, delivered=not dropped)
        self.delivery_log.append(record)
        self.messages_sent += 1
        if dropped:
            self.faults.dropped_messages += 1
            return record

        def deliver() -> None:
            if not self.keys.verify(message):
                self.rejected_signatures += 1
                record.delivered = False
                return
            self._mailboxes[message.recipient].push(delivery_time, message)

        self.scheduler.schedule_at(delivery_time, deliver, label=message.kind.value)
        return record

    def broadcast(
        self, message: Message, recipients: Iterable[str] | None = None, sign: bool = True
    ) -> list[DeliveryRecord]:
        """Send a copy of the message to every registered participant.

        A single signature covers all copies (the recipient is not part of
        the signed view), so this models a true broadcast.  Byzantine
        equivocation is modelled by *not* using this helper and calling
        :meth:`send` with different payloads per recipient instead.
        """
        if sign or message.signature is None:
            self.keys.sign(message)
        targets = list(recipients) if recipients is not None else self.participants
        if self._bulk_delivery:
            return self.deliver_all(message, targets, sign=False)
        records = []
        for recipient in targets:
            if recipient == message.sender:
                # A node "delivers" its own broadcast immediately; model that
                # as a zero-delay send so it also lands in its mailbox.
                copy = message.with_recipient(recipient)
                self._mailboxes[recipient].push(self.scheduler.now, copy)
                records.append(
                    DeliveryRecord(copy, self.scheduler.now, self.scheduler.now)
                )
                continue
            records.append(self.send(message.with_recipient(recipient), sign=False))
        return records

    def deliver_all(
        self, message: Message, recipients: Iterable[str] | None = None, sign: bool = True
    ) -> list[DeliveryRecord]:
        """Bulk broadcast: deliver one copy per recipient without the scheduler.

        Behaviourally equivalent to :meth:`broadcast`, but built for batched
        round drivers: per-recipient delays are sampled in the same order and
        from the same rng stream as ``broadcast`` (so the delivery times — and
        everything downstream of the shared generator — are bit-identical),
        while each copy is pushed straight into its recipient's mailbox at its
        delivery time instead of being wrapped in a scheduled event, and the
        signature is verified once for the whole broadcast instead of once per
        copy.  :meth:`_Mailbox.drain` filters on delivery time, so copies
        "arriving" after a collection deadline stay invisible until the clock
        passes them, exactly as with scheduled delivery.
        """
        if sign or message.signature is None:
            self.keys.sign(message)
        valid = self.keys.verify(message)
        targets = list(recipients) if recipients is not None else self.participants
        now = self.scheduler.now
        records = []
        for recipient in targets:
            mailbox = self._mailboxes.get(recipient)
            if mailbox is None:
                raise KeyError(f"unknown recipient '{recipient}'")
            copy = message.with_recipient(recipient)
            if recipient == message.sender:
                # Own broadcast copy: zero delay, no rng draw (as in broadcast).
                mailbox.push(now, copy)
                records.append(DeliveryRecord(copy, now, now))
                continue
            delivery_time = now + self.delay_model.sample_delay(now, self.rng)
            dropped = False
            if self.faults.active:
                delivery_time += self.faults.extra_delay
                dropped = self.faults.should_drop(message.sender, recipient)
            record = DeliveryRecord(
                copy, now, delivery_time, delivered=valid and not dropped
            )
            self.delivery_log.append(record)
            self.messages_sent += 1
            if not valid:
                self.rejected_signatures += 1
            elif dropped:
                self.faults.dropped_messages += 1
            else:
                mailbox.push(delivery_time, copy)
            records.append(record)
        return records

    @contextmanager
    def bulk_delivery(self) -> Iterator["SimulatedNetwork"]:
        """Route every :meth:`broadcast` through :meth:`deliver_all` in scope.

        Point-to-point :meth:`send` (the equivocation path) is unaffected, so
        Byzantine senders consume the rng stream exactly as without bulk mode.
        """
        previous = self._bulk_delivery
        self._bulk_delivery = True
        try:
            yield self
        finally:
            self._bulk_delivery = previous

    # -- receiving -----------------------------------------------------------------
    def collect(
        self,
        recipient: str,
        kind: MessageKind | None = None,
        round_index: int | None = None,
        timeout: float | None = None,
    ) -> list[Message]:
        """Advance time by ``timeout`` and return matching delivered messages.

        With ``timeout=None`` the synchronous bound of the delay model is
        used — the standard "wait one maximum delay" round structure.
        """
        if recipient not in self._mailboxes:
            raise KeyError(f"unknown recipient '{recipient}'")
        window = self.delay_model.synchronous_bound if timeout is None else float(timeout)
        deadline = self.scheduler.now + window
        self.scheduler.run_until(deadline)
        return self._mailboxes[recipient].drain(kind, round_index, deadline)

    def collect_all(
        self,
        recipients: Iterable[str],
        kind: MessageKind | None = None,
        round_index: int | None = None,
        timeout: float | None = None,
    ) -> dict[str, list[Message]]:
        """Collect for many recipients over a single shared timeout window."""
        recipients = list(recipients)
        window = self.delay_model.synchronous_bound if timeout is None else float(timeout)
        deadline = self.scheduler.now + window
        self.scheduler.run_until(deadline)
        out: dict[str, list[Message]] = {}
        for recipient in recipients:
            if recipient not in self._mailboxes:
                raise KeyError(f"unknown recipient '{recipient}'")
            out[recipient] = self._mailboxes[recipient].drain(kind, round_index, deadline)
        return out

    def flush(self) -> None:
        """Deliver every in-flight message (used between experiments)."""
        self.scheduler.run_until_idle()

    # -- statistics ------------------------------------------------------------------
    def delivered_within(self, deadline: float) -> int:
        return sum(1 for r in self.delivery_log if r.delivered and r.delivery_time <= deadline)

    def stats(self) -> dict[str, float]:
        return {
            "messages_sent": self.messages_sent,
            "rejected_signatures": self.rejected_signatures,
            "simulated_time": self.scheduler.now,
            "processed_events": self.scheduler.processed_events,
        }


class PhaseView:
    """What one consensus phase's collection window made visible.

    Pairs the phase's :class:`~repro.net.message.PhaseBatch` (with a per-copy
    visibility mask) with the *stragglers* drained from the real mailboxes —
    late copies of earlier phases and targeted (equivocation) sends, which
    still flow through the event scheduler.  Protocols read it either as
    per-node message streams (:meth:`messages_for`) or as vectorised quorum
    tallies (:meth:`supporter_counts`).
    """

    def __init__(
        self,
        plane: "MessagePlane",
        batch: PhaseBatch | None,
        visible: np.ndarray | None,
        stragglers: list[list[Message]],
    ) -> None:
        self.plane = plane
        self.batch = batch
        self.visible = visible  # (A, N) bool, aligned with batch
        self.stragglers = stragglers  # one list per node, in node order
        self.has_stragglers = any(stragglers)

    def messages_for(self, node_index: int) -> Iterator[tuple[Message, int]]:
        """Yield ``(message, payload_ref)`` visible at ``node_index``.

        Batch copies come first in action (dispatch) order, then the node's
        drained stragglers in mailbox order.  Within every filter the
        protocols apply (sender / view / leader), this matches the order the
        event-driven collect would have produced.
        """
        if self.batch is not None and self.visible is not None:
            templates = self.batch.templates
            refs = self.batch.payload_ref
            for a in np.nonzero(self.visible[:, node_index])[0]:
                yield templates[a], int(refs[a])
        for message in self.stragglers[node_index]:
            yield message, self.plane.register(message.payload)

    def supporter_counts(
        self, view: int, payload_ref: int, straggler_match
    ) -> np.ndarray:
        """Distinct supporting senders per node for ``(view, payload_ref)``.

        The batch part is a pure column sum (every batch action has a
        distinct sender within a phase); when stragglers exist the affected
        nodes fall back to exact sender-set semantics, so the counts equal
        the oracle's ``len({m.sender for m in received if ...})``.
        """
        num_nodes = len(self.plane.node_ids)
        action_mask = None
        if self.batch is not None and self.batch.num_actions:
            action_mask = (self.batch.views == view) & (
                self.batch.payload_ref == payload_ref
            )
            counts = self.visible[action_mask].sum(axis=0).astype(np.int64)
        else:
            counts = np.zeros(num_nodes, dtype=np.int64)
        if not self.has_stragglers:
            return counts
        for j, messages in enumerate(self.stragglers):
            if not messages:
                continue
            extra = {m.sender for m in messages if straggler_match(m)}
            if not extra:
                continue
            base: set[str] = set()
            if action_mask is not None:
                for a in np.nonzero(action_mask & self.visible[:, j])[0]:
                    base.add(self.batch.templates[a].sender)
            counts[j] = len(base | extra)
        return counts


class MessagePlane:
    """Vectorised dispatch/collect surface over a :class:`SimulatedNetwork`.

    One plane serves one batch of consensus rounds: it owns the payload
    table (payload object -> small integer ref) and the signing
    normalisation cache that let a whole phase — up to ``N`` broadcasts,
    ``N x N`` copies — be signed, verified, delayed and tallied as columns
    instead of objects.  Everything observable (rng stream, counters,
    delivery log, mailbox residue, simulated time) is bit-identical to
    routing the same broadcasts through :meth:`SimulatedNetwork.deliver_all`
    and :meth:`SimulatedNetwork.collect_all`.

    Targeted sends (the equivocation path) do not go through the plane:
    Byzantine senders keep calling :meth:`SimulatedNetwork.send`, whose
    scheduled deliveries surface here as collection *stragglers*.
    """

    def __init__(self, network: SimulatedNetwork, node_ids: list[str]) -> None:
        self.network = network
        self.node_ids = list(node_ids)
        self.node_index = {node_id: j for j, node_id in enumerate(self.node_ids)}
        self.payloads: list[Any] = []
        self._ref_by_id: dict[int, int] = {}
        self._content_keys: dict[int, Any] = {}
        # id(payload) -> normalised signing view; shared with KeyRegistry
        # batch operations.  Safe because the payload table above keeps every
        # cached payload object alive for the plane's lifetime.
        self.norm_cache: dict[int, Any] = {}
        # Free-form per-plane storage for protocol-level memoisation (interned
        # vote payloads, digests per ref, ...).  Content-derived values only:
        # the plane outlives a single round, so anything depending on mutable
        # protocol state (e.g. pool-backed validity) must not live here.
        self.scratch: dict[Any, Any] = {}

    # -- payload table ------------------------------------------------------------
    def register(self, payload: Any) -> int:
        """Intern ``payload`` (by identity) and return its table ref."""
        ref = self._ref_by_id.get(id(payload))
        if ref is None:
            ref = len(self.payloads)
            self.payloads.append(payload)
            self._ref_by_id[id(payload)] = ref
        return ref

    def payload(self, ref: int) -> Any:
        return self.payloads[ref]

    def content_key(self, ref: int, key_fn) -> Any:
        """``key_fn(payload)`` memoised per ref (payloads are immutable)."""
        key = self._content_keys.get(ref)
        if key is None:
            key = key_fn(self.payloads[ref])
            self._content_keys[ref] = key
        return key

    # -- phase dispatch -----------------------------------------------------------
    def broadcast_phase(
        self, templates: list[Message], payload_refs: list[int]
    ) -> PhaseBatch | None:
        """Sign, verify and dispatch one phase of broadcasts as a batch.

        Equivalent to calling ``deliver_all(template, self.node_ids)`` for
        each template in order: same rng draws (one per non-self copy, in
        action-major recipient order), same ``messages_sent`` /
        ``rejected_signatures`` accounting, same delivery-log records
        (appended compactly), but no per-copy message objects or mailbox
        pushes — in-window copies are tallied straight off the batch arrays
        at collection.
        """
        if not templates:
            return None
        net = self.network
        net.keys.sign_batch(templates, self.norm_cache)
        valid = np.array(net.keys.verify_batch(templates, self.norm_cache), dtype=bool)
        now = net.scheduler.now
        num_actions = len(templates)
        num_nodes = len(self.node_ids)
        sender_index = np.fromiter(
            (self.node_index[m.sender] for m in templates),
            dtype=np.int64,
            count=num_actions,
        )
        views = np.fromiter(
            (int(m.metadata.get("view", -1)) for m in templates),
            dtype=np.int64,
            count=num_actions,
        )
        delivery_time = np.full((num_actions, num_nodes), now, dtype=float)
        self_mask = np.zeros((num_actions, num_nodes), dtype=bool)
        self_mask[np.arange(num_actions), sender_index] = True
        draws = net.delay_model.sample_delays(now, net.rng, num_actions * (num_nodes - 1))
        # Row-major boolean assignment fills exactly in action-major,
        # recipient-ascending order skipping the sender — the draw order of
        # the sequential per-copy loop.
        delivery_time[~self_mask] = now + draws
        batch = PhaseBatch(
            kind=templates[0].kind,
            round_index=int(templates[0].round_index),
            send_time=now,
            templates=templates,
            sender_index=sender_index,
            views=views,
            payload_ref=np.asarray(payload_refs, dtype=np.int64),
            valid=valid,
            delivery_time=delivery_time,
        )
        net.messages_sent += num_actions * (num_nodes - 1)
        invalid = int(num_actions - int(valid.sum()))
        if invalid:
            net.rejected_signatures += invalid * (num_nodes - 1)
        net.delivery_log.append_phase(_PhaseLogEntry(batch, self.node_ids))
        return batch

    # -- phase collection ---------------------------------------------------------
    def collect_phase(
        self,
        batch: PhaseBatch | None,
        kind: MessageKind,
        round_index: int,
        timeout: float | None = None,
    ) -> PhaseView:
        """Advance one collection window and expose what each node received.

        In-window batch copies become a visibility mask (no mailbox round
        trip); copies landing *after* the deadline are pushed into the real
        mailboxes — before the scheduler runs, exactly where ``deliver_all``
        would have put them — so later windows drain them as usual.  The
        node's own copy is visible even for an invalid broadcast, matching
        the unconditional self-push of the scalar paths.
        """
        net = self.network
        window = (
            net.delay_model.synchronous_bound if timeout is None else float(timeout)
        )
        deadline = net.scheduler.now + window
        visible = None
        if batch is not None and batch.num_actions:
            self_mask = batch.self_mask()
            in_window = batch.delivery_time <= deadline
            visible = (self_mask | batch.valid[:, None]) & in_window
            late = batch.valid[:, None] & ~in_window & ~self_mask
            if late.any():
                for a, j in zip(*np.nonzero(late)):
                    node_id = self.node_ids[j]
                    net._mailboxes[node_id].push(
                        float(batch.delivery_time[a, j]),
                        batch.templates[a].with_recipient(node_id),
                    )
        net.scheduler.run_until(deadline)
        stragglers: list[list[Message]] = []
        for node_id in self.node_ids:
            box = net._mailboxes[node_id]
            stragglers.append(
                box.drain(kind, round_index, deadline) if box.messages else []
            )
        return PhaseView(self, batch, visible, stragglers)
