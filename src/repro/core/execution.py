"""The coded execution phase (Section 5.2).

Given the commands agreed in the consensus phase, the engine:

1. has every node form its coded command ``X~_i`` and compute the coded
   result ``g_i = f(S~_i, X~_i)`` (operation-counted per node);
2. collects the results each (honest) node would receive — Byzantine nodes
   may corrupt, equivocate, delay, or stay silent;
3. runs noisy polynomial interpolation (Reed–Solomon decoding) to recover
   the composite polynomial ``h`` and evaluates it at the ``omega_k`` to
   obtain every machine's true ``(S_k(t+1), Y_k(t))``;
4. has every honest node update its coded state with its own coefficient
   row (equation (1));
5. verifies the recovered values against the reference (uncoded) execution
   and reports per-node operation counts for the throughput metric.

Both the synchronous rule (decode from all ``N`` results, up to ``b`` wrong)
and the partially synchronous rule (decode from ``N - b`` results, up to
``b`` of them wrong — silent nodes become erasures) are implemented.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DecodingError
from repro.gf.field import OperationCounter
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, HonestBehavior
from repro.replication.base import BatchExecutionMixin, RoundResult
from repro.core.config import CSMConfig
from repro.core.node import CSMNode


class CodedExecutionEngine(BatchExecutionMixin):
    """Executes CSM rounds over an in-memory bank of nodes."""

    def __init__(
        self,
        config: CSMConfig,
        machine: StateMachine,
        node_ids: list[str] | None = None,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
        decoder: str = "berlekamp-welch",
        decode_at_every_node: bool = False,
    ) -> None:
        if machine.degree != config.degree:
            raise ConfigurationError(
                f"configuration degree {config.degree} does not match the machine's "
                f"transition degree {machine.degree}"
            )
        self.config = config
        self.machine = machine
        self.field = config.field
        self.rng = rng or np.random.default_rng(0)
        self.decode_at_every_node = bool(decode_at_every_node)
        self.node_ids = list(node_ids) if node_ids else [
            f"node-{i}" for i in range(config.num_nodes)
        ]
        if len(self.node_ids) != config.num_nodes:
            raise ConfigurationError(
                f"expected {config.num_nodes} node ids, got {len(self.node_ids)}"
            )
        self.behaviors = dict(behaviors or {})
        self.scheme = LagrangeScheme(
            self.field, config.num_machines, config.num_nodes
        )
        self.encoder = CodedStateEncoder(self.scheme)
        self.decoder = CodedResultDecoder(
            self.scheme, transition_degree=config.degree, decoder=decoder
        )
        # Reference (true) states; shape (K, state_dim).
        self.states = np.tile(machine.initial_state, (config.num_machines, 1))
        coded_states = self.encoder.encode(self.states)
        self.nodes: list[CSMNode] = []
        for index, node_id in enumerate(self.node_ids):
            behavior = self.behaviors.get(node_id, HonestBehavior())
            self.nodes.append(
                CSMNode(
                    node_id=node_id,
                    node_index=index,
                    field=self.field,
                    transition=machine.transition,
                    coefficient_row=self.scheme.coefficient_row(index),
                    initial_coded_state=coded_states[index],
                    behavior=behavior,
                )
            )
        self.round_index = 0
        # Node indices caught reporting erroneous results; the batched decode
        # fast path avoids picking these as interpolation pivots (see
        # CodedResultDecoder.decode_fast).
        self._suspects: set[int] = set()

    # -- structural metrics --------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def num_machines(self) -> int:
        return self.config.num_machines

    @property
    def num_faulty(self) -> int:
        return sum(1 for node in self.nodes if node.is_faulty)

    @property
    def storage_efficiency(self) -> float:
        """gamma = (K states of data) / (one coded state per node) = K."""
        return float(self.num_machines)

    def honest_nodes(self) -> list[CSMNode]:
        return [node for node in self.nodes if not node.is_faulty]

    def node_by_id(self, node_id: str) -> CSMNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigurationError(f"unknown node id {node_id}")

    # -- round execution ------------------------------------------------------------------
    def execute_round(self, commands: np.ndarray) -> RoundResult:
        """Run the coded execution phase for one agreed command vector."""
        commands_arr = self._check_commands(commands)
        for node in self.nodes:
            node.reset_counter()
        # Step 1-2: every node encodes its command and computes on coded data.
        true_results = np.zeros(
            (self.num_nodes, self.machine.transition.result_dim), dtype=np.int64
        )
        for node in self.nodes:
            coded_command = node.encode_command(commands_arr)
            true_results[node.node_index] = node.execute_coded(coded_command)
        return self._complete_round(commands_arr, true_results, batched=False)

    def execute_rounds(self, commands_batch: np.ndarray) -> list[RoundResult]:
        """Run a batch of ``B`` rounds through the cached-matrix pipeline.

        ``commands_batch`` has shape ``(B, K, command_dim)`` (a single
        ``(K, command_dim)`` round is promoted to a batch of one).  Compared
        with calling :meth:`execute_round` ``B`` times:

        * all ``B * N`` coded commands come from **one** ``GF(p)``
          matrix–matrix product with the cached coefficient matrix;
        * decoding runs through :meth:`CodedResultDecoder.decode_fast` with a
          persistent suspect set, so a stable fault pattern costs one scalar
          Berlekamp–Welch decode for the whole batch instead of one per
          component per round;
        * the honest nodes' coded-state refresh is one matrix product per
          round instead of ``N - b`` per-node inner-product loops.

        The coded execution itself stays sequential — round ``t + 1``
        operates on coded states refreshed from round ``t``'s decode, exactly
        as in the scalar path — and every returned ``RoundResult`` carries
        outputs, states and correctness flags bit-identical to the scalar
        path (operation *counts* are lower on the decode side: that cost
        reduction is precisely what the batched pipeline buys).

        Per-node decoding (``decode_at_every_node=True``) models per-receiver
        equivocation and falls back to the scalar path unchanged.

        Rounds need not carry one *real* command per machine: the service
        scheduler pads idle machines' rows with
        :meth:`StateMachine.noop_command` (an identity transition for the
        library machines), and a noop row is coded, executed and decoded
        exactly like any other command — ragged traffic costs nothing extra
        in this pipeline.
        """
        batch_arr = self._validate_batch(commands_batch)
        if self.decode_at_every_node:
            return [self.execute_round(batch_arr[b]) for b in range(batch_arr.shape[0])]
        # Stage 1: encode every round's commands in one matrix product.  The
        # product itself is uncounted; each node is charged the operations it
        # would have spent encoding its own coded command (the batched
        # pipeline changes who *performs* the multiply, not the per-node
        # protocol cost model).
        coded_commands = self.encoder.encode_batch(batch_arr)
        results: list[RoundResult] = []
        cmd_dim = self.machine.command_dim
        for b in range(batch_arr.shape[0]):
            commands_arr = batch_arr[b]
            for node in self.nodes:
                node.reset_counter()
                node.counter.mul(cmd_dim * self.num_machines)
                node.counter.add(cmd_dim * (self.num_machines - 1))
            true_results = self._coded_step_all_nodes(coded_commands[b])
            results.append(
                self._complete_round(commands_arr, true_results, batched=True)
            )
        return results

    def _coded_step_all_nodes(self, coded_commands: np.ndarray) -> np.ndarray:
        """Evaluate every node's coded transition in one stacked pass.

        Stacks all ``N`` coded states (faulty nodes keep computing on their —
        possibly stale — stored state, exactly as in the scalar path) against
        the round's coded commands and evaluates each component polynomial
        once over the whole ``(N, arity)`` assignment matrix.  The values are
        bit-identical to ``N`` per-node :meth:`CSMNode.execute_coded` calls;
        every node is charged its exact per-node share of the counted field
        operations, which equals the scalar per-node cost because vectorised
        field ops count one scalar operation per element.
        """
        batch_eval = getattr(self.machine.transition, "evaluate_result_vectors", None)
        if batch_eval is None:
            # Non-polynomial transitions have no stacked surface; keep the
            # per-node loop (values and counts unchanged).
            true_results = np.zeros(
                (self.num_nodes, self.machine.transition.result_dim), dtype=np.int64
            )
            for node in self.nodes:
                true_results[node.node_index] = node.execute_coded(
                    coded_commands[node.node_index]
                )
            return true_results
        coded_states = np.stack([node.storage.coded_state for node in self.nodes])
        step_counter = OperationCounter()
        self.field.attach_counter(step_counter)
        try:
            true_results = batch_eval(coded_states, coded_commands)
        finally:
            self.field.attach_counter(None)
        share_add = step_counter.additions // self.num_nodes
        share_mul = step_counter.multiplications // self.num_nodes
        for node in self.nodes:
            node.counter.add(share_add)
            node.counter.mul(share_mul)
        return true_results

    def _check_commands(self, commands: np.ndarray) -> np.ndarray:
        commands_arr = self.field.array(commands)
        expected_shape = (self.num_machines, self.machine.command_dim)
        if commands_arr.shape != expected_shape:
            raise ConfigurationError(
                f"expected commands of shape {expected_shape}, got {commands_arr.shape}"
            )
        return commands_arr

    def _complete_round(
        self, commands_arr: np.ndarray, true_results: np.ndarray, batched: bool
    ) -> RoundResult:
        """Steps 3-5 shared by the scalar and batched paths: decode, update, account."""
        # Reference execution (ground truth used only for verification).
        reference_states, reference_outputs = self._reference_step(commands_arr)
        reference_results = np.concatenate([reference_states, reference_outputs], axis=1)

        # Step 3: gather what each node reports and decode.
        decode_counter = OperationCounter()
        diagnostics: dict = {}
        try:
            if batched:
                decoded_outputs, error_nodes = self._decode_phase_fast(
                    true_results, decode_counter
                )
            else:
                decoded_outputs, error_nodes = self._decode_phase(
                    true_results, decode_counter, diagnostics
                )
            decoding_failed = False
        except DecodingError as exc:
            decoded_outputs = None
            error_nodes = ()
            decoding_failed = True
            diagnostics["decoding_error"] = str(exc)

        correct = False
        decoded_states = reference_states  # fallback for book-keeping on failure
        accepted_outputs = np.zeros_like(reference_outputs)
        if not decoding_failed:
            decoded_states = decoded_outputs[:, : self.machine.state_dim]
            accepted_outputs = decoded_outputs[:, self.machine.state_dim :]
            correct = bool(
                np.array_equal(decoded_outputs, reference_results)
            )

        # Step 4: honest nodes refresh their coded states from the decoded states.
        if not decoding_failed:
            if batched:
                self._update_honest_states_batched(decoded_states)
            else:
                for node in self.honest_nodes():
                    node.update_coded_state(decoded_states)

        # Operation accounting: every honest node performs the (identical)
        # decoding, so the decode cost is charged to each of them.
        ops_per_node: dict[str, int] = {}
        for node in self.nodes:
            ops = node.counter.total
            if not node.is_faulty and not decoding_failed:
                ops += decode_counter.total if not self.decode_at_every_node else 0
            ops_per_node[node.node_id] = ops
        if self.decode_at_every_node:
            # per-node decode counters were already merged inside _decode_phase
            pass

        # Advance the reference state (the true machines move on regardless).
        self.states = reference_states
        self.round_index += 1
        diagnostics.update(
            {
                "error_nodes": tuple(error_nodes),
                "num_faulty": self.num_faulty,
                "decoding_failed": decoding_failed,
                "decode_ops": decode_counter.total,
                "batched": batched,
            }
        )
        return RoundResult(
            round_index=self.round_index - 1,
            outputs=accepted_outputs,
            states=decoded_states.copy(),
            correct=correct,
            ops_per_node=ops_per_node,
            diagnostics=diagnostics,
        )

    def _update_honest_states_batched(self, decoded_states: np.ndarray) -> None:
        """Refresh every honest node's coded state with one matrix product.

        ``C @ decoded_states`` yields all ``N`` next coded states at once;
        each honest node installs its own row and is charged the operations
        of the per-node re-encoding it replaces (``chi_i`` of equation (1)).
        """
        coded = self.field.matmul(self.scheme.coefficient_matrix, decoded_states)
        state_dim = self.machine.state_dim
        for node in self.honest_nodes():
            node.storage.replace(coded[node.node_index])
            node.counter.mul(state_dim * self.num_machines)
            node.counter.add(state_dim * (self.num_machines - 1))

    # -- internals ----------------------------------------------------------------------------
    def _reference_step(self, commands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # One vectorised pass over the K reference machines; StateMachine
        # falls back to scalar steps for transitions without a batched
        # surface, so the values match the per-machine loop bit for bit.
        return self.machine.step_batch(self.states, commands)

    def _reported_results(
        self,
        true_results: np.ndarray,
        recipient: str | None,
        skip_honest_transform: bool = False,
    ) -> list[np.ndarray | None]:
        """The per-sender results as seen by ``recipient`` (or by 'the network').

        With ``skip_honest_transform`` (the batched pipeline), honest nodes'
        rows are taken straight from the stacked result matrix and only the
        sparse set of faulty nodes runs its behaviour transform — in node
        order, so the rng stream is consumed exactly as in the dense loop
        (honest transforms never draw from it and never delay).
        """
        reported: list[np.ndarray | None] = []
        for node in self.nodes:
            if skip_honest_transform and not node.is_faulty:
                reported.append(true_results[node.node_index])
                continue
            value = node.report_result(
                true_results[node.node_index], self.rng, recipient=recipient
            )
            if value is None or node.behavior.delays_message():
                reported.append(None)
            else:
                reported.append(self.field.array(value).reshape(-1))
        return reported

    def _decode_phase(
        self,
        true_results: np.ndarray,
        decode_counter: OperationCounter,
        diagnostics: dict,
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Decode the round; returns (decoded K x result_dim, error node indices)."""
        if self.decode_at_every_node:
            return self._decode_at_each_honest_node(true_results, diagnostics)
        # Single representative decode: all honest nodes receive the same
        # broadcast values (no equivocation), so one decode stands for all.
        reported = self._reported_results(true_results, recipient=None)
        self.field.attach_counter(decode_counter)
        try:
            if any(entry is None for entry in reported):
                decoded = self.decoder.decode_partial(reported)
            else:
                stacked = np.vstack([entry for entry in reported])
                decoded = self.decoder.decode(stacked)
        finally:
            self.field.attach_counter(None)
        return decoded.outputs, decoded.error_nodes

    def _decode_phase_fast(
        self, true_results: np.ndarray, decode_counter: OperationCounter
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Batched-pipeline decode: cached matrices + persistent suspect set."""
        reported = self._reported_results(
            true_results, recipient=None, skip_honest_transform=True
        )
        self.field.attach_counter(decode_counter)
        try:
            if any(entry is None for entry in reported):
                decoded = self.decoder.decode_fast(reported, self._suspects)
            else:
                decoded = self.decoder.decode_fast(
                    np.vstack(reported), self._suspects
                )
        finally:
            self.field.attach_counter(None)
        return decoded.outputs, decoded.error_nodes

    def _decode_at_each_honest_node(
        self, true_results: np.ndarray, diagnostics: dict
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Faithful per-node decoding (handles equivocating senders).

        Every honest node decodes the set of results *it* received; the
        engine then checks that all honest nodes recovered identical values
        (the paper's claim that equivocation cannot cause divergence) and
        charges each node its own decoding cost.
        """
        per_node_outputs: dict[str, np.ndarray] = {}
        union_errors: set[int] = set()
        for node in self.honest_nodes():
            reported = self._reported_results(true_results, recipient=node.node_id)
            self.field.attach_counter(node.counter)
            try:
                if any(entry is None for entry in reported):
                    decoded = self.decoder.decode_partial(reported)
                else:
                    stacked = np.vstack([entry for entry in reported])
                    decoded = self.decoder.decode(stacked)
            finally:
                self.field.attach_counter(None)
            per_node_outputs[node.node_id] = decoded.outputs
            union_errors.update(decoded.error_nodes)
        values = list(per_node_outputs.values())
        for other in values[1:]:
            if not np.array_equal(values[0], other):
                raise DecodingError(
                    "honest nodes decoded different results despite valid decoding"
                )
        diagnostics["per_node_decode"] = True
        return values[0], tuple(sorted(union_errors))
