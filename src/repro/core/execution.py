"""The coded execution phase (Section 5.2).

Given the commands agreed in the consensus phase, the engine:

1. has every node form its coded command ``X~_i`` and compute the coded
   result ``g_i = f(S~_i, X~_i)`` (operation-counted per node);
2. collects the results each (honest) node would receive — Byzantine nodes
   may corrupt, equivocate, delay, or stay silent;
3. runs noisy polynomial interpolation (Reed–Solomon decoding) to recover
   the composite polynomial ``h`` and evaluates it at the ``omega_k`` to
   obtain every machine's true ``(S_k(t+1), Y_k(t))``;
4. has every honest node update its coded state with its own coefficient
   row (equation (1));
5. verifies the recovered values against the reference (uncoded) execution
   and reports per-node operation counts for the throughput metric.

Both the synchronous rule (decode from all ``N`` results, up to ``b`` wrong)
and the partially synchronous rule (decode from ``N - b`` results, up to
``b`` of them wrong — silent nodes become erasures) are implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DecodingError
from repro.gf.field import OperationCounter
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.scheme import LagrangeScheme
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, HonestBehavior
from repro.replication.base import BatchExecutionMixin, RoundResult
from repro.core.config import CSMConfig
from repro.core.node import CSMNode
from repro.rng import default_stream


@dataclass
class _SpeculativeRound:
    """A round executed speculatively, awaiting its deferred verification.

    ``matrix`` is the full-presence reported-result matrix the round's
    speculative decode was based on; ``faulty_rows`` caches the Byzantine
    nodes' transformed rows so a rollback replay re-uses them instead of
    re-drawing from the rng stream (which would desynchronise it from the
    batched path and break bit-identity).
    """

    batch_index: int
    coded_commands: np.ndarray
    matrix: np.ndarray
    faulty_rows: dict
    pivot: list
    reference_states: np.ndarray
    reference_outputs: np.ndarray
    base_ops: dict
    spec_ops: int


class CodedExecutionEngine(BatchExecutionMixin):
    """Executes CSM rounds over an in-memory bank of nodes."""

    def __init__(
        self,
        config: CSMConfig,
        machine: StateMachine,
        node_ids: list[str] | None = None,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
        decoder: str = "berlekamp-welch",
        decode_at_every_node: bool = False,
    ) -> None:
        if machine.degree != config.degree:
            raise ConfigurationError(
                f"configuration degree {config.degree} does not match the machine's "
                f"transition degree {machine.degree}"
            )
        self.config = config
        self.machine = machine
        self.field = config.field
        self.rng = rng if rng is not None else default_stream()
        self.decode_at_every_node = bool(decode_at_every_node)
        self.node_ids = list(node_ids) if node_ids else [
            f"node-{i}" for i in range(config.num_nodes)
        ]
        if len(self.node_ids) != config.num_nodes:
            raise ConfigurationError(
                f"expected {config.num_nodes} node ids, got {len(self.node_ids)}"
            )
        self.behaviors = dict(behaviors or {})
        self.scheme = LagrangeScheme(
            self.field, config.num_machines, config.num_nodes
        )
        self.encoder = CodedStateEncoder(self.scheme)
        self.decoder = CodedResultDecoder(
            self.scheme, transition_degree=config.degree, decoder=decoder
        )
        # Reference (true) states; shape (K, state_dim).
        self.states = np.tile(machine.initial_state, (config.num_machines, 1))
        coded_states = self.encoder.encode(self.states)
        self.nodes: list[CSMNode] = []
        for index, node_id in enumerate(self.node_ids):
            behavior = self.behaviors.get(node_id, HonestBehavior())
            self.nodes.append(
                CSMNode(
                    node_id=node_id,
                    node_index=index,
                    field=self.field,
                    transition=machine.transition,
                    coefficient_row=self.scheme.coefficient_row(index),
                    initial_coded_state=coded_states[index],
                    behavior=behavior,
                )
            )
        self.round_index = 0
        # Node indices caught reporting erroneous results; the batched decode
        # fast path avoids picking these as interpolation pivots (see
        # CodedResultDecoder.decode_fast).
        self._suspects: set[int] = set()
        # When True, a round that fails verification (or fails to decode)
        # advances *nothing*: the reference states stay put and honest nodes
        # keep their coded states, so resubmitting the same commands is
        # idempotent.  The service retry path enables this; the default False
        # preserves the legacy "the true machines move on regardless" rule.
        self.freeze_on_failure = False

    # -- structural metrics --------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def num_machines(self) -> int:
        return self.config.num_machines

    @property
    def num_faulty(self) -> int:
        return sum(1 for node in self.nodes if node.is_faulty)

    @property
    def storage_efficiency(self) -> float:
        """gamma = (K states of data) / (one coded state per node) = K."""
        return float(self.num_machines)

    def honest_nodes(self) -> list[CSMNode]:
        return [node for node in self.nodes if not node.is_faulty]

    def node_by_id(self, node_id: str) -> CSMNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigurationError(f"unknown node id {node_id}")

    def resync_node(self, node_id: str) -> None:
        """Re-install a node's coded state from the current reference states.

        The state-transfer step of crash recovery (and of a Byzantine burst
        ending): a node that sat out — or corrupted — rounds never refreshed
        its coded row, so before it can contribute to decoding again it must
        re-encode the current true states.  Uncounted (out-of-band repair,
        not part of the per-round cost model); also clears the node from the
        decoder's suspect set, since its row is now trustworthy.
        """
        node = self.node_by_id(node_id)
        coded = self.encoder.encode(self.states)
        node.storage.replace(coded[node.node_index])
        self._suspects.discard(node.node_index)

    # -- round execution ------------------------------------------------------------------
    def execute_round(self, commands: np.ndarray) -> RoundResult:
        """Run the coded execution phase for one agreed command vector."""
        commands_arr = self._check_commands(commands)
        for node in self.nodes:
            node.reset_counter()
        # Step 1-2: every node encodes its command and computes on coded data.
        true_results = np.zeros(
            (self.num_nodes, self.machine.transition.result_dim), dtype=np.int64
        )
        for node in self.nodes:
            coded_command = node.encode_command(commands_arr)
            true_results[node.node_index] = node.execute_coded(coded_command)
        return self._complete_round(commands_arr, true_results, batched=False)

    def execute_rounds(self, commands_batch: np.ndarray) -> list[RoundResult]:
        """Run a batch of ``B`` rounds through the cached-matrix pipeline.

        ``commands_batch`` has shape ``(B, K, command_dim)`` (a single
        ``(K, command_dim)`` round is promoted to a batch of one).  Compared
        with calling :meth:`execute_round` ``B`` times:

        * all ``B * N`` coded commands come from **one** ``GF(p)``
          matrix–matrix product with the cached coefficient matrix;
        * decoding runs through :meth:`CodedResultDecoder.decode_fast` with a
          persistent suspect set, so a stable fault pattern costs one scalar
          Berlekamp–Welch decode for the whole batch instead of one per
          component per round;
        * the honest nodes' coded-state refresh is one matrix product per
          round instead of ``N - b`` per-node inner-product loops.

        The coded execution itself stays sequential — round ``t + 1``
        operates on coded states refreshed from round ``t``'s decode, exactly
        as in the scalar path — and every returned ``RoundResult`` carries
        outputs, states and correctness flags bit-identical to the scalar
        path (operation *counts* are lower on the decode side: that cost
        reduction is precisely what the batched pipeline buys).

        Per-node decoding (``decode_at_every_node=True``) models per-receiver
        equivocation and falls back to the scalar path unchanged.

        Rounds need not carry one *real* command per machine: the service
        scheduler pads idle machines' rows with
        :meth:`StateMachine.noop_command` (an identity transition for the
        library machines), and a noop row is coded, executed and decoded
        exactly like any other command — ragged traffic costs nothing extra
        in this pipeline.
        """
        batch_arr = self._validate_batch(commands_batch)
        if self.decode_at_every_node:
            return [self.execute_round(batch_arr[b]) for b in range(batch_arr.shape[0])]
        # Stage 1: encode every round's commands in one matrix product.  The
        # product itself is uncounted; each node is charged the operations it
        # would have spent encoding its own coded command (the batched
        # pipeline changes who *performs* the multiply, not the per-node
        # protocol cost model).
        coded_commands = self.encoder.encode_batch(batch_arr)
        results: list[RoundResult] = []
        for b in range(batch_arr.shape[0]):
            commands_arr = batch_arr[b]
            self._prime_round_counters()
            true_results = self._coded_step_all_nodes(coded_commands[b])
            results.append(
                self._complete_round(commands_arr, true_results, batched=True)
            )
        return results

    # -- speculative pipelined execution -------------------------------------------------
    def execute_rounds_pipelined(
        self, commands_batch: np.ndarray, verify_window: int = 16
    ) -> list[RoundResult]:
        """Run ``B`` rounds with decoding of round ``t`` overlapped past ``t+1``.

        The batched pipeline of :meth:`execute_rounds` still pays a full
        suspect-learning decode on every round's critical path before the
        next round may execute.  This mode splits each full-presence round
        into two phases:

        * a cheap **speculative** phase: interpolate a candidate through the
          ``dimension`` non-suspect pivot rows only (one small matrix
          product), refresh the honest coded states from the candidate
          immediately, and let round ``t + 1`` execute on them;
        * a deferred **verify** phase: once a verification window fills, the
          full error-locating re-encode check runs for the whole window as
          **one** stacked matrix product.  A window whose components all fit
          the error budget confirms that every speculative candidate *was*
          the unique decoding (same uniqueness argument as
          :meth:`~repro.lcc.decoder.CodedResultDecoder.decode_fast`), so the
          speculated state advance already matches the batched path bit for
          bit.

        On a verification mismatch the engine rolls back: the first
        unconfirmed round is decoded through the scalar-capable path, the
        honest coded states are restored from the last verified checkpoint
        (the decoded states of the last resolved round that refreshed, or
        the states this call started from), and the invalidated suffix of
        the window is deterministically re-executed — honest results are
        recomputed from the repaired states while the Byzantine rows and
        the rng stream are replayed from the speculation-time cache.  The
        verification window grows adaptively (1, 2, 4, ... up to
        ``verify_window``) and collapses back to 1 after a rollback, so a
        cold-start or fresh fault pattern costs at most one mis-speculated
        window before the suspect set catches up.

        Rounds with missing results (silent/delayed nodes) flush the window
        and resolve inline through the erasure-capable decode, exactly as
        the batched path would.

        The returned :class:`RoundResult` records carry outputs, states,
        correctness flags and flagged error nodes bit-identical to
        :meth:`execute_rounds` (property-tested, including rollback).  Only
        the *operation counts* differ — each round is charged the
        speculative interpolation plus an even share of its window's
        stacked verification instead of a full per-round decode, which is
        precisely the cost the pipeline removes.
        """
        if verify_window < 1:
            raise ConfigurationError(
                f"verify_window must be positive, got {verify_window}"
            )
        batch_arr = self._validate_batch(commands_batch)
        batch_eval = getattr(self.machine.transition, "evaluate_result_vectors", None)
        if self.decode_at_every_node or batch_eval is None or self.freeze_on_failure:
            # Per-recipient decoding models equivocation, non-polynomial
            # transitions have no stacked surface to speculate over, and
            # freeze-on-failure contradicts speculation (which eagerly
            # advances state every round): in all three cases the
            # batched/scalar path runs unchanged.
            return self.execute_rounds(batch_arr)
        coded_commands = self.encoder.encode_batch(batch_arr)
        num_rounds = batch_arr.shape[0]
        results: list[RoundResult | None] = [None] * num_rounds
        window: list[_SpeculativeRound] = []
        # The contiguous coded-state bank the speculative rounds advance;
        # node storage is synchronised once, when the call completes.
        self._pipeline_honest_nodes = self.honest_nodes()
        self._pipeline_honest_idx = np.array(
            [node.node_index for node in self._pipeline_honest_nodes], dtype=np.intp
        )
        self._pipeline_bank = np.stack(
            [node.storage.coded_state for node in self.nodes]
        )
        # Rollback anchors: the honest coded states entering this call, then
        # the decoded states of the last resolved round that refreshed.
        self._pipeline_round_base = self.round_index
        self._pipeline_initial_bank = self._pipeline_bank.copy()
        self._pipeline_resolved_refresh = None
        window_target = 1
        pivot_cache: tuple | None = None
        for b in range(num_rounds):
            commands_arr = batch_arr[b]
            self._prime_round_counters()
            true_results = self._coded_step_from_bank(coded_commands[b])
            reference_states, reference_outputs = self._reference_step(commands_arr)
            self.states = reference_states
            matrix, faulty_rows = self._pipeline_reported(true_results)
            if any(row is None for row in faulty_rows.values()):
                # Partial presence: flush speculation, then resolve this
                # round inline through the erasure-capable decode.  If the
                # flush rolled back, this round's honest results were
                # computed on the mis-speculated bank: recompute them on the
                # repaired states (the counters re-charge exactly as a
                # replay does; Byzantine rows and the rng stream come from
                # the cache, so no draw is repeated).
                window_target, rolled_back = self._resolve_pipeline_window(
                    window, results, window_target, verify_window
                )
                pivot_cache = None
                if rolled_back:
                    self._prime_round_counters()
                    true_results = self._coded_step_from_bank(coded_commands[b])
                    matrix = true_results
                reported = [
                    faulty_rows[i] if i in faulty_rows else matrix[i]
                    for i in range(self.num_nodes)
                ]
                results[b] = self._pipeline_resolve_round(
                    b, reported, reference_states, reference_outputs, "inline"
                )
                continue
            if pivot_cache is None:
                pivot_cache = self._pipeline_pivot_cache()
            pivot, fused_refresh, spec_ops = pivot_cache
            # Fused speculative decode + refresh: ``(C @ T_omega) @ sub`` is
            # the same canonical product as refreshing from the interpolated
            # candidate states, in one matrix multiply; ``spec_ops`` charges
            # the interpolation the fusion absorbed.
            coded = self.field.matmul(
                fused_refresh, matrix[pivot, : self.machine.state_dim]
            )
            idx = self._pipeline_honest_idx
            self._pipeline_bank[idx] = coded[idx]
            self._charge_refresh(self._pipeline_honest_nodes)
            window.append(
                _SpeculativeRound(
                    batch_index=b,
                    coded_commands=coded_commands[b],
                    matrix=matrix,
                    faulty_rows=faulty_rows,
                    pivot=pivot,
                    reference_states=reference_states,
                    reference_outputs=reference_outputs,
                    base_ops={
                        node.node_id: node.counter.total for node in self.nodes
                    },
                    spec_ops=spec_ops,
                )
            )
            if len(window) >= min(window_target, verify_window):
                next_target, rolled_back = self._resolve_pipeline_window(
                    window, results, window_target, verify_window
                )
                if rolled_back or next_target != window_target:
                    pivot_cache = None  # suspects may have shifted the pivot
                window_target = next_target
        self._resolve_pipeline_window(window, results, window_target, verify_window)
        # Synchronise node storage with the bank the call advanced (faulty
        # nodes never refresh, so only honest rows can have moved).  Every
        # round that decoded refreshed the bank once, so the storage round
        # counter advances exactly as the batched path's per-round replace.
        refreshes = sum(
            1 for result in results if not result.diagnostics["decoding_failed"]
        )
        if refreshes:
            for node in self._pipeline_honest_nodes:
                # An explicit copy: installing a view of the bank would leave
                # every honest store aliasing one shared array.
                node.storage.install_canonical(
                    self._pipeline_bank[node.node_index].copy(),
                    rounds=refreshes,
                )
        self.round_index = self._pipeline_round_base + num_rounds
        return results

    def _pipeline_reported(
        self, true_results: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        """The reported-result matrix with honest rows taken from the stack.

        Byzantine transforms run in node order so the rng stream is consumed
        exactly as in :meth:`_reported_results`; the transformed rows are
        returned separately (``None`` marks silence/delay) so a rollback
        replay can re-use them without re-drawing.
        """
        faulty_rows: dict[int, np.ndarray | None] = {}
        if self.num_faulty == 0:
            return true_results, faulty_rows
        matrix = true_results.copy()
        for node in self.nodes:
            if not node.is_faulty:
                continue
            value = node.report_result(
                true_results[node.node_index], self.rng, recipient=None
            )
            if value is None or node.behavior.delays_message():
                faulty_rows[node.node_index] = None
            else:
                row = self.field.array(value).reshape(-1)
                faulty_rows[node.node_index] = row
                matrix[node.node_index] = row
        return matrix, faulty_rows

    def _resolve_pipeline_window(
        self,
        window: list[_SpeculativeRound],
        results: list,
        window_target: int,
        verify_window: int,
    ) -> tuple[int, bool]:
        """Verify a window of speculated rounds.

        One stacked re-encode product checks every component of every round
        in the window against the error budget.  Confirmed rounds emit their
        (already-installed) speculative result; the first unconfirmed round
        triggers the rollback path and the suffix replay.  Returns
        ``(next_window_target, rolled_back)`` — callers must recompute
        anything derived from the speculative state bank when a rollback
        repaired it.
        """
        if not window:
            return window_target, False
        state_dim = self.machine.state_dim
        pivot = window[0].pivot
        to_all, to_omegas, _ = self.decoder.pivot_matrices(pivot)
        stacked = (
            window[0].matrix
            if len(window) == 1
            else np.hstack([entry.matrix for entry in window])
        )
        sub = stacked[pivot, :]
        window_counter = OperationCounter()
        self.field.attach_counter(window_counter)
        try:
            reencoded = self.field.matmul(to_all, sub)
            candidates = self.field.matmul(to_omegas, sub)
        finally:
            self.field.attach_counter(None)
        width = window[0].matrix.shape[1]
        confirmed, rollback_at = self.decoder.stacked_verification(
            stacked, reencoded, width
        )
        verify_share = window_counter.total // len(window)
        for offset, error_nodes in enumerate(confirmed):
            entry = window[offset]
            columns = slice(offset * width, (offset + 1) * width)
            self._suspects.update(error_nodes)
            candidate = np.ascontiguousarray(candidates[:, columns])
            decoded_states = candidate[:, :state_dim]
            reference_results = np.concatenate(
                [entry.reference_states, entry.reference_outputs], axis=1
            )
            decode_ops = entry.spec_ops + verify_share
            ops_per_node = {
                node.node_id: entry.base_ops[node.node_id]
                + (decode_ops if not node.is_faulty else 0)
                for node in self.nodes
            }
            results[entry.batch_index] = RoundResult(
                round_index=self._pipeline_round_base + entry.batch_index,
                outputs=candidate[:, state_dim:],
                states=decoded_states.copy(),
                correct=bool(np.array_equal(candidate, reference_results)),
                ops_per_node=ops_per_node,
                diagnostics={
                    "error_nodes": error_nodes,
                    "num_faulty": self.num_faulty,
                    "decoding_failed": False,
                    "decode_ops": decode_ops,
                    "batched": True,
                    "pipelined": True,
                    "speculation": "confirmed",
                },
            )
            self._pipeline_resolved_refresh = decoded_states
        if rollback_at is None:
            window.clear()
            return min(window_target * 2, verify_window), False
        # Rollback: the offending round decodes through the scalar-capable
        # path (repairing or restoring honest state), then the invalidated
        # suffix re-executes deterministically on the repaired states.
        entry = window[rollback_at]
        results[entry.batch_index] = self._pipeline_resolve_round(
            entry.batch_index,
            entry.matrix,
            entry.reference_states,
            entry.reference_outputs,
            "rollback",
            base_ops=entry.base_ops,
        )
        for entry in window[rollback_at + 1 :]:
            results[entry.batch_index] = self._pipeline_replay_round(entry)
        window.clear()
        return 1, True

    def _pipeline_replay_round(self, entry: _SpeculativeRound) -> RoundResult:
        """Re-execute one invalidated round on the repaired honest states.

        Honest results are recomputed (their speculative inputs were wrong);
        Byzantine rows come from the speculation-time cache, so no rng draw
        is repeated and the reported matrix matches the batched path's.
        """
        self._prime_round_counters()
        true_results = self._coded_step_from_bank(entry.coded_commands)
        matrix = true_results.copy()
        for index, row in entry.faulty_rows.items():
            matrix[index] = row
        return self._pipeline_resolve_round(
            entry.batch_index,
            matrix,
            entry.reference_states,
            entry.reference_outputs,
            "replayed",
        )

    def _pipeline_resolve_round(
        self,
        batch_index: int,
        reported,
        reference_states: np.ndarray,
        reference_outputs: np.ndarray,
        speculation: str,
        base_ops: dict | None = None,
    ) -> RoundResult:
        """Non-speculative completion of one pipelined round.

        Shared by inline partial-presence rounds, rollback rounds and
        replayed suffix rounds: decode through the suspect-learning fast
        path, settle honest state (refresh on success, restore to the last
        verified checkpoint when a rollback round fails to decode) and
        account the round exactly as :meth:`_complete_round` would.
        """
        decode_counter = OperationCounter()
        diagnostics: dict = {}
        self.field.attach_counter(decode_counter)
        try:
            decoded = self.decoder.decode_fast(reported, self._suspects)
            decoding_failed = False
        except DecodingError as exc:
            decoded = None
            decoding_failed = True
            diagnostics["decoding_error"] = str(exc)
        finally:
            self.field.attach_counter(None)
        reference_results = np.concatenate(
            [reference_states, reference_outputs], axis=1
        )
        correct = False
        decoded_states = reference_states  # fallback for book-keeping on failure
        accepted_outputs = np.zeros_like(reference_outputs)
        error_nodes: tuple[int, ...] = ()
        if not decoding_failed:
            error_nodes = decoded.error_nodes
            decoded_states = decoded.outputs[:, : self.machine.state_dim]
            accepted_outputs = decoded.outputs[:, self.machine.state_dim :]
            correct = bool(np.array_equal(decoded.outputs, reference_results))
            # A rollback round's speculative refresh already charged chi_i;
            # repairing the installed values must not charge it twice.
            self._refresh_honest_states_fast(
                decoded_states, charge=(speculation != "rollback")
            )
            self._pipeline_resolved_refresh = decoded_states
        elif speculation == "rollback":
            self._pipeline_restore_honest_states()
        if base_ops is None:
            base_ops = {node.node_id: node.counter.total for node in self.nodes}
        ops_per_node = {}
        for node in self.nodes:
            ops = base_ops[node.node_id]
            if not node.is_faulty and not decoding_failed:
                ops += decode_counter.total
            ops_per_node[node.node_id] = ops
        diagnostics.update(
            {
                "error_nodes": tuple(error_nodes),
                "num_faulty": self.num_faulty,
                "decoding_failed": decoding_failed,
                "decode_ops": decode_counter.total,
                "batched": True,
                "pipelined": True,
                "speculation": speculation,
            }
        )
        return RoundResult(
            round_index=self._pipeline_round_base + batch_index,
            outputs=accepted_outputs,
            states=decoded_states.copy(),
            correct=correct,
            ops_per_node=ops_per_node,
            diagnostics=diagnostics,
        )

    def _pipeline_pivot_cache(self) -> tuple:
        """``(pivot, C @ T_omega_states, spec_ops)`` for the current suspects.

        The fused matrix maps pivot rows straight to refreshed coded states;
        it is memoised per pivot (suspect churn across a run touches only a
        handful of pivots).  ``spec_ops`` is the operation count of the
        candidate-state interpolation the fusion absorbs — the cost each
        speculative round charges as its decode share.
        """
        pivot = self.decoder.pivot_rows(list(range(self.num_nodes)), self._suspects)
        key = tuple(pivot)
        cache = getattr(self, "_fused_refresh_cache", None)
        if cache is None:
            cache = self._fused_refresh_cache = {}
        entry = cache.get(key)
        if entry is None:
            _to_all, to_omegas, _ = self.decoder.pivot_matrices(pivot)
            fused = self.field.matmul(self.scheme.coefficient_matrix, to_omegas)
            dimension = self.decoder.code.dimension
            state_dim = self.machine.state_dim
            spec_ops = self.num_machines * dimension * state_dim + (
                self.num_machines * max(dimension - 1, 0) * state_dim
            )
            entry = cache[key] = (pivot, fused, spec_ops)
        return entry

    def _prime_round_counters(self) -> None:
        """Reset every node's counter and charge the ``rho_i`` encode cost.

        The per-node cost model of forming the coded command — shared by the
        batched round loop, the speculative rounds, and every replay, so the
        encode charging formula lives in exactly one place.
        """
        cmd_dim = self.machine.command_dim
        mul = cmd_dim * self.num_machines
        add = cmd_dim * (self.num_machines - 1)
        for node in self.nodes:
            node.reset_counter()
            node.counter.mul(mul)
            node.counter.add(add)

    def _charge_refresh(self, nodes) -> None:
        """Charge each node the per-round ``chi_i`` re-encoding cost."""
        state_dim = self.machine.state_dim
        mul = state_dim * self.num_machines
        add = state_dim * (self.num_machines - 1)
        for node in nodes:
            node.counter.mul(mul)
            node.counter.add(add)

    def _coded_step_from_bank(self, coded_commands: np.ndarray) -> np.ndarray:
        """The stacked coded transition, read from the pipeline's state bank.

        Identical to :meth:`_coded_step_all_nodes` (values and per-node
        charges) except the coded states come from the contiguous bank the
        speculative refresh maintains, instead of per-node storage copies.
        """
        step_counter = OperationCounter()
        self.field.attach_counter(step_counter)
        try:
            true_results = self.machine.transition.evaluate_result_vectors(
                self._pipeline_bank, coded_commands
            )
        finally:
            self.field.attach_counter(None)
        share_add = step_counter.additions // self.num_nodes
        share_mul = step_counter.multiplications // self.num_nodes
        for node in self.nodes:
            node.counter.add(share_add)
            node.counter.mul(share_mul)
        return true_results

    def _refresh_honest_states_fast(
        self, decoded_states: np.ndarray, charge: bool = True
    ) -> None:
        """Pipelined honest-state refresh on the contiguous bank.

        Produces coded rows bit-identical to
        :meth:`_update_honest_states_batched` (same canonical ``C @ S``
        product) and charges the same per-node ``chi_i`` cost when
        ``charge``; rollback restores pass ``charge=False`` because the
        batched path never performed — or charged — the undone refresh.
        """
        coded = self.field.matmul(self.scheme.coefficient_matrix, decoded_states)
        idx = self._pipeline_honest_idx
        self._pipeline_bank[idx] = coded[idx]
        if charge:
            self._charge_refresh(self._pipeline_honest_nodes)

    def _pipeline_restore_honest_states(self) -> None:
        """Roll honest coded states back to the last verified checkpoint."""
        if self._pipeline_resolved_refresh is not None:
            self._refresh_honest_states_fast(
                self._pipeline_resolved_refresh, charge=False
            )
            return
        idx = self._pipeline_honest_idx
        self._pipeline_bank[idx] = self._pipeline_initial_bank[idx]

    def _coded_step_all_nodes(self, coded_commands: np.ndarray) -> np.ndarray:
        """Evaluate every node's coded transition in one stacked pass.

        Stacks all ``N`` coded states (faulty nodes keep computing on their —
        possibly stale — stored state, exactly as in the scalar path) against
        the round's coded commands and evaluates each component polynomial
        once over the whole ``(N, arity)`` assignment matrix.  The values are
        bit-identical to ``N`` per-node :meth:`CSMNode.execute_coded` calls;
        every node is charged its exact per-node share of the counted field
        operations, which equals the scalar per-node cost because vectorised
        field ops count one scalar operation per element.
        """
        batch_eval = getattr(self.machine.transition, "evaluate_result_vectors", None)
        if batch_eval is None:
            # Non-polynomial transitions have no stacked surface; keep the
            # per-node loop (values and counts unchanged).
            true_results = np.zeros(
                (self.num_nodes, self.machine.transition.result_dim), dtype=np.int64
            )
            for node in self.nodes:
                true_results[node.node_index] = node.execute_coded(
                    coded_commands[node.node_index]
                )
            return true_results
        coded_states = np.stack([node.storage.coded_state for node in self.nodes])
        step_counter = OperationCounter()
        self.field.attach_counter(step_counter)
        try:
            true_results = batch_eval(coded_states, coded_commands)
        finally:
            self.field.attach_counter(None)
        share_add = step_counter.additions // self.num_nodes
        share_mul = step_counter.multiplications // self.num_nodes
        for node in self.nodes:
            node.counter.add(share_add)
            node.counter.mul(share_mul)
        return true_results

    def _check_commands(self, commands: np.ndarray) -> np.ndarray:
        commands_arr = self.field.array(commands)
        expected_shape = (self.num_machines, self.machine.command_dim)
        if commands_arr.shape != expected_shape:
            raise ConfigurationError(
                f"expected commands of shape {expected_shape}, got {commands_arr.shape}"
            )
        return commands_arr

    def _complete_round(
        self, commands_arr: np.ndarray, true_results: np.ndarray, batched: bool
    ) -> RoundResult:
        """Steps 3-5 shared by the scalar and batched paths: decode, update, account."""
        # Reference execution (ground truth used only for verification).
        reference_states, reference_outputs = self._reference_step(commands_arr)
        reference_results = np.concatenate([reference_states, reference_outputs], axis=1)

        # Step 3: gather what each node reports and decode.
        decode_counter = OperationCounter()
        diagnostics: dict = {}
        try:
            if batched:
                decoded_outputs, error_nodes = self._decode_phase_fast(
                    true_results, decode_counter
                )
            else:
                decoded_outputs, error_nodes = self._decode_phase(
                    true_results, decode_counter, diagnostics
                )
            decoding_failed = False
        except DecodingError as exc:
            decoded_outputs = None
            error_nodes = ()
            decoding_failed = True
            diagnostics["decoding_error"] = str(exc)

        correct = False
        decoded_states = reference_states  # fallback for book-keeping on failure
        accepted_outputs = np.zeros_like(reference_outputs)
        if not decoding_failed:
            decoded_states = decoded_outputs[:, : self.machine.state_dim]
            accepted_outputs = decoded_outputs[:, self.machine.state_dim :]
            correct = bool(
                np.array_equal(decoded_outputs, reference_results)
            )

        # A frozen round (retry mode, verification or decode failed) must
        # not advance anything — neither the honest coded states (a refresh
        # from a wrong decode would desynchronise them from the frozen
        # reference) nor the reference states below — so the same commands
        # can be re-driven later against identical state.
        frozen = self.freeze_on_failure and (decoding_failed or not correct)

        # Step 4: honest nodes refresh their coded states from the decoded states.
        if not decoding_failed and not frozen:
            if batched:
                self._update_honest_states_batched(decoded_states)
            else:
                for node in self.honest_nodes():
                    node.update_coded_state(decoded_states)

        # Operation accounting: every honest node performs the (identical)
        # decoding, so the decode cost is charged to each of them.
        ops_per_node: dict[str, int] = {}
        for node in self.nodes:
            ops = node.counter.total
            if not node.is_faulty and not decoding_failed:
                ops += decode_counter.total if not self.decode_at_every_node else 0
            ops_per_node[node.node_id] = ops
        if self.decode_at_every_node:
            # per-node decode counters were already merged inside _decode_phase
            pass

        # Advance the reference state (the true machines move on regardless
        # — unless the round is frozen for retry).
        if frozen:
            diagnostics["state_frozen"] = True
        else:
            self.states = reference_states
        self.round_index += 1
        diagnostics.update(
            {
                "error_nodes": tuple(error_nodes),
                "num_faulty": self.num_faulty,
                "decoding_failed": decoding_failed,
                "decode_ops": decode_counter.total,
                "batched": batched,
            }
        )
        return RoundResult(
            round_index=self.round_index - 1,
            outputs=accepted_outputs,
            states=decoded_states.copy(),
            correct=correct,
            ops_per_node=ops_per_node,
            diagnostics=diagnostics,
        )

    def _update_honest_states_batched(self, decoded_states: np.ndarray) -> None:
        """Refresh every honest node's coded state with one matrix product.

        ``C @ decoded_states`` yields all ``N`` next coded states at once;
        each honest node installs its own row and is charged the operations
        of the per-node re-encoding it replaces (``chi_i`` of equation (1)).
        """
        coded = self.field.matmul(self.scheme.coefficient_matrix, decoded_states)
        state_dim = self.machine.state_dim
        for node in self.honest_nodes():
            node.storage.replace(coded[node.node_index])
            node.counter.mul(state_dim * self.num_machines)
            node.counter.add(state_dim * (self.num_machines - 1))

    # -- internals ----------------------------------------------------------------------------
    def _reference_step(self, commands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # One vectorised pass over the K reference machines; StateMachine
        # falls back to scalar steps for transitions without a batched
        # surface, so the values match the per-machine loop bit for bit.
        return self.machine.step_batch(self.states, commands)

    def _reported_results(
        self,
        true_results: np.ndarray,
        recipient: str | None,
        skip_honest_transform: bool = False,
    ) -> list[np.ndarray | None]:
        """The per-sender results as seen by ``recipient`` (or by 'the network').

        With ``skip_honest_transform`` (the batched pipeline), honest nodes'
        rows are taken straight from the stacked result matrix and only the
        sparse set of faulty nodes runs its behaviour transform — in node
        order, so the rng stream is consumed exactly as in the dense loop
        (honest transforms never draw from it and never delay).
        """
        reported: list[np.ndarray | None] = []
        for node in self.nodes:
            if skip_honest_transform and not node.is_faulty:
                reported.append(true_results[node.node_index])
                continue
            value = node.report_result(
                true_results[node.node_index], self.rng, recipient=recipient
            )
            if value is None or node.behavior.delays_message():
                reported.append(None)
            else:
                reported.append(self.field.array(value).reshape(-1))
        return reported

    def _decode_phase(
        self,
        true_results: np.ndarray,
        decode_counter: OperationCounter,
        diagnostics: dict,
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Decode the round; returns (decoded K x result_dim, error node indices)."""
        if self.decode_at_every_node:
            return self._decode_at_each_honest_node(true_results, diagnostics)
        # Single representative decode: all honest nodes receive the same
        # broadcast values (no equivocation), so one decode stands for all.
        reported = self._reported_results(true_results, recipient=None)
        self.field.attach_counter(decode_counter)
        try:
            if any(entry is None for entry in reported):
                decoded = self.decoder.decode_partial(reported)
            else:
                stacked = np.vstack([entry for entry in reported])
                decoded = self.decoder.decode(stacked)
        finally:
            self.field.attach_counter(None)
        return decoded.outputs, decoded.error_nodes

    def _decode_phase_fast(
        self, true_results: np.ndarray, decode_counter: OperationCounter
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Batched-pipeline decode: cached matrices + persistent suspect set."""
        reported = self._reported_results(
            true_results, recipient=None, skip_honest_transform=True
        )
        self.field.attach_counter(decode_counter)
        try:
            if any(entry is None for entry in reported):
                decoded = self.decoder.decode_fast(reported, self._suspects)
            else:
                decoded = self.decoder.decode_fast(
                    np.vstack(reported), self._suspects
                )
        finally:
            self.field.attach_counter(None)
        return decoded.outputs, decoded.error_nodes

    def _decode_at_each_honest_node(
        self, true_results: np.ndarray, diagnostics: dict
    ) -> tuple[np.ndarray, tuple[int, ...]]:
        """Faithful per-node decoding (handles equivocating senders).

        Every honest node decodes the set of results *it* received; the
        engine then checks that all honest nodes recovered identical values
        (the paper's claim that equivocation cannot cause divergence) and
        charges each node its own decoding cost.
        """
        per_node_outputs: dict[str, np.ndarray] = {}
        union_errors: set[int] = set()
        for node in self.honest_nodes():
            reported = self._reported_results(true_results, recipient=node.node_id)
            self.field.attach_counter(node.counter)
            try:
                if any(entry is None for entry in reported):
                    decoded = self.decoder.decode_partial(reported)
                else:
                    stacked = np.vstack([entry for entry in reported])
                    decoded = self.decoder.decode(stacked)
            finally:
                self.field.attach_counter(None)
            per_node_outputs[node.node_id] = decoded.outputs
            union_errors.update(decoded.error_nodes)
        values = list(per_node_outputs.values())
        for other in values[1:]:
            if not np.array_equal(values[0], other):
                raise DecodingError(
                    "honest nodes decoded different results despite valid decoding"
                )
        diagnostics["per_node_decode"] = True
        return values[0], tuple(sorted(union_errors))
