"""A single CSM compute node.

Each node ``i`` owns:

* its evaluation point ``alpha_i`` and the Lagrange coefficient row
  ``(c_i1, ..., c_iK)``;
* a :class:`~repro.core.storage.CodedStateStore` holding ``S~_i(t)``;
* a Byzantine behaviour (honest by default).

Per round the node: encodes the agreed commands into its coded command
``X~_i(t)`` (``rho_i``), evaluates the transition polynomial on
``(S~_i, X~_i)`` producing the coded result ``g_i``, optionally decodes the
results received from all nodes (``psi_i``), and updates its coded state
(``chi_i``).  Operation counts for each of these are recorded so the
throughput experiments can reproduce the paper's accounting.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field, OperationCounter
from repro.machine.polynomial_machine import PolynomialTransition
from repro.net.byzantine import ByzantineBehavior, HonestBehavior
from repro.core.storage import CodedStateStore


class CSMNode:
    """One compute node participating in CSM."""

    def __init__(
        self,
        node_id: str,
        node_index: int,
        field: Field,
        transition: PolynomialTransition,
        coefficient_row: np.ndarray,
        initial_coded_state: np.ndarray,
        behavior: ByzantineBehavior | None = None,
    ) -> None:
        self.node_id = str(node_id)
        self.node_index = int(node_index)
        self.field = field
        self.transition = transition
        self.coefficient_row = field.array(coefficient_row).reshape(-1)
        self.storage = CodedStateStore(field, node_index, initial_coded_state)
        self.behavior = behavior or HonestBehavior()
        self.counter = OperationCounter()
        if self.storage.state_dim != transition.state_dim:
            raise ConfigurationError(
                f"coded state dimension {self.storage.state_dim} does not match the "
                f"transition's state dimension {transition.state_dim}"
            )

    # -- properties -------------------------------------------------------------------
    @property
    def is_faulty(self) -> bool:
        return self.behavior.is_faulty

    @property
    def coded_state(self) -> np.ndarray:
        return self.storage.coded_state

    def reset_counter(self) -> None:
        self.counter = OperationCounter()

    # -- per-round operations ------------------------------------------------------------
    def encode_command(self, commands: np.ndarray) -> np.ndarray:
        """``rho_i`` part 1: form the coded command ``X~_i = sum_k c_ik X_k``."""
        arr = self.field.array(commands)
        if arr.ndim != 2 or arr.shape[0] != self.coefficient_row.shape[0]:
            raise ConfigurationError(
                f"expected commands of shape (K={self.coefficient_row.shape[0]}, dim), "
                f"got {arr.shape}"
            )
        self.field.attach_counter(self.counter)
        try:
            coded = np.zeros(arr.shape[1], dtype=np.int64)
            for component in range(arr.shape[1]):
                coded[component] = self.field.dot(self.coefficient_row, arr[:, component])
        finally:
            self.field.attach_counter(None)
        return coded

    def execute_coded(self, coded_command: np.ndarray) -> np.ndarray:
        """``rho_i`` part 2: the honest coded computation ``g_i = f(S~_i, X~_i)``.

        The returned vector concatenates the coded next-state components and
        the coded output components.  Faulty behaviour is applied *by the
        execution engine* when the result is sent, not here, so tests can
        always inspect the true value.
        """
        self.field.attach_counter(self.counter)
        try:
            result = self.transition.evaluate_result_vector(
                self.storage.coded_state, coded_command
            )
        finally:
            self.field.attach_counter(None)
        return result

    def report_result(
        self,
        true_result: np.ndarray,
        rng: np.random.Generator,
        recipient: str | None = None,
    ) -> np.ndarray | None:
        """What this node actually sends (behaviour-transformed, or ``None``)."""
        return self.behavior.transform_result(
            self.field, self.node_id, true_result, rng, recipient=recipient
        )

    def update_coded_state(self, decoded_next_states: np.ndarray) -> None:
        """``chi_i``: refresh the stored coded state from the decoded states."""
        self.field.attach_counter(self.counter)
        try:
            self.storage.update_from_decoded(self.coefficient_row, decoded_next_states)
        finally:
            self.field.attach_counter(None)

    def install_coded_state(self, coded_state: np.ndarray) -> None:
        """Delegated update path: accept a coded state computed by the worker."""
        self.storage.replace(coded_state)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CSMNode(id={self.node_id!r}, index={self.node_index}, "
            f"faulty={self.is_faulty})"
        )
