"""Coded state storage.

Each CSM node stores exactly one coded state vector ``S~_i(t)`` whose size
equals a single machine's state (this is what gives ``gamma = K``).  The
store keeps the vector, knows how to refresh it after a round — either by
re-encoding the decoded next states locally (``chi_i`` in the paper, eq. (1))
or by accepting a coded state pushed by the delegated worker — and records a
small amount of history for the audit tests.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field


class CodedStateStore:
    """Storage of one node's coded state across rounds."""

    def __init__(self, field: Field, node_index: int, coded_state: np.ndarray) -> None:
        self.field = field
        self.node_index = int(node_index)
        self._coded_state = field.array(coded_state).reshape(-1)
        self._round = 0

    # -- accessors -----------------------------------------------------------------
    @property
    def coded_state(self) -> np.ndarray:
        """The current coded state ``S~_i(t)`` (a copy)."""
        return self._coded_state.copy()

    @property
    def state_dim(self) -> int:
        return int(self._coded_state.shape[0])

    @property
    def round_index(self) -> int:
        return self._round

    @property
    def storage_elements(self) -> int:
        """Number of field elements stored — the denominator of ``gamma``."""
        return self.state_dim

    # -- updates ----------------------------------------------------------------------
    def install_canonical(self, coded_state: np.ndarray, rounds: int = 1) -> None:
        """Install an already-canonical coded state without re-validation.

        Trusted fast path for the speculative execution pipeline, whose rows
        come straight out of a canonical ``GF(p)`` matrix product; the public
        :meth:`replace` stays the validating entry point for everything else.
        ``rounds`` is how many per-round refreshes this install represents —
        the pipeline synchronises storage once per call, so it passes the
        call's refresh count to keep :attr:`round_index` in step with the
        batched path's one-:meth:`replace`-per-refresh accounting.
        """
        self._coded_state = coded_state
        self._round += int(rounds)

    def replace(self, coded_state: np.ndarray) -> None:
        """Install a new coded state (delegated-worker update path)."""
        new_state = self.field.array(coded_state).reshape(-1)
        if new_state.shape[0] != self.state_dim:
            raise ConfigurationError(
                f"coded state dimension changed from {self.state_dim} to {new_state.shape[0]}"
            )
        self._coded_state = new_state
        self._round += 1

    def update_from_decoded(
        self, coefficient_row: np.ndarray, decoded_states: np.ndarray
    ) -> None:
        """Recompute ``S~_i(t+1) = sum_k c_ik S^_k(t+1)`` from decoded states.

        This is the local update ``chi_i`` of equation (1): the node has just
        decoded all ``K`` next states and re-encodes them with its own fixed
        coefficient row.
        """
        states = self.field.array(decoded_states)
        if states.ndim != 2:
            raise ConfigurationError("decoded states must be a (K, state_dim) array")
        if states.shape[1] != self.state_dim:
            raise ConfigurationError(
                f"decoded state dimension {states.shape[1]} does not match stored "
                f"dimension {self.state_dim}"
            )
        row = self.field.array(coefficient_row).reshape(-1)
        if row.shape[0] != states.shape[0]:
            raise ConfigurationError(
                f"coefficient row length {row.shape[0]} does not match K={states.shape[0]}"
            )
        new_state = np.zeros(self.state_dim, dtype=np.int64)
        for component in range(self.state_dim):
            new_state[component] = self.field.dot(row, states[:, component])
        self._coded_state = new_state
        self._round += 1
