"""The full CSM protocol: consensus phase + coded execution phase.

:class:`CSMProtocol` wires together the pieces the paper's Figure 2
describes: clients broadcast commands to all compute nodes (the shared
command pool), every round the nodes run consensus to agree on one command
per machine, the coded execution phase computes and decodes the results, and
the outputs are returned to the submitting clients.

The protocol can run over either network model:

* synchronous — :class:`AuthenticatedBroadcastConsensus` + full-``N``
  decoding;
* partially synchronous — :class:`PBFTConsensus` + ``N - b`` decoding with
  erasures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ConsensusError
from repro.consensus.broadcast import AuthenticatedBroadcastConsensus
from repro.consensus.interface import ConsensusDecision
from repro.consensus.command_pool import CommandPool
from repro.consensus.pbft import PBFTConsensus
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior
from repro.net.latency import PartiallySynchronousDelay, SynchronousDelay
from repro.net.network import SimulatedNetwork
from repro.rounds import ProtocolRound, RoundProtocol
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.rng import default_stream, derived_stream

__all__ = ["CSMProtocol", "ProtocolRound"]


class CSMProtocol(RoundProtocol):
    """End-to-end Coded State Machine protocol over a simulated network.

    The preferred client surface is the session/ticket API of
    :class:`~repro.service.service.CSMService`, which accepts ragged command
    streams and drives this protocol through the shared
    :class:`~repro.rounds.RoundProtocol` interface; the lockstep entry
    points below (``submit_round_of_commands`` + ``run_rounds*``) remain as
    thin wrappers with their original bit-exact semantics.
    """

    def __init__(
        self,
        config: CSMConfig,
        machine: StateMachine,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
        network: SimulatedNetwork | None = None,
        decode_at_every_node: bool = False,
        vectorised_consensus: bool = True,
    ) -> None:
        self.config = config
        self.machine = machine
        self.rng = rng if rng is not None else default_stream()
        self.node_ids = [f"node-{i}" for i in range(config.num_nodes)]
        self.behaviors = dict(behaviors or {})
        if network is None:
            delay = (
                PartiallySynchronousDelay(gst=2.0)
                if config.partially_synchronous
                else SynchronousDelay()
            )
            network = SimulatedNetwork(delay_model=delay, rng=self.rng)
        self.network = network
        for node_id in self.node_ids:
            self.network.register(node_id)
        self.pool = CommandPool(num_machines=config.num_machines)
        if config.partially_synchronous and config.num_nodes >= 4:
            self.consensus = PBFTConsensus(
                self.network, self.node_ids, self.pool, self.behaviors, self.rng
            )
        else:
            self.consensus = AuthenticatedBroadcastConsensus(
                self.network, self.node_ids, self.pool, self.behaviors, self.rng
            )
        # ``vectorised_consensus`` selects the message-plane fast path for
        # batched/pipelined round drivers (decisions, rng stream, counters
        # and delivery log are bit-identical either way); False pins the
        # event-driven oracle, which then advances
        # ``consensus_fast_path_disabled`` for observability.
        self.consensus.use_vectorised_plane = bool(vectorised_consensus)
        # The execution phase draws its randomness (Byzantine result
        # transforms) from a dedicated stream seeded off the protocol rng.
        # The consensus/network layer keeps consuming ``self.rng`` directly,
        # so the batched driver (consensus for B rounds, then execution for
        # B rounds) sees exactly the same draws as the sequential
        # round-by-round interleaving — the basis of the bit-identity
        # guarantee of :meth:`run_rounds_batched`.
        #: Verification-window depth run_rounds_pipelined uses when the call
        #: does not pass one explicitly (services configure it here).
        self.pipeline_verify_window = 16
        engine_rng = derived_stream(self.rng)
        self.engine = CodedExecutionEngine(
            config,
            machine,
            node_ids=self.node_ids,
            behaviors=self.behaviors,
            rng=engine_rng,
            decode_at_every_node=decode_at_every_node,
        )
        self._init_round_state()

    @property
    def num_machines(self) -> int:
        return self.config.num_machines

    # -- client-facing API ------------------------------------------------------------
    def submit_command(self, machine_index: int, client_id: str, command) -> None:
        """A client broadcasts a command for one machine to all nodes."""
        self.network.register(client_id)
        self.pool.submit(machine_index, client_id, command)

    def submit_round_of_commands(self, commands: np.ndarray, client_prefix: str = "client") -> None:
        """Submit one command per machine from distinct synthetic clients.

        .. note:: legacy wrapper.  This is the pre-service lockstep shape —
           one pre-grouped command per machine under reused ``client:k``
           labels.  New code should connect a
           :class:`~repro.service.service.ClientSession` and submit command
           tickets instead; this wrapper remains for the harnesses and the
           bit-identity guarantees built on it.
        """
        arr = self.pool.canonical_round(commands)
        self._submit_round(arr, [f"{client_prefix}:{k}" for k in range(arr.shape[0])])

    def _submit_round(self, commands: np.ndarray, clients: Sequence[str]) -> None:
        """Submit one round of commands under explicit client identities."""
        arr = self.pool.canonical_round(commands)
        if len(clients) != arr.shape[0]:
            raise ConfigurationError(
                f"round of {arr.shape[0]} commands but {len(clients)} client ids"
            )
        for k in range(arr.shape[0]):
            self.submit_command(k, clients[k], arr[k])

    # -- round driver -------------------------------------------------------------------
    def run_round(self) -> ProtocolRound:
        """Run one full round: consensus on commands, then coded execution."""
        round_index = len(self.history)
        decisions = self.consensus.decide_round(round_index)
        sample = self._select_decision(decisions)
        result = self.engine.execute_round(sample.commands)
        return self._record_round(sample.commands, sample.clients, result, sample.view)

    def run_rounds(self, command_batches: list[np.ndarray]) -> list[ProtocolRound]:
        """Submit and execute several rounds of commands, one round at a time."""
        records = []
        for batch in command_batches:
            self.submit_round_of_commands(batch)
            records.append(self.run_round())
        return records

    def run_rounds_batched(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list[ProtocolRound]:
        """Run ``B`` full rounds through the batched pipeline.

        The batched path decides all ``B`` rounds through the consensus
        protocol's :meth:`decide_rounds` fast path (broadcast delivery
        amortised via :meth:`SimulatedNetwork.deliver_all`; each round's
        commands are submitted just before its consensus round, exactly as
        clients would), and feeds the agreed command matrix straight into
        :meth:`CodedExecutionEngine.execute_rounds` — one encode matrix
        product and suspect-learning decode for the whole batch.

        ``client_rounds[b][k]`` names the client submitting machine ``k``'s
        command in round ``b`` — the session/ticket service passes its real
        client identities here.  Without it, this call is the **legacy
        lockstep wrapper**: it routes through
        :meth:`~repro.service.service.CSMService.run_lockstep`, which
        reproduces the historical ``client:k`` labels, so the recorded
        :class:`ProtocolRound` history (commands, clients, consensus views,
        outputs, states, correctness flags, flagged error nodes) stays
        bit-identical to calling :meth:`run_rounds` on an
        identically-constructed protocol; only the operation/message
        *counts* drop, which is precisely what the batch buys.
        """
        if client_rounds is None:
            # Deferred import: repro.service drives this protocol and would
            # otherwise import-cycle with this module.  run_lockstep
            # canonicalises every batch before submitting anything, so the
            # fail-fast contract holds without validating twice here.
            from repro.service import CSMService

            return CSMService.run_lockstep(self, command_batches)
        return self._run_rounds_fast(command_batches, client_rounds, pipelined=False)

    def run_rounds_pipelined(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
        verify_window: int | None = None,
    ) -> list[ProtocolRound]:
        """Run ``B`` rounds with the speculative decode/execute pipeline.

        Consensus is decided exactly as in :meth:`run_rounds_batched`; the
        execution phase runs through
        :meth:`CodedExecutionEngine.execute_rounds_pipelined`, which
        overlaps the verified decode of round ``t`` with the execution of
        round ``t + 1`` (speculative pivot interpolation now, stacked
        re-encode verification per window, checkpoint/rollback on a
        mismatch).  The recorded :class:`ProtocolRound` history, the
        delivered outputs and the failed-round accounting are bit-identical
        to the batched path (property-tested, including mid-batch fault
        onset); only the execution-phase operation counts drop.

        ``verify_window`` defaults to :attr:`pipeline_verify_window`; the
        legacy no-client form honours an explicit value by pinning that
        attribute for the duration of the lockstep drive.
        """
        if verify_window is None:
            verify_window = self.pipeline_verify_window
        if client_rounds is None:
            from repro.service import CSMService

            saved_window = self.pipeline_verify_window
            self.pipeline_verify_window = verify_window
            try:
                return CSMService.run_lockstep(
                    self, command_batches, pipeline=True
                )
            finally:
                self.pipeline_verify_window = saved_window
        return self._run_rounds_fast(
            command_batches,
            client_rounds,
            pipelined=True,
            verify_window=verify_window,
        )

    def _run_rounds_fast(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]],
        pipelined: bool,
        verify_window: int = 16,
    ) -> list[ProtocolRound]:
        """Consensus + execution shared by the batched and pipelined drivers."""
        # Canonicalise every batch before any consensus runs: a malformed
        # batch must fail fast, not discard earlier rounds the consensus
        # already decided (shape validation is pure, so this cannot perturb
        # the pool history the bit-identity guarantee depends on).
        batches = [self.pool.canonical_round(batch) for batch in command_batches]
        if not batches:
            return []
        if len(client_rounds) != len(batches):
            raise ConfigurationError(
                f"{len(batches)} command rounds but {len(client_rounds)} client "
                "rounds"
            )
        first_round = len(self.history)
        per_round_decisions = self.consensus.decide_rounds(
            first_round,
            len(batches),
            prepare_round=lambda offset: self._submit_round(
                batches[offset], client_rounds[offset]
            ),
        )
        samples = [self._select_decision(d) for d in per_round_decisions]
        commands_matrix = np.stack([sample.commands for sample in samples])
        if pipelined:
            results = self.engine.execute_rounds_pipelined(
                commands_matrix, verify_window=verify_window
            )
        else:
            results = self.engine.execute_rounds(commands_matrix)
        return [
            self._record_round(sample.commands, sample.clients, result, sample.view)
            for sample, result in zip(samples, results)
        ]

    def _select_decision(
        self, decisions: dict[str, ConsensusDecision]
    ) -> ConsensusDecision:
        """Pick the round's decision from a known-honest node.

        Trusting ``next(iter(decisions))`` would adopt whichever node happens
        to come first — potentially a Byzantine one.  Instead the decision is
        taken from the first known-honest node (deterministic in node order),
        after checking that every honest node decided the same command
        vector; a disagreement is a consensus-safety violation and raises.
        """
        honest_ids = [
            node_id
            for node_id in self.node_ids
            if node_id in decisions and not self._is_faulty(node_id)
        ]
        if not honest_ids:
            raise ConsensusError("no honest node produced a consensus decision")
        chosen = decisions[honest_ids[0]]
        reference = (chosen.command_tuple(), tuple(chosen.clients))
        for node_id in honest_ids[1:]:
            other = decisions[node_id]
            if (other.command_tuple(), tuple(other.clients)) != reference:
                raise ConsensusError(
                    f"honest nodes {honest_ids[0]} and {node_id} decided different "
                    "command vectors — consensus safety violated"
                )
        return chosen

    def _is_faulty(self, node_id: str) -> bool:
        behavior = self.behaviors.get(node_id)
        return behavior is not None and behavior.is_faulty

    # -- fault plane --------------------------------------------------------------------
    def set_node_behavior(
        self, node_id: str, behavior: ByzantineBehavior | None
    ) -> None:
        """Install (or with ``None`` clear) one node's behaviour everywhere.

        The behaviour map is consulted by three layers — this protocol's
        decision selection, the consensus protocol and the execution engine's
        per-node strategy objects — and all of them read it live, so swapping
        an entry here changes the node's conduct from the next round on.
        This is the primitive the fault-injection plane uses for crash
        (install a :class:`~repro.net.byzantine.CrashedBehavior`) and
        recovery (clear it, then :meth:`resync_node`).
        """
        node = self.engine.node_by_id(node_id)  # validates the id
        if behavior is None:
            from repro.net.byzantine import HonestBehavior

            self.behaviors.pop(node_id, None)
            self.consensus.behaviors.pop(node_id, None)
            self.engine.behaviors.pop(node_id, None)
            node.behavior = HonestBehavior()
        else:
            self.behaviors[node_id] = behavior
            self.consensus.behaviors[node_id] = behavior
            self.engine.behaviors[node_id] = behavior
            node.behavior = behavior

    def node_behavior(self, node_id: str) -> ByzantineBehavior | None:
        """The configured behaviour for ``node_id`` (``None`` when honest)."""
        return self.behaviors.get(node_id)

    def resync_node(self, node_id: str) -> None:
        """State-transfer a recovered node (see
        :meth:`CodedExecutionEngine.resync_node`)."""
        self.engine.resync_node(node_id)

    def resolve_fault_target(self, target: str, round_index: int) -> str:
        """Resolve an adaptive fault target to a concrete node id.

        ``"@primary"`` names the node that will lead ``round_index`` at view
        0 (the view-change path makes later views unpredictable at schedule
        time, which is exactly why hitting the initial primary is the
        interesting adversary).  Literal node ids pass through validated.
        """
        if target == "@primary":
            primary_for = getattr(self.consensus, "primary_for", None)
            if primary_for is None:
                primary_for = self.consensus.leader_for
            return primary_for(round_index, 0)
        if target.startswith("@"):
            raise ConfigurationError(
                f"adaptive fault target {target!r} is not supported by "
                "CSMProtocol (only '@primary')"
            )
        if target not in self.node_ids:
            raise ConfigurationError(f"unknown fault target node {target!r}")
        return target

    def freeze_failed_rounds(self) -> None:
        """Make failed rounds leave all state unadvanced (retry support)."""
        self.engine.freeze_on_failure = True

    # Round recording, verified-only delivery and the reporting surface
    # (``all_rounds_correct``, ``failed_rounds``, ``measured_throughput``)
    # are inherited from RoundProtocol — shared with the replication facade.
