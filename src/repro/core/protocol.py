"""The full CSM protocol: consensus phase + coded execution phase.

:class:`CSMProtocol` wires together the pieces the paper's Figure 2
describes: clients broadcast commands to all compute nodes (the shared
command pool), every round the nodes run consensus to agree on one command
per machine, the coded execution phase computes and decodes the results, and
the outputs are returned to the submitting clients.

The protocol can run over either network model:

* synchronous — :class:`AuthenticatedBroadcastConsensus` + full-``N``
  decoding;
* partially synchronous — :class:`PBFTConsensus` + ``N - b`` decoding with
  erasures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.consensus.broadcast import AuthenticatedBroadcastConsensus
from repro.consensus.command_pool import CommandPool
from repro.consensus.pbft import PBFTConsensus
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior
from repro.net.latency import PartiallySynchronousDelay, SynchronousDelay
from repro.net.network import SimulatedNetwork
from repro.replication.base import RoundResult
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine


@dataclass
class ProtocolRound:
    """One completed protocol round: the consensus decision plus execution result."""

    round_index: int
    commands: np.ndarray
    clients: list[str]
    result: RoundResult
    consensus_views: int = 0

    @property
    def correct(self) -> bool:
        return self.result.correct


class CSMProtocol:
    """End-to-end Coded State Machine protocol over a simulated network."""

    def __init__(
        self,
        config: CSMConfig,
        machine: StateMachine,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
        network: SimulatedNetwork | None = None,
        decode_at_every_node: bool = False,
    ) -> None:
        self.config = config
        self.machine = machine
        self.rng = rng or np.random.default_rng(0)
        self.node_ids = [f"node-{i}" for i in range(config.num_nodes)]
        self.behaviors = dict(behaviors or {})
        if network is None:
            delay = (
                PartiallySynchronousDelay(gst=2.0)
                if config.partially_synchronous
                else SynchronousDelay()
            )
            network = SimulatedNetwork(delay_model=delay, rng=self.rng)
        self.network = network
        for node_id in self.node_ids:
            self.network.register(node_id)
        self.pool = CommandPool(num_machines=config.num_machines)
        if config.partially_synchronous and config.num_nodes >= 4:
            self.consensus = PBFTConsensus(
                self.network, self.node_ids, self.pool, self.behaviors, self.rng
            )
        else:
            self.consensus = AuthenticatedBroadcastConsensus(
                self.network, self.node_ids, self.pool, self.behaviors, self.rng
            )
        self.engine = CodedExecutionEngine(
            config,
            machine,
            node_ids=self.node_ids,
            behaviors=self.behaviors,
            rng=self.rng,
            decode_at_every_node=decode_at_every_node,
        )
        self.history: list[ProtocolRound] = []
        self.delivered_outputs: dict[str, list[np.ndarray]] = {}

    # -- client-facing API ------------------------------------------------------------
    def submit_command(self, machine_index: int, client_id: str, command) -> None:
        """A client broadcasts a command for one machine to all nodes."""
        self.network.register(client_id)
        self.pool.submit(machine_index, client_id, command)

    def submit_round_of_commands(self, commands: np.ndarray, client_prefix: str = "client") -> None:
        """Convenience: submit one command per machine from distinct clients."""
        arr = np.asarray(commands)
        if arr.ndim == 1:
            arr = arr.reshape(self.config.num_machines, -1)
        if arr.shape[0] != self.config.num_machines:
            raise ConfigurationError(
                f"expected {self.config.num_machines} commands, got {arr.shape[0]}"
            )
        for k in range(arr.shape[0]):
            self.submit_command(k, f"{client_prefix}:{k}", arr[k])

    # -- round driver -------------------------------------------------------------------
    def run_round(self) -> ProtocolRound:
        """Run one full round: consensus on commands, then coded execution."""
        round_index = len(self.history)
        decisions = self.consensus.decide_round(round_index)
        sample = next(iter(decisions.values()))
        result = self.engine.execute_round(sample.commands)
        record = ProtocolRound(
            round_index=round_index,
            commands=sample.commands,
            clients=sample.clients,
            result=result,
            consensus_views=sample.view,
        )
        self.history.append(record)
        # Deliver outputs to the submitting clients.
        for k, client_id in enumerate(sample.clients):
            self.delivered_outputs.setdefault(client_id, []).append(
                result.outputs[k].copy()
            )
        return record

    def run_rounds(self, command_batches: list[np.ndarray]) -> list[ProtocolRound]:
        """Submit and execute several rounds of commands."""
        records = []
        for batch in command_batches:
            self.submit_round_of_commands(batch)
            records.append(self.run_round())
        return records

    # -- reporting ----------------------------------------------------------------------
    @property
    def all_rounds_correct(self) -> bool:
        return all(record.correct for record in self.history)

    def measured_throughput(self) -> float:
        """Average commands per unit per-node operation across completed rounds."""
        if not self.history:
            return 0.0
        throughputs = [
            record.result.throughput(self.config.num_machines) for record in self.history
        ]
        finite = [t for t in throughputs if np.isfinite(t)]
        return float(np.mean(finite)) if finite else float("inf")
