"""The Coded State Machine (CSM) — the paper's primary contribution.

The package is organised around four classes:

* :class:`~repro.core.config.CSMConfig` — validates an ``(N, K, d, mu/nu)``
  configuration against the Theorem 1 / Theorem 2 bounds and exposes the
  closed-form storage efficiency / security the configuration achieves.
* :class:`~repro.core.node.CSMNode` — one compute node: stores a single coded
  state vector, encodes its own coded command, executes the transition
  polynomial directly on coded data, and (optionally) decodes the results it
  receives from its peers.
* :class:`~repro.core.execution.CodedExecutionEngine` — drives the execution
  phase of one round across all nodes, injecting Byzantine behaviour, running
  the Reed–Solomon decoding and verifying correctness against the reference
  (uncoded) execution.  Supports the synchronous and the partially
  synchronous (``N - b`` responses, erasure + error) decoding rules.
* :class:`~repro.core.protocol.CSMProtocol` — the full protocol: client
  command submission, consensus phase over the simulated network, coded
  execution phase, and output delivery back to clients.
"""

from repro.core.config import CSMConfig
from repro.core.storage import CodedStateStore
from repro.core.node import CSMNode
from repro.core.execution import CodedExecutionEngine
from repro.core.protocol import CSMProtocol, ProtocolRound

__all__ = [
    "CSMConfig",
    "CodedStateStore",
    "CSMNode",
    "CodedExecutionEngine",
    "CSMProtocol",
    "ProtocolRound",
]
