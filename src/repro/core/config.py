"""CSM system configuration and the Theorem 1 / Theorem 2 feasibility bounds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.gf.field import Field
from repro.coding.radius import (
    composite_degree,
    max_faults_partially_synchronous,
    max_faults_synchronous,
    max_machines_partially_synchronous,
    max_machines_synchronous,
)


@dataclass
class CSMConfig:
    """A validated CSM deployment configuration.

    Attributes
    ----------
    field:
        The finite field (order must exceed ``num_nodes + num_machines`` so
        distinct evaluation points exist).
    num_nodes:
        ``N``, the network size.
    num_machines:
        ``K``, how many state machines are hosted.
    degree:
        ``d``, the total degree of the transition polynomial.
    num_faults:
        ``b``, the number of Byzantine nodes the deployment must tolerate.
    partially_synchronous:
        Selects between the Theorem 1 (synchronous, ``2b`` penalty) and
        Theorem 2 (partially synchronous, ``3b`` penalty) decoding bounds.
    """

    field: Field
    num_nodes: int
    num_machines: int
    degree: int
    num_faults: int = 0
    partially_synchronous: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {self.num_nodes}")
        if self.num_machines < 1:
            raise ConfigurationError(
                f"need at least one state machine, got {self.num_machines}"
            )
        if self.num_machines > self.num_nodes:
            raise ConfigurationError(
                f"K={self.num_machines} exceeds N={self.num_nodes}"
            )
        if self.degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {self.degree}")
        if self.num_faults < 0:
            raise ConfigurationError(f"num_faults must be >= 0, got {self.num_faults}")
        if self.field.order <= self.num_nodes + self.num_machines:
            raise ConfigurationError(
                f"field of order {self.field.order} too small for "
                f"N={self.num_nodes}, K={self.num_machines}"
            )
        if self.num_machines > self.max_supported_machines:
            raise ConfigurationError(
                f"K={self.num_machines} violates the decoding bound: with N={self.num_nodes}, "
                f"b={self.num_faults}, d={self.degree} "
                f"({'partially synchronous' if self.partially_synchronous else 'synchronous'}) "
                f"at most K={self.max_supported_machines} machines are supported"
            )

    # -- derived quantities -------------------------------------------------------------
    @property
    def composite_degree(self) -> int:
        """Degree of ``h(z) = f(u(z), v(z))``: ``d (K - 1)``."""
        return composite_degree(self.num_machines, self.degree)

    @property
    def decoding_dimension(self) -> int:
        """Reed–Solomon dimension of the coded results: ``d(K-1) + 1``."""
        return self.composite_degree + 1

    @property
    def max_supported_machines(self) -> int:
        """Largest K supported at this (N, b, d) — the Theorem 1/2 bound."""
        if self.partially_synchronous:
            return max_machines_partially_synchronous(
                self.num_nodes, self.num_faults, self.degree
            )
        return max_machines_synchronous(self.num_nodes, self.num_faults, self.degree)

    @property
    def max_tolerated_faults(self) -> int:
        """Largest b decodable at this (N, K, d) — the Table 2 decoding row."""
        if self.partially_synchronous:
            return max_faults_partially_synchronous(
                self.num_nodes, self.num_machines, self.degree
            )
        return max_faults_synchronous(self.num_nodes, self.num_machines, self.degree)

    @property
    def storage_efficiency(self) -> int:
        """``gamma = K``: each node stores one coded state of a single state's size."""
        return self.num_machines

    @property
    def security(self) -> int:
        """``beta``: the scheme is b-secure for every b up to this value."""
        return self.max_tolerated_faults

    @property
    def fault_fraction(self) -> float:
        """``mu`` (or ``nu``): the fraction of nodes assumed faulty."""
        return self.num_faults / self.num_nodes

    # -- closed-form Theorem 1 / 2 formulas (for comparison with measurements) ------------
    @classmethod
    def theorem_max_machines(
        cls, num_nodes: int, fault_fraction: float, degree: int, partially_synchronous: bool = False
    ) -> int:
        """``floor((1 - 2mu) N / d + 1 - 1/d)`` (or the ``1 - 3nu`` variant)."""
        penalty = 3.0 if partially_synchronous else 2.0
        value = (1.0 - penalty * fault_fraction) * num_nodes / degree + 1.0 - 1.0 / degree
        return max(int(value // 1), 0)

    def summary(self) -> dict:
        """Dictionary used by the experiment reports."""
        return {
            "N": self.num_nodes,
            "K": self.num_machines,
            "d": self.degree,
            "b": self.num_faults,
            "setting": "partial-sync" if self.partially_synchronous else "sync",
            "storage_efficiency": self.storage_efficiency,
            "security": self.security,
            "composite_degree": self.composite_degree,
            "decoding_dimension": self.decoding_dimension,
        }
