"""The deterministic state machine abstraction of Section 2.

A state machine is a tuple ``(X, Y, S, f)`` of input alphabet, output
alphabet, state space and deterministic transition function.  In this
reproduction the alphabets and state space are vector spaces over a finite
field, represented as fixed-length numpy vectors of canonical field elements,
and ``f`` is a :class:`~repro.machine.polynomial_machine.PolynomialTransition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field

#: Type aliases used throughout the protocol layers.
MachineState = np.ndarray
TransitionOutput = tuple[np.ndarray, np.ndarray]


def validate_step_batch(
    field: Field,
    states: np.ndarray,
    commands: np.ndarray,
    state_dim: int,
    command_dim: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalise a batched step's inputs to ``(n, state_dim)``/``(n, command_dim)``.

    Shared by :meth:`StateMachine.step_batch` and
    :meth:`PolynomialTransition.step_batch` so both surfaces validate (and
    convert) exactly once with identical error messages.
    """
    states_arr = field.array(states)
    commands_arr = field.array(commands)
    if states_arr.ndim != 2 or states_arr.shape[1] != state_dim:
        raise ConfigurationError(
            f"expected states of shape (n, {state_dim}), got {states_arr.shape}"
        )
    if commands_arr.ndim != 2 or commands_arr.shape[1] != command_dim:
        raise ConfigurationError(
            f"expected commands of shape (n, {command_dim}), got {commands_arr.shape}"
        )
    if states_arr.shape[0] != commands_arr.shape[0]:
        raise ConfigurationError(
            f"state batch of {states_arr.shape[0]} rows does not match "
            f"command batch of {commands_arr.shape[0]} rows"
        )
    return states_arr, commands_arr


@runtime_checkable
class Transition(Protocol):
    """Anything that can act as the transition function ``f``."""

    state_dim: int
    command_dim: int
    output_dim: int
    degree: int

    def step(self, state: np.ndarray, command: np.ndarray) -> TransitionOutput:
        """Return ``(next_state, output)`` for one execution step."""
        ...


@dataclass
class StateMachine:
    """A deterministic state machine over a finite field.

    Attributes
    ----------
    field:
        The field over which states, commands and outputs live.
    transition:
        The transition function ``f`` (a polynomial transition for CSM).
    initial_state:
        The state ``S(0)`` the machine starts from.
    name:
        Optional human-readable label used by examples and reports.
    noop:
        Optional explicit no-op command (see :meth:`noop_command`).
    """

    field: Field
    transition: Transition
    initial_state: np.ndarray
    name: str = "state-machine"
    noop: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.initial_state = self.field.array(self.initial_state).reshape(-1)
        if self.initial_state.shape[0] != self.transition.state_dim:
            raise ConfigurationError(
                f"initial state has dimension {self.initial_state.shape[0]}, "
                f"transition expects {self.transition.state_dim}"
            )
        if self.noop is not None:
            self.noop = self.field.array(self.noop).reshape(-1)
            if self.noop.shape[0] != self.transition.command_dim:
                raise ConfigurationError(
                    f"noop command has dimension {self.noop.shape[0]}, "
                    f"transition expects {self.transition.command_dim}"
                )

    # -- structural properties ------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return self.transition.state_dim

    @property
    def command_dim(self) -> int:
        return self.transition.command_dim

    @property
    def output_dim(self) -> int:
        return self.transition.output_dim

    @property
    def degree(self) -> int:
        """Total degree ``d`` of the transition polynomial."""
        return self.transition.degree

    def noop_command(self) -> np.ndarray:
        """The command used to pad machines that have no pending traffic.

        The round scheduler (:mod:`repro.service`) pads machines whose queues
        are empty with this command so a round no longer requires one real
        command per machine.  The contract is that the no-op induces the
        *identity* state transition (``f(S, noop) = (S, .)``); the machine
        library configures an explicit identity command wherever one exists
        (for the linear ledger/counter machines and the degree-2 machines in
        :mod:`repro.machine.library` the all-zero command is an identity).
        Machines without a configured ``noop`` fall back to the all-zero
        command, which advances the state deterministically like any other
        command — callers relying on idle machines being frozen should set
        :attr:`noop` explicitly.
        """
        if self.noop is not None:
            return self.noop.copy()
        return np.zeros(self.command_dim, dtype=np.int64)

    # -- execution ---------------------------------------------------------------------
    def step(self, state: np.ndarray, command: np.ndarray) -> TransitionOutput:
        """One application of ``f``: returns ``(next_state, output)``."""
        state_vec = self.field.array(state).reshape(-1)
        command_vec = self.field.array(command).reshape(-1)
        if state_vec.shape[0] != self.state_dim:
            raise ConfigurationError(
                f"state has dimension {state_vec.shape[0]}, expected {self.state_dim}"
            )
        if command_vec.shape[0] != self.command_dim:
            raise ConfigurationError(
                f"command has dimension {command_vec.shape[0]}, expected {self.command_dim}"
            )
        return self.transition.step(state_vec, command_vec)

    def step_batch(
        self, states: np.ndarray, commands: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``f`` to ``n`` independent state/command rows at once.

        Returns ``(next_states, outputs)`` of shapes ``(n, state_dim)`` and
        ``(n, output_dim)``.  When the transition provides its own vectorised
        ``step_batch`` (as :class:`PolynomialTransition` does) the whole batch
        is delegated to it — including canonicalisation and shape validation,
        so the hot path converts each array exactly once; otherwise the rows
        fall back to scalar :meth:`step` calls.  Values are bit-identical
        either way.
        """
        batch = getattr(self.transition, "step_batch", None)
        if batch is not None:
            return batch(states, commands)
        states_arr, commands_arr = validate_step_batch(
            self.field, states, commands, self.state_dim, self.command_dim
        )
        next_states = np.zeros_like(states_arr)
        outputs = np.zeros((states_arr.shape[0], self.output_dim), dtype=np.int64)
        for i in range(states_arr.shape[0]):
            next_states[i], outputs[i] = self.transition.step(
                states_arr[i], commands_arr[i]
            )
        return next_states, outputs

    def run(self, commands: np.ndarray, initial_state: np.ndarray | None = None):
        """Execute a sequence of commands; returns ``(final_state, outputs)``.

        ``commands`` has shape ``(T, command_dim)``; the returned outputs have
        shape ``(T, output_dim)``.  This reference (uncoded, single-machine)
        execution is what every protocol's result is checked against.
        """
        state = (
            self.initial_state.copy()
            if initial_state is None
            else self.field.array(initial_state).reshape(-1)
        )
        commands_arr = self.field.array(commands)
        if commands_arr.ndim == 1:
            commands_arr = commands_arr.reshape(1, -1)
        outputs = np.zeros((commands_arr.shape[0], self.output_dim), dtype=np.int64)
        for t in range(commands_arr.shape[0]):
            state, output = self.step(state, commands_arr[t])
            outputs[t, :] = output
        return state, outputs

    def replicate(self, count: int) -> list["StateMachine"]:
        """Return ``count`` machines sharing this transition and initial state.

        CSM operates ``K`` *identical* machines (same ``f``) with independent
        states; this helper builds such a bank of machines.
        """
        if count < 1:
            raise ConfigurationError(f"replicate count must be positive, got {count}")
        return [
            StateMachine(
                field=self.field,
                transition=self.transition,
                initial_state=self.initial_state.copy(),
                name=f"{self.name}[{k}]",
                noop=None if self.noop is None else self.noop.copy(),
            )
            for k in range(count)
        ]
